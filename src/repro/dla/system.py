"""The coupled DLA / R3-DLA system simulation.

``DlaSystem`` runs the two-core decoupled look-ahead machine over a committed
dynamic trace:

1. The **look-ahead pass** filters the trace through the skeleton mask and
   runs it on the leading core (whose private caches are in look-ahead
   containment mode and which shares the L3/DRAM with the main core).  Its
   commits produce the BOQ branch stream, FQ prefetch hints (its own L1
   misses) and value-reuse hint times.
2. The **main-thread pass** runs the full trace on the trailing core with
   those hints wired in through :class:`~repro.dla.hints.MainThreadHintSource`:
   branch directions come from the BOQ (stalling fetch when the look-ahead
   has not produced them yet, throttled to the BOQ capacity), prefetch/TLB
   hints are installed just in time, value predictions shortcut long-latency
   producers, the T1 engine handles marked strided loads, and incorrect hints
   trigger look-ahead reboots that push all later hints back.

Because the look-ahead thread's private cache contents and register state are
speculative and never escape its core, simulating it from the *architectural*
trace (rather than re-executing a possibly-divergent skeleton) is a faithful
model everywhere except immediately after the rare control divergences, which
are accounted for by the reboot mechanism.

The class also supports segmented simulation — consecutive trace regions run
under different skeleton versions with all microarchitectural state carried
across the boundary — which is what the recycle controller uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compile.decoded import F_BRANCH
from repro.core.compile.hookspec import CompiledHookSpec
from repro.core.config import SystemConfig
from repro.core.energy import EnergyBreakdown, EnergyModel
from repro.core.pipeline import CoreHooks, OutOfOrderCore
from repro.core.results import CoreResult
from repro.dla.config import DlaConfig
from repro.dla.hints import LookaheadProducts, MainThreadHintSource
from repro.dla.profiling import ProgramProfile, profile_workload
from repro.dla.queues import BranchOutcomeQueue, FootnoteQueue, communication_bits_per_instruction
from repro.dla.skeleton import Skeleton, SkeletonBuilder, SkeletonOptions
from repro.dla.t1 import T1Config, T1PrefetchEngine
from repro.emulator.trace import DynamicInst, Trace
from repro.isa.program import Program
from repro.memory.hierarchy import CoreMemorySystem, SharedMemorySystem
from repro.prefetch import make_prefetcher
from repro.util.rng import DeterministicRng


class _FilteredTraceCache:
    """Bounded memo of skeleton-filtered look-ahead windows.

    The recycle controller and the figure sweeps simulate one trace window
    under many skeletons, and each skeleton many times; the filtered
    look-ahead entry list for a ``(window, included_pcs)`` pair is identical
    every time.  Reusing one list object per pair also keeps its identity
    stable, which is what lets the compiled pipeline's id-keyed decoded-
    trace memo hit instead of re-decoding a fresh one-shot list per run.
    Strong references to the source windows are retained so ids can never
    be recycled.
    """

    MAX_ENTRIES = 256

    def __init__(self) -> None:
        self._filtered: Dict[Tuple[int, frozenset], List[DynamicInst]] = {}
        self._retained: Dict[Tuple[int, frozenset], Sequence[DynamicInst]] = {}

    def get(self, entries: Sequence[DynamicInst],
            included_pcs: frozenset) -> List[DynamicInst]:
        token = (id(entries), included_pcs)
        hit = self._filtered.get(token)
        if hit is not None:
            return hit
        filtered = [e for e in entries if e.static.pc in included_pcs]
        while len(self._filtered) >= self.MAX_ENTRIES:
            victim = next(iter(self._filtered))
            del self._filtered[victim]
            del self._retained[victim]
        self._filtered[token] = filtered
        self._retained[token] = entries
        return filtered


#: Process-wide: windows and skeletons are shared across DlaSystem instances.
_FILTERED = _FilteredTraceCache()


@dataclass
class DlaOutcome:
    """Results of one DLA co-simulation."""

    main: CoreResult
    lookahead: CoreResult
    skeleton_dynamic_fraction: float
    reboots: int
    boq_incorrect: int
    prefetch_hints_installed: int
    communication_bits_per_instruction: float
    validations_skipped: int
    memory_traffic: int
    dram_energy: float
    main_energy: EnergyBreakdown
    lookahead_energy: EnergyBreakdown
    #: Names of the R3 optimizations that were active.
    optimizations: Tuple[str, ...] = ()
    #: Unified memory-backend telemetry: {"main": {...}, "lookahead": {...},
    #: "shared": {...}} where each domain holds per-level dicts (``mshr``/
    #: ``write_buffer``/``writebacks`` slices, plus ``dram`` under
    #: ``shared``).  Subsumes the old ``mshr`` field (see :attr:`mshr`).
    memsys: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None

    @property
    def mshr(self) -> Optional[Dict[str, Dict[str, Dict[str, int]]]]:
        """Per-domain, per-level MSHR counters (the pre-``memsys`` shape)."""
        if self.memsys is None:
            return None
        return {
            domain: {
                level: info["mshr"]
                for level, info in levels.items()
                if isinstance(info, dict) and "mshr" in info
            }
            for domain, levels in self.memsys.items()
        }

    @property
    def cycles(self) -> float:
        return self.main.cycles

    @property
    def ipc(self) -> float:
        return self.main.ipc

    @property
    def cpu_energy(self) -> float:
        return self.main_energy.total + self.lookahead_energy.total


class DlaSystem:
    """Two-core decoupled look-ahead machine for one program."""

    def __init__(
        self,
        program: Program,
        system_config: Optional[SystemConfig] = None,
        dla_config: Optional[DlaConfig] = None,
        profile: Optional[ProgramProfile] = None,
        training_trace: Optional[Trace] = None,
    ) -> None:
        self.program = program
        self.system_config = system_config or SystemConfig()
        self.dla_config = dla_config or DlaConfig()
        if profile is None:
            if training_trace is None:
                raise ValueError("either a profile or a training trace is required")
            profile = profile_workload(program, training_trace, self.system_config)
        self.profile = profile
        self.builder = SkeletonBuilder(program, profile)
        self._risky_cache: Dict[frozenset, Set[int]] = {}

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def default_skeleton(self) -> Skeleton:
        """The skeleton this configuration would run with (no recycling)."""
        options = SkeletonOptions(
            name="default",
            include_value_targets=self.dla_config.enable_value_reuse,
            keep_t1_targets=not self.dla_config.enable_t1,
        )
        return self.builder.build(options, enable_t1=self.dla_config.enable_t1)

    def simulate(self, trace: Trace | Sequence[DynamicInst],
                 skeleton: Optional[Skeleton] = None,
                 warmup_entries: Optional[Sequence[DynamicInst]] = None) -> DlaOutcome:
        """Run the whole trace under one skeleton.

        ``warmup_entries`` are replayed through both cores' private caches
        (and therefore the shared L3) before the timed region begins.
        """
        if isinstance(trace, Trace):
            entries = trace.entries
        elif isinstance(trace, list):
            # Keep the caller's list identity: the run never mutates entries
            # (see ``_main_pass``), and a stable id is what lets the decoded
            # trace and filtered look-ahead memos hit on repeat simulations.
            entries = trace
        else:
            entries = list(trace)
        skeleton = skeleton or self.default_skeleton()
        state = self._fresh_state()
        if warmup_entries:
            self._warm(state, warmup_entries)
        segment = self._run_segment(state, entries, skeleton)
        return self._finalize(state, [segment], entries, skeleton)

    def simulate_segmented(
        self,
        plan: Sequence[Tuple[Sequence[DynamicInst], Skeleton]],
        warmup_entries: Optional[Sequence[DynamicInst]] = None,
    ) -> DlaOutcome:
        """Run consecutive trace segments, each under its own skeleton.

        Microarchitectural state (caches, predictors, DRAM, clocks) persists
        across segments, which is what makes per-loop skeleton recycling
        meaningful.
        """
        if not plan:
            raise ValueError("plan must contain at least one segment")
        state = self._fresh_state()
        if warmup_entries:
            self._warm(state, warmup_entries)
        segments = []
        all_entries: List[DynamicInst] = []
        last_skeleton = plan[-1][1]
        for entries, skeleton in plan:
            if not isinstance(entries, list):
                entries = list(entries)
            all_entries.extend(entries)
            segments.append(self._run_segment(state, entries, skeleton))
        return self._finalize(state, segments, all_entries, last_skeleton)

    # ------------------------------------------------------------------
    # internal machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _warm(state: "_State", warmup_entries: Sequence[DynamicInst]) -> None:
        from repro.core.system import warm_memory_systems

        # One group call: the two cores' post-warm state (including the
        # shared L3/DRAM both warms touch) is memoized/restored as a unit.
        warm_memory_systems((state.mt_memory, state.lt_memory), warmup_entries)

    @dataclass
    class _State:
        shared: SharedMemorySystem
        mt_memory: CoreMemorySystem
        lt_memory: CoreMemorySystem
        mt_core: OutOfOrderCore
        lt_core: OutOfOrderCore
        t1: Optional[T1PrefetchEngine]
        boq: BranchOutcomeQueue
        fq: FootnoteQueue
        rng: DeterministicRng
        mt_clock: float = 0.0
        lt_clock: float = 0.0
        reboots: int = 0
        prefetch_hints_installed: int = 0
        lt_dynamic_instructions: int = 0
        mt_dynamic_instructions: int = 0

    def _fresh_state(self) -> "_State":
        sys_cfg = self.system_config
        dla_cfg = self.dla_config
        shared = SharedMemorySystem(sys_cfg.memory)
        mt_memory = CoreMemorySystem(shared, sys_cfg.memory)
        lt_memory = CoreMemorySystem(shared, sys_cfg.memory, lookahead_mode=True)

        fetch_buffer = (
            dla_cfg.fetch_buffer_entries
            if dla_cfg.enable_fetch_buffer
            else dla_cfg.baseline_fetch_buffer_entries
        )
        mt_core_cfg = sys_cfg.with_overrides(
            name="main-thread", fetch_buffer_entries=fetch_buffer
        ).core
        lt_core_cfg = sys_cfg.with_overrides(name="look-ahead").core

        mt_l1_pf = (
            make_prefetcher(sys_cfg.l1_prefetcher)
            if sys_cfg.l1_prefetcher not in (None, "none")
            else None
        )
        mt_l2_pf = (
            make_prefetcher(sys_cfg.l2_prefetcher)
            if sys_cfg.l2_prefetcher not in (None, "none")
            else None
        )
        lt_l2_pf = (
            make_prefetcher(sys_cfg.l2_prefetcher)
            if sys_cfg.l2_prefetcher not in (None, "none")
            else None
        )

        mt_core = OutOfOrderCore(mt_core_cfg, mt_memory,
                                 l1_prefetcher=mt_l1_pf, l2_prefetcher=mt_l2_pf,
                                 name="main-thread")
        lt_core = OutOfOrderCore(lt_core_cfg, lt_memory,
                                 l2_prefetcher=lt_l2_pf, name="look-ahead")

        t1 = None
        if dla_cfg.enable_t1:
            t1 = T1PrefetchEngine(
                marked_pcs=self.profile.strided_pcs(),
                memory=mt_memory,
                config=T1Config(entries=dla_cfg.t1_entries),
            )
        return self._State(
            shared=shared,
            mt_memory=mt_memory,
            lt_memory=lt_memory,
            mt_core=mt_core,
            lt_core=lt_core,
            t1=t1,
            boq=BranchOutcomeQueue(dla_cfg.boq_entries),
            fq=FootnoteQueue(dla_cfg.fq_entries),
            rng=DeterministicRng(dla_cfg.seed),
        )

    # -- look-ahead pass ----------------------------------------------------
    def _lookahead_pass(self, state: "_State", entries: Sequence[DynamicInst],
                        skeleton: Skeleton) -> Tuple[LookaheadProducts, CoreResult]:
        products = LookaheadProducts()
        value_targets = self._value_target_pcs(skeleton)

        def on_commit(entry: DynamicInst, commit_cycle: float) -> None:
            if entry.static.is_branch:
                products.branch_times[entry.seq] = commit_cycle
                products.branch_order.append(entry.seq)
            if entry.seq is not None and entry.static.pc in value_targets:
                products.value_times[entry.seq] = commit_cycle

        def on_memory_access(entry: DynamicInst, access, cycle: float) -> None:
            if entry.static.is_load and access.l1_miss:
                products.prefetch_hints.append((cycle, entry.effective_address))

        lt_entries = _FILTERED.get(entries, skeleton.included_pcs)
        state.lt_dynamic_instructions += len(lt_entries)
        # The commit hook only acts on branches and value-target PCs; the
        # compiled kernel may skip it everywhere else.
        hooks = CoreHooks(
            on_commit=on_commit,
            on_memory_access=on_memory_access,
            fast_hints=CompiledHookSpec(
                commit_flag_mask=F_BRANCH,
                commit_pcs=tuple(sorted(value_targets)),
            ),
        )
        result = state.lt_core.run(lt_entries, hooks=hooks, start_cycle=state.lt_clock)
        products.prefetch_hints.sort(key=lambda item: item[0])
        products.lt_cycles = result.cycles
        return products, result

    # -- main-thread pass ------------------------------------------------------
    def _main_pass(self, state: "_State", entries: Sequence[DynamicInst],
                   skeleton: Skeleton,
                   products: LookaheadProducts) -> Tuple[CoreResult, MainThreadHintSource]:
        dla_cfg = self.dla_config
        bias_direction = {
            pc: self.profile.branches[pc].taken_ratio >= 0.5
            for pc in skeleton.biased_branch_pcs
            if pc in self.profile.branches
        }
        hint_source = MainThreadHintSource(
            products=products,
            dla_config=dla_cfg,
            memory=state.mt_memory,
            boq=state.boq,
            fq=state.fq,
            risky_branch_pcs=self._risky_branch_pcs(skeleton),
            biased_branch_pcs=set(skeleton.biased_branch_pcs),
            branch_bias_direction=bias_direction,
            value_target_pcs=self._value_target_pcs(skeleton) if dla_cfg.enable_value_reuse else set(),
            t1_engine=state.t1,
            loop_branch_pcs=set(self.profile.loop_branch_pcs),
            rng=state.rng,
        )
        state.mt_dynamic_instructions += len(entries)
        # No defensive copy: ``run`` never mutates its entries, and a stable
        # list identity is what lets the decoded-trace memo hit when the
        # same window is simulated under several configurations.
        result = state.mt_core.run(entries, hooks=hint_source.hooks(),
                                   start_cycle=state.mt_clock)
        return result, hint_source

    def _run_segment(self, state: "_State", entries: Sequence[DynamicInst],
                     skeleton: Skeleton) -> Tuple[CoreResult, CoreResult]:
        if not entries:
            empty = CoreResult(name="main-thread")
            return empty, CoreResult(name="look-ahead")
        # The two passes model concurrent threads but run back to back on
        # their own clocks, sharing the L3.  Quiesce the shared contention
        # resources (L3 MSHRs and write buffer, DRAM queues) at each
        # handoff: one pass's in-flight completion times live in the other
        # pass's future and would otherwise read as permanently-full files.
        # (Line fill times intentionally do carry across — that aliasing is
        # how the look-ahead thread's L3 warming reaches the main thread.)
        state.shared.drain_mshrs()
        products, lt_result = self._lookahead_pass(state, entries, skeleton)
        state.shared.drain_mshrs()
        mt_result, hint_source = self._main_pass(state, entries, skeleton, products)
        state.mt_clock += mt_result.cycles
        # The look-ahead thread cannot finish a segment before the main
        # thread starts consuming it, but in steady state it tracks at most a
        # BOQ-depth ahead of the main thread; advancing its clock by its own
        # busy time models its (faster) progress.
        state.lt_clock += lt_result.cycles
        state.reboots += hint_source.reboot_count
        state.prefetch_hints_installed += hint_source.prefetches_installed
        return mt_result, lt_result

    # -- result assembly ------------------------------------------------------
    def _finalize(self, state: "_State",
                  segments: Sequence[Tuple[CoreResult, CoreResult]],
                  entries: Sequence[DynamicInst],
                  skeleton: Skeleton) -> DlaOutcome:
        main = CoreResult(name="main-thread")
        lookahead = CoreResult(name="look-ahead")
        for mt_result, lt_result in segments:
            main.accumulate(mt_result)
            lookahead.accumulate(lt_result)

        energy_model = EnergyModel()
        main_energy = energy_model.evaluate(main, includes_dla_structures=True)
        # The look-ahead core is powered for the whole execution; its static
        # energy therefore accrues over the main thread's cycles even though
        # its own busy time is shorter.
        lookahead_for_energy = lookahead
        lookahead_energy = energy_model.evaluate(lookahead_for_energy,
                                                 is_lookahead=True,
                                                 includes_dla_structures=True)
        lookahead_energy.static = (
            lookahead_energy.static / lookahead.cycles * main.cycles
            if lookahead.cycles
            else lookahead_energy.static
        )
        lookahead_energy.cycles = main.cycles if main.cycles else lookahead.cycles

        fraction = (
            state.lt_dynamic_instructions / state.mt_dynamic_instructions
            if state.mt_dynamic_instructions
            else 0.0
        )
        return DlaOutcome(
            main=main,
            lookahead=lookahead,
            skeleton_dynamic_fraction=fraction,
            reboots=state.reboots,
            boq_incorrect=state.boq.incorrect,
            prefetch_hints_installed=state.prefetch_hints_installed,
            communication_bits_per_instruction=communication_bits_per_instruction(
                state.boq, state.fq, main.committed
            ),
            validations_skipped=main.validations_skipped,
            memory_traffic=state.shared.traffic,
            dram_energy=state.shared.dram.energy(int(main.cycles)),
            main_energy=main_energy,
            lookahead_energy=lookahead_energy,
            optimizations=self.dla_config.enabled_optimizations,
            memsys={
                "main": state.mt_memory.memsys_telemetry(),
                "lookahead": state.lt_memory.memsys_telemetry(),
                "shared": state.shared.memsys_telemetry(),
            },
        )

    # ------------------------------------------------------------------
    # skeleton-derived sets
    # ------------------------------------------------------------------
    def _value_target_pcs(self, skeleton: Skeleton) -> Set[int]:
        """Static PCs eligible for value reuse under this skeleton."""
        if not self.dla_config.enable_value_reuse:
            return set()
        slow = set(
            self.profile.slow_pcs(self.dla_config.slow_instruction_threshold)
        )
        return {pc for pc in slow if skeleton.contains(pc)}

    def _risky_branch_pcs(self, skeleton: Skeleton) -> Set[int]:
        """Branches whose look-ahead outcome may be stale.

        A branch is *risky* when its backward dependence chain contains a
        load whose producing store (same base register and displacement) is
        not part of the skeleton: the look-ahead thread would then read a
        stale value and can steer down the wrong path, forcing a reboot.
        """
        key = skeleton.included_pcs
        if key in self._risky_cache:
            return self._risky_cache[key]
        program = self.program
        chains = self.builder.analysis.chains
        store_signatures: Dict[Tuple[int, int], List[int]] = {}
        for inst in program:
            if inst.is_store and inst.srcs:
                store_signatures.setdefault((inst.srcs[0], inst.imm), []).append(inst.pc)

        risky: Set[int] = set()
        for branch_pc in program.branch_pcs():
            # Walk the branch's slice (bounded) looking for vulnerable loads.
            stack = [branch_pc]
            seen: Set[int] = set()
            vulnerable = False
            while stack and not vulnerable:
                pc = stack.pop()
                if pc in seen:
                    continue
                seen.add(pc)
                inst = program[pc]
                if inst.is_load and inst.srcs:
                    for store_pc in store_signatures.get((inst.srcs[0], inst.imm), ()):
                        if not skeleton.contains(store_pc):
                            vulnerable = True
                            break
                stack.extend(chains.get(pc, ()))
            if vulnerable:
                risky.add(branch_pc)
        self._risky_cache[key] = risky
        return risky
