"""Configuration of the DLA support structures and R3 optimizations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class DlaConfig:
    """Parameters of the DLA / R3-DLA hardware support (Table I, bottom).

    The four R3 optimizations can be toggled individually, which is how the
    synergy analysis of Fig. 13c and the per-technique breakdowns are run.
    """

    # -- queues connecting the two cores ---------------------------------
    boq_entries: int = 512
    fq_entries: int = 128
    #: One-way latency (cycles) for a hint to cross from LT's core to MT's.
    hint_transfer_latency: int = 8

    # -- reboot behaviour -------------------------------------------------
    #: Cycles to copy architectural registers from MT to LT on a reboot.
    reboot_penalty: int = 64

    # -- hint quality ------------------------------------------------------
    #: Per-dynamic-branch probability that the BOQ direction is wrong when the
    #: branch's slice depends on memory state the skeleton may have skipped.
    risky_branch_error_rate: float = 0.002
    #: Per-dynamic-branch error probability for fully-sliced branches.
    safe_branch_error_rate: float = 0.00005
    #: Per-use probability that a reused value differs from the architectural
    #: one (the paper observes >98% of LT results match MT).
    value_error_rate: float = 0.005

    # -- R3 optimization toggles -------------------------------------------
    enable_t1: bool = False
    enable_value_reuse: bool = False
    enable_fetch_buffer: bool = False
    enable_recycle: bool = False

    # -- R3 structure sizes (Table I) ---------------------------------------
    t1_entries: int = 16
    #: Main-thread fetch buffer when the FB optimization is enabled.
    fetch_buffer_entries: int = 32
    #: Baseline main-thread fetch buffer (conventional front end).
    baseline_fetch_buffer_entries: int = 8
    vpt_entries: int = 32
    lct_entries: int = 16

    # -- value reuse parameters ---------------------------------------------
    #: Dispatch-to-execute latency (cycles) above which an instruction is
    #: considered "slow" and worth a value prediction.
    slow_instruction_threshold: float = 20.0
    #: Iterations of a new loop the main thread spends identifying slow
    #: instructions before the SIF is considered trained.
    sif_training_iterations: int = 8

    # -- recycle parameters ---------------------------------------------------
    #: Minimum dynamic instructions for a loop unit to be tuned independently.
    loop_unit_min_instructions: int = 2000
    #: Number of skeleton versions the controller cycles through.
    recycle_versions: int = 6
    #: Dynamic-tuning trial length per version, in instructions.
    recycle_trial_instructions: int = 400

    # -- co-simulation control -------------------------------------------------
    #: Random seed for hint-error sampling (deterministic experiments).
    seed: int = 2019

    def r3(self) -> "DlaConfig":
        """A copy with every R3 optimization enabled (the full R3-DLA)."""
        return replace(
            self,
            enable_t1=True,
            enable_value_reuse=True,
            enable_fetch_buffer=True,
            enable_recycle=True,
        )

    def baseline_dla(self) -> "DlaConfig":
        """A copy with every R3 optimization disabled (the baseline DLA)."""
        return replace(
            self,
            enable_t1=False,
            enable_value_reuse=False,
            enable_fetch_buffer=False,
            enable_recycle=False,
        )

    def with_optimizations(self, *, t1: bool = False, value_reuse: bool = False,
                           fetch_buffer: bool = False, recycle: bool = False) -> "DlaConfig":
        """A copy with exactly the named optimizations enabled."""
        return replace(
            self,
            enable_t1=t1,
            enable_value_reuse=value_reuse,
            enable_fetch_buffer=fetch_buffer,
            enable_recycle=recycle,
        )

    @property
    def enabled_optimizations(self) -> tuple:
        names = []
        if self.enable_t1:
            names.append("t1")
        if self.enable_value_reuse:
            names.append("value_reuse")
        if self.enable_fetch_buffer:
            names.append("fetch_buffer")
        if self.enable_recycle:
            names.append("recycle")
        return tuple(names)
