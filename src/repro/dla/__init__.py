"""Decoupled Look-Ahead (DLA) and the R3-DLA optimizations.

This package contains the paper's primary contribution:

* :mod:`repro.dla.profiling` — training-run profiling used by the skeleton
  generator (per-PC miss rates, branch bias, stride detection, slow
  instructions).
* :mod:`repro.dla.skeleton` — skeleton construction (Appendix A): seeds,
  backward dependence chains, mask bits, and the multiple skeleton versions
  used by the recycle optimization.
* :mod:`repro.dla.queues` — the Branch Outcome Queue (BOQ) and Footnote
  Queue (FQ) connecting the look-ahead core to the main core.
* :mod:`repro.dla.t1` — the T1 strided-prefetch offload engine (Reduce).
* :mod:`repro.dla.value_reuse` — the Slow Instruction Filter and validation
  skipping logic (Reuse of values).
* :mod:`repro.dla.analytic` — the Markov-chain fetch-buffer model of
  Appendix B (Reuse of control-flow information).
* :mod:`repro.dla.recycle` — the skeleton recycling controller and
  Loop-Config Table (Recycle).
* :mod:`repro.dla.system` — the coupled two-core simulation that ties it all
  together, plus the SMT-core operating mode of Sec. IV-B3.
"""

from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile, profile_workload
from repro.dla.skeleton import Skeleton, SkeletonBuilder, SkeletonOptions
from repro.dla.queues import BranchOutcomeQueue, FootnoteQueue, FootnoteKind
from repro.dla.t1 import T1PrefetchEngine, T1Config
from repro.dla.value_reuse import SlowInstructionFilter, ValidationScoreboard, ValueReuseConfig
from repro.dla.analytic import FetchBufferModel, empirical_distributions
from repro.dla.recycle import LoopConfigTable, RecycleController, build_skeleton_versions
from repro.dla.system import DlaOutcome, DlaSystem
from repro.dla.smt import SmtComparison, simulate_smt_modes

__all__ = [
    "DlaConfig",
    "ProgramProfile",
    "profile_workload",
    "Skeleton",
    "SkeletonBuilder",
    "SkeletonOptions",
    "BranchOutcomeQueue",
    "FootnoteQueue",
    "FootnoteKind",
    "T1PrefetchEngine",
    "T1Config",
    "SlowInstructionFilter",
    "ValidationScoreboard",
    "ValueReuseConfig",
    "FetchBufferModel",
    "empirical_distributions",
    "LoopConfigTable",
    "RecycleController",
    "build_skeleton_versions",
    "DlaSystem",
    "DlaOutcome",
    "SmtComparison",
    "simulate_smt_modes",
]
