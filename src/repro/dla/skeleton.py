"""Skeleton construction (Appendix A of the paper).

A *skeleton* is the static subset of the program the look-ahead thread
executes.  Construction follows the paper exactly:

1. collect *seed* instructions — all control instructions, plus memory
   instructions whose training-run miss probability exceeds the thresholds
   (>1% in L1 or >0.1% in L2), plus optional extra seeds contributed by the
   R3 optimizations (value-reuse targets, T1 targets added back);
2. include the backward dependence chain of every seed, ignoring
   store-to-load dependences separated by more than 1000 static
   instructions;
3. encode the result as one mask bit per static instruction (plus the S bit
   marking T1-handled strided instructions, which are *excluded* from the
   skeleton along with their exclusive backward slices).

Biased branches can additionally be converted to unconditional control flow
in the skeleton ("biased branches" recycling option): they stay in the
skeleton (the BOQ still needs an outcome for them) but their backward slice
is no longer required, shrinking the skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.dla.profiling import ProgramProfile
from repro.isa.analysis import StaticAnalysis, backward_slice
from repro.isa.program import Program


@dataclass
class SkeletonOptions:
    """Seed-selection options — one combination per skeleton version."""

    name: str = "default"
    #: Seed memory instructions with L1 miss rate above this (None disables).
    l1_miss_threshold: Optional[float] = 0.01
    #: Seed memory instructions with L2 miss rate above this (None disables).
    l2_miss_threshold: Optional[float] = 0.001
    #: Add value-reuse targets (slow instructions) as seeds.
    include_value_targets: bool = False
    #: Cap on how many value-reuse targets may be added back to the skeleton.
    #: Adding a slow instruction speeds up the main thread but slows the
    #: look-ahead thread (its backward chain comes along), so only the worst
    #: offenders are worth it.
    max_value_targets: int = 6
    #: Budget on the *dynamic* growth value-reuse seeds may cause, expressed
    #: as a fraction of the workload's dynamic instruction count.  A seed
    #: whose backward chain would grow the look-ahead thread beyond the
    #: budget is skipped — the LT slowdown would outweigh the MT gain.
    value_target_growth_budget: float = 0.12
    #: Keep T1-handled strided loads in the skeleton (by default they are
    #: offloaded and removed).
    keep_t1_targets: bool = True
    #: Treat branches with at least this bias as unconditional in the
    #: skeleton, dropping their backward slices (None disables).
    biased_branch_threshold: Optional[float] = None
    #: Ignore store->load dependences farther apart than this many static
    #: instructions when slicing (Appendix A).
    max_store_load_distance: int = 1000


@dataclass
class Skeleton:
    """The result of skeleton construction for one program."""

    program: Program
    options: SkeletonOptions
    #: Static PCs included in the look-ahead thread's code.
    included_pcs: FrozenSet[int]
    #: Static PCs marked with the S bit and handled by the T1 engine.
    t1_pcs: FrozenSet[int]
    #: Seed PCs that caused inclusion (for reporting / debugging).
    seed_pcs: FrozenSet[int]
    #: Branch PCs whose slices were dropped due to strong bias.
    biased_branch_pcs: FrozenSet[int]
    #: Memory-seed PCs (prefetch payloads) included in the skeleton.
    prefetch_payload_pcs: FrozenSet[int]

    def mask(self) -> List[bool]:
        """Mask bits, one per static instruction (True = on the skeleton)."""
        return [pc in self.included_pcs for pc in range(len(self.program))]

    def contains(self, pc: int) -> bool:
        return pc in self.included_pcs

    @property
    def static_fraction(self) -> float:
        """Fraction of static instructions on the skeleton."""
        return len(self.included_pcs) / len(self.program) if len(self.program) else 0.0

    def dynamic_fraction(self, trace) -> float:
        """Fraction of dynamic instructions the look-ahead thread executes."""
        if len(trace) == 0:
            return 0.0
        included_pcs = self.included_pcs
        included = sum(1 for entry in trace if entry.static.pc in included_pcs)
        return included / len(trace)

    def describe(self) -> str:
        return (
            f"skeleton[{self.options.name}]: {len(self.included_pcs)}/"
            f"{len(self.program)} static instructions, "
            f"{len(self.t1_pcs)} T1-offloaded, "
            f"{len(self.biased_branch_pcs)} biased branches pruned"
        )


class SkeletonBuilder:
    """Builds skeletons for one program from its profile."""

    def __init__(self, program: Program, profile: ProgramProfile,
                 analysis: Optional[StaticAnalysis] = None) -> None:
        self.program = program
        self.profile = profile
        self.analysis = analysis or StaticAnalysis.analyze(program)

    # ------------------------------------------------------------------
    def build(self, options: Optional[SkeletonOptions] = None,
              enable_t1: bool = False) -> Skeleton:
        """Construct a skeleton under ``options``.

        ``enable_t1`` activates the Reduce optimization: strided loads are
        marked with the S bit, excluded from the seed set, and their
        backward dependence chains are not pulled in on their behalf.
        """
        options = options or SkeletonOptions()
        program = self.program
        profile = self.profile

        t1_pcs: Set[int] = set()
        if enable_t1 and not options.keep_t1_targets:
            t1_pcs = set(profile.strided_pcs())
        elif enable_t1 and options.keep_t1_targets:
            # The engine still handles them in MT, but they remain seeds so
            # the look-ahead thread warms its own cache with them.
            t1_pcs = set(profile.strided_pcs())

        # -- seeds -------------------------------------------------------
        control_seeds = set(program.control_pcs())
        memory_seeds: Set[int] = set()
        if options.l1_miss_threshold is not None:
            memory_seeds.update(profile.l1_miss_pcs(options.l1_miss_threshold))
        if options.l2_miss_threshold is not None:
            memory_seeds.update(profile.l2_miss_pcs(options.l2_miss_threshold))
        if enable_t1 and not options.keep_t1_targets:
            memory_seeds -= t1_pcs

        value_seeds: Set[int] = set()
        if options.include_value_targets:
            value_seeds = self._select_value_seeds(options, control_seeds, memory_seeds)

        biased_pcs: Set[int] = set()
        if options.biased_branch_threshold is not None:
            biased_pcs = set(
                profile.biased_branch_pcs(options.biased_branch_threshold)
            )

        # Biased branches stay on the skeleton but do not act as slice seeds.
        slicing_seeds = (control_seeds - biased_pcs) | memory_seeds | value_seeds
        included = backward_slice(
            program,
            slicing_seeds,
            self.analysis.chains,
            max_store_load_distance=options.max_store_load_distance,
        )
        included |= control_seeds          # every control instruction is kept

        return Skeleton(
            program=program,
            options=options,
            included_pcs=frozenset(included),
            t1_pcs=frozenset(t1_pcs),
            seed_pcs=frozenset(slicing_seeds),
            biased_branch_pcs=frozenset(biased_pcs),
            prefetch_payload_pcs=frozenset(memory_seeds),
        )

    # ------------------------------------------------------------------
    def _select_value_seeds(self, options: SkeletonOptions,
                            control_seeds: Set[int],
                            memory_seeds: Set[int]) -> Set[int]:
        """Pick value-reuse seeds whose look-ahead cost stays within budget.

        Candidates are ranked by how much main-thread time they cost
        (latency x execution count).  Each candidate's backward slice is
        compared against the skeleton that would exist without it; a
        candidate is accepted only while the cumulative *dynamic* growth of
        the look-ahead thread stays below the configured budget, since an LT
        slowed past the MT becomes the system bottleneck.
        """
        profile = self.profile
        candidates = profile.slow_pcs()
        ranked = sorted(
            candidates,
            key=lambda pc: (
                profile.dispatch_to_execute.get(pc, 0.0)
                * profile.instruction_counts.get(pc, 0)
            ),
            reverse=True,
        )[: options.max_value_targets]
        if not ranked:
            return set()

        base_included = backward_slice(
            self.program,
            control_seeds | memory_seeds,
            self.analysis.chains,
            max_store_load_distance=options.max_store_load_distance,
        )
        dynamic_total = max(1, profile.dynamic_instructions)
        budget = options.value_target_growth_budget * dynamic_total
        growth = 0.0
        accepted: Set[int] = set()
        for pc in ranked:
            candidate_slice = backward_slice(
                self.program,
                [pc],
                self.analysis.chains,
                max_store_load_distance=options.max_store_load_distance,
            )
            new_pcs = candidate_slice - base_included
            added_dynamic = sum(
                profile.instruction_counts.get(p, 0) for p in new_pcs
            )
            if growth + added_dynamic > budget:
                continue
            growth += added_dynamic
            accepted.add(pc)
            base_included |= candidate_slice
        return accepted

    # ------------------------------------------------------------------
    def build_default(self, enable_t1: bool = False) -> Skeleton:
        """The baseline skeleton used by plain DLA (and by R3-DLA before the
        recycle controller picks a different version)."""
        options = SkeletonOptions(name="default", keep_t1_targets=not enable_t1)
        return self.build(options, enable_t1=enable_t1)
