"""Probabilistic fetch-buffer model (Appendix B) and its empirical inputs.

The paper analyses the decoupled fetch buffer as a Markov chain: each cycle
the decode stage withdraws instructions according to a demand distribution
``D`` and the fetch unit deposits instructions according to a supply
distribution ``S``.  Convolving the two gives the distribution of the change
in queue length; stacking shifted copies of that distribution (with absorbing
boundaries at 0 and the capacity ``N``) gives the transition matrix whose
principal eigenvector is the steady-state queue-length distribution; and the
expected number of fetch bubbles follows directly.

This module implements that analysis (used for Fig. 5 and validated against
simulation in Fig. 14), plus helpers to measure ``D`` and ``S`` empirically
from a timing-model run, mirroring how the paper measures them by idealising
one side of the machine at a time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.pipeline import OutOfOrderCore
from repro.emulator.trace import DynamicInst
from repro.memory.hierarchy import CoreMemorySystem, SharedMemorySystem


def _normalise(distribution: Sequence[float]) -> np.ndarray:
    array = np.asarray(distribution, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("distribution must be a non-empty 1-D sequence")
    if np.any(array < 0):
        raise ValueError("distribution entries must be non-negative")
    total = array.sum()
    if total <= 0:
        raise ValueError("distribution must have positive mass")
    return array / total


class FetchBufferModel:
    """Markov-chain model of a fetch queue with capacity ``N``.

    Parameters
    ----------
    demand:
        ``demand[j]`` is the probability the decode stage can absorb ``j``
        instructions in a cycle (j = 0..M, M being the decode width).
    supply:
        ``supply[s]`` is the probability the fetch unit can deposit ``s``
        instructions in a cycle (s = 0..fetch width).
    """

    def __init__(self, demand: Sequence[float], supply: Sequence[float]) -> None:
        self.demand = _normalise(demand)
        self.supply = _normalise(supply)

    # ------------------------------------------------------------------
    def change_distribution(self) -> Tuple[np.ndarray, int]:
        """Distribution of the per-cycle change in queue length.

        Returns ``(C, offset)`` where ``C[k]`` is the probability of a change
        of ``k - offset`` instructions.
        """
        max_withdraw = len(self.demand) - 1
        max_deposit = len(self.supply) - 1
        size = max_withdraw + max_deposit + 1
        change = np.zeros(size)
        for deposit, p_s in enumerate(self.supply):
            for withdraw, p_d in enumerate(self.demand):
                change[deposit - withdraw + max_withdraw] += p_s * p_d
        return change, max_withdraw

    def transition_matrix(self, capacity: int) -> np.ndarray:
        """Column-stochastic transition matrix over queue lengths 0..capacity."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        change, offset = self.change_distribution()
        n_states = capacity + 1
        matrix = np.zeros((n_states, n_states))
        for current in range(n_states):           # column: current length j
            for k, probability in enumerate(change):
                delta = k - offset
                nxt = current + delta
                nxt = min(max(nxt, 0), capacity)  # absorb at the boundaries
                matrix[nxt, current] += probability
        return matrix

    def steady_state(self, capacity: int, iterations: int = 2000,
                     tolerance: float = 1e-12) -> np.ndarray:
        """Steady-state queue-length distribution ``Q`` (power iteration).

        ``P`` is column-stochastic, so its largest eigenvalue is 1 and power
        iteration from the uniform distribution converges to the
        corresponding eigenvector (Perron-Frobenius).
        """
        matrix = self.transition_matrix(capacity)
        state = np.full(capacity + 1, 1.0 / (capacity + 1))
        for _ in range(iterations):
            nxt = matrix @ state
            nxt /= nxt.sum()
            if np.max(np.abs(nxt - state)) < tolerance:
                state = nxt
                break
            state = nxt
        return state

    def expected_fetch_bubbles(self, capacity: int) -> float:
        """E[FB] = sum_i Q_i * sum_{j>i} D_j (j - i)."""
        queue = self.steady_state(capacity)
        expected = 0.0
        for length, q_probability in enumerate(queue):
            shortfall = 0.0
            for demanded, d_probability in enumerate(self.demand):
                if demanded > length:
                    shortfall += d_probability * (demanded - length)
            expected += q_probability * shortfall
        return expected

    def bubble_curve(self, capacities: Sequence[int]) -> Dict[int, float]:
        """Expected bubbles for each capacity (the Fig. 5-b sweep)."""
        return {capacity: self.expected_fetch_bubbles(capacity) for capacity in capacities}


# ---------------------------------------------------------------------------
# Empirical measurement of the demand and supply distributions
# ---------------------------------------------------------------------------
@dataclass
class EmpiricalDistributions:
    """Measured per-cycle demand/supply distributions for one workload."""

    demand: List[float]
    supply: List[float]
    #: Supply distribution under an idealised (trace-cache-like) fetch path.
    trace_cache_supply: List[float]


def _per_cycle_histogram(times: Sequence[float], max_count: int) -> List[float]:
    """Probability distribution of events-per-integer-cycle, clipped at max."""
    if not times:
        return [1.0] + [0.0] * max_count
    counter = Counter(int(t) for t in times)
    first, last = int(min(times)), int(max(times))
    total_cycles = max(1, last - first + 1)
    histogram = [0] * (max_count + 1)
    busy_cycles = 0
    for _, count in counter.items():
        histogram[min(count, max_count)] += 1
        busy_cycles += 1
    histogram[0] = max(0, total_cycles - busy_cycles)
    return _normalise(histogram).tolist()


def empirical_distributions(entries: Sequence[DynamicInst],
                            config: Optional[SystemConfig] = None) -> EmpiricalDistributions:
    """Measure demand (decode) and supply (fetch) distributions.

    Demand is measured by idealising the fetch side: the per-cycle dispatch
    counts of a run with a very large fetch buffer approximate how many
    instructions the back end could absorb each cycle.  Supply is measured
    from the per-cycle fetch counts of a normal run; the trace-cache variant
    re-measures supply with instruction fetch idealised to always hit.
    """
    config = config or SystemConfig()
    decode_width = config.core.decode_width
    fetch_width = config.core.fetch_width

    # Demand: generous fetch buffer so the back end sets the pace.
    demand_cfg = config.with_overrides(fetch_buffer_entries=512)
    shared = SharedMemorySystem(demand_cfg.memory)
    memory = CoreMemorySystem(shared, demand_cfg.memory)
    core = OutOfOrderCore(demand_cfg.core, memory)
    result = core.run(list(entries), collect_timings=True)
    dispatch_times = [t.dispatch for t in result.timings]
    demand = _per_cycle_histogram(dispatch_times, decode_width)

    # Supply: normal configuration, fetch timestamps.
    shared = SharedMemorySystem(config.memory)
    memory = CoreMemorySystem(shared, config.memory)
    core = OutOfOrderCore(config.core, memory)
    result = core.run(list(entries), collect_timings=True)
    fetch_times = [t.fetch for t in result.timings]
    supply = _per_cycle_histogram(fetch_times, fetch_width)

    # Trace-cache-like supply: instruction fetch always hits (zero-latency
    # I-cache), approximating the higher instantaneous fill rate of a trace
    # cache.  The distribution differs from `supply` mainly in the tail.
    ideal_memory_cfg = config.memory
    shared = SharedMemorySystem(ideal_memory_cfg)
    memory = CoreMemorySystem(shared, ideal_memory_cfg)
    # Pre-warm the I-cache with every block of the program so fetch never misses.
    block = ideal_memory_cfg.l1i.block_bytes
    touched = set()
    for entry in entries:
        address = entry.pc * 4
        if address // block not in touched:
            touched.add(address // block)
            memory.l1i.fill(address, 0)
    core = OutOfOrderCore(config.core, memory)
    result = core.run(list(entries), collect_timings=True)
    trace_fetch_times = [t.fetch for t in result.timings]
    trace_supply = _per_cycle_histogram(trace_fetch_times, fetch_width)

    return EmpiricalDistributions(
        demand=demand, supply=supply, trace_cache_supply=trace_supply
    )


def simulated_queue_distribution(result_histogram: Dict[int, int],
                                 capacity: int) -> List[float]:
    """Normalise a fetch-queue occupancy histogram from the timing model into
    a probability distribution over 0..capacity (for the Fig. 14 comparison)."""
    values = [result_histogram.get(i, 0) for i in range(capacity + 1)]
    total = sum(values)
    if total == 0:
        return [1.0] + [0.0] * capacity
    return [v / total for v in values]
