"""SMT-core usage scenarios (Sec. IV-B3, Fig. 11).

The paper's final experiment asks: given one wide SMT core (loosely modelled
after an IBM POWER9 SMT8 core that can also operate as two independent
half-cores), what is the best way to spend it on a single program?

* **FC** — use the whole wide core for single-thread execution;
* **DLA** — split it into two half-cores and run the main thread on one and
  the look-ahead thread on the other;
* **R3-DLA** — the same split, with the R3 optimizations enabled;
* **SMT** — run two independent copies of the program, one per hardware
  thread, and report combined throughput (a throughput reference point, not a
  single-thread option).

All results are normalised to a single half-core (HC).

The module exposes each scenario as an independently-simulatable piece
(:func:`smt_configs`, :func:`simulate_smt_pair`, the ordinary baseline/DLA
entry points) plus :func:`comparison_from_outcomes` to assemble the figure —
so :mod:`repro.experiments.fig11_smt` can route every simulation through
``ExperimentRunner.auxiliary`` and its content-fingerprint cache instead of
re-simulating on every run.  :func:`simulate_smt_modes` remains the uncached
one-call composition of the same pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig, sm_half_core_config, smt_full_core_config
from repro.core.pipeline import OutOfOrderCore
from repro.core.results import CoreResult
from repro.core.system import simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile
from repro.dla.system import DlaSystem
from repro.emulator.trace import Trace
from repro.isa.program import Program
from repro.memory.hierarchy import CoreMemorySystem, SharedMemorySystem
from repro.prefetch import make_prefetcher


@dataclass
class SmtComparison:
    """Throughput of each usage scenario, normalised to the half-core."""

    half_core_ipc: float
    full_core: float
    dla: float
    r3_dla: float
    smt: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "FC": self.full_core,
            "DLA": self.dla,
            "R3-DLA": self.r3_dla,
            "SMT": self.smt,
        }


@dataclass
class SmtPairOutcome:
    """Two-copy SMT throughput run: per-copy results and combined IPC."""

    copies: List[CoreResult]

    @property
    def ipc(self) -> float:
        total = 0.0
        for copy in self.copies:
            total += copy.ipc
        return total

    @property
    def committed(self) -> int:
        return sum(copy.committed for copy in self.copies)


def smt_configs(base_config: Optional[SystemConfig] = None) -> Tuple[SystemConfig, SystemConfig]:
    """The (half-core, full-core) system configs derived from ``base_config``.

    Only the core changes (sized exactly as Fig. 11); everything else —
    memory hierarchy, prefetchers, frequency/voltage and any future fields —
    carries over via ``replace`` so the derived configs (and therefore the
    auxiliary-cache fingerprints) track the base config faithfully.
    """
    base_config = base_config or SystemConfig()
    half_cfg = replace(base_config, core=sm_half_core_config())
    full_cfg = replace(base_config, core=smt_full_core_config())
    return half_cfg, full_cfg


def simulate_smt_pair(trace: Trace, config: SystemConfig) -> SmtPairOutcome:
    """Two copies of the benchmark sharing the L3/DRAM (the SMT scenario).

    Each copy gets half of the wide core's resources (the SMT partitioning);
    the copies are simulated back to back against one shared memory system so
    that they contend for L3 capacity and DRAM bandwidth.
    """
    half = config.with_overrides(**vars(sm_half_core_config()))
    shared = SharedMemorySystem(half.memory)
    copies: List[CoreResult] = []
    for copy_index in range(2):
        # Each copy restarts the simulated clock: quiesce the shared MSHR
        # file so the previous copy's in-flight arrival times cannot alias
        # into the new time base (L3 *contents* intentionally carry over).
        shared.drain_mshrs()
        memory = CoreMemorySystem(shared, half.memory)
        l2_pf = (
            make_prefetcher(half.l2_prefetcher)
            if half.l2_prefetcher not in (None, "none")
            else None
        )
        core = OutOfOrderCore(half.core, memory, l2_prefetcher=l2_pf,
                              name=f"smt-copy-{copy_index}")
        copies.append(core.run(trace.entries))
    return SmtPairOutcome(copies=copies)


def comparison_from_outcomes(half_outcome, full_outcome, dla_outcome,
                             r3_outcome, pair_outcome) -> SmtComparison:
    """Assemble the Fig. 11 comparison from the five scenario outcomes."""
    half_ipc = half_outcome.ipc or 1e-9
    return SmtComparison(
        half_core_ipc=half_ipc,
        full_core=full_outcome.ipc / half_ipc,
        dla=dla_outcome.ipc / half_ipc,
        r3_dla=r3_outcome.ipc / half_ipc,
        smt=pair_outcome.ipc / half_ipc,
    )


def simulate_smt_modes(
    program: Program,
    trace: Trace,
    profile: ProgramProfile,
    base_config: Optional[SystemConfig] = None,
    dla_config: Optional[DlaConfig] = None,
) -> SmtComparison:
    """Run the four usage scenarios of Fig. 11 for one workload (uncached)."""
    dla_config = dla_config or DlaConfig()
    half_cfg, full_cfg = smt_configs(base_config)

    half_outcome = simulate_baseline(trace, half_cfg)
    full_outcome = simulate_baseline(trace, full_cfg)

    dla_system = DlaSystem(program, half_cfg, dla_config.baseline_dla(), profile=profile)
    dla_outcome = dla_system.simulate(trace)

    r3_system = DlaSystem(program, half_cfg, dla_config.r3(), profile=profile)
    r3_outcome = r3_system.simulate(trace)

    pair_outcome = simulate_smt_pair(trace, full_cfg)
    return comparison_from_outcomes(
        half_outcome, full_outcome, dla_outcome, r3_outcome, pair_outcome
    )
