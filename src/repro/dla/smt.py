"""SMT-core usage scenarios (Sec. IV-B3, Fig. 11).

The paper's final experiment asks: given one wide SMT core (loosely modelled
after an IBM POWER9 SMT8 core that can also operate as two independent
half-cores), what is the best way to spend it on a single program?

* **FC** — use the whole wide core for single-thread execution;
* **DLA** — split it into two half-cores and run the main thread on one and
  the look-ahead thread on the other;
* **R3-DLA** — the same split, with the R3 optimizations enabled;
* **SMT** — run two independent copies of the program, one per hardware
  thread, and report combined throughput (a throughput reference point, not a
  single-thread option).

All results are normalised to a single half-core (HC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SystemConfig, sm_half_core_config, smt_full_core_config
from repro.core.pipeline import OutOfOrderCore
from repro.core.system import simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile
from repro.dla.system import DlaSystem
from repro.emulator.trace import Trace
from repro.isa.program import Program
from repro.memory.hierarchy import CoreMemorySystem, SharedMemorySystem
from repro.prefetch import make_prefetcher


@dataclass
class SmtComparison:
    """Throughput of each usage scenario, normalised to the half-core."""

    half_core_ipc: float
    full_core: float
    dla: float
    r3_dla: float
    smt: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "FC": self.full_core,
            "DLA": self.dla,
            "R3-DLA": self.r3_dla,
            "SMT": self.smt,
        }


def _smt_throughput(trace: Trace, config: SystemConfig) -> float:
    """Combined IPC of two copies of the benchmark sharing the L3/DRAM.

    Each copy gets half of the wide core's resources (the SMT partitioning);
    the copies are simulated back to back against one shared memory system so
    that they contend for L3 capacity and DRAM bandwidth.
    """
    half = config.with_overrides(**vars(sm_half_core_config()))
    shared = SharedMemorySystem(half.memory)
    total_ipc = 0.0
    for copy_index in range(2):
        memory = CoreMemorySystem(shared, half.memory)
        l2_pf = (
            make_prefetcher(half.l2_prefetcher)
            if half.l2_prefetcher not in (None, "none")
            else None
        )
        core = OutOfOrderCore(half.core, memory, l2_prefetcher=l2_pf,
                              name=f"smt-copy-{copy_index}")
        result = core.run(trace.entries)
        total_ipc += result.ipc
    return total_ipc


def simulate_smt_modes(
    program: Program,
    trace: Trace,
    profile: ProgramProfile,
    base_config: Optional[SystemConfig] = None,
    dla_config: Optional[DlaConfig] = None,
) -> SmtComparison:
    """Run the four usage scenarios of Fig. 11 for one workload."""
    base_config = base_config or SystemConfig()
    dla_config = dla_config or DlaConfig()

    half_cfg = SystemConfig(
        core=sm_half_core_config(),
        memory=base_config.memory,
        l2_prefetcher=base_config.l2_prefetcher,
        l1_prefetcher=base_config.l1_prefetcher,
    )
    full_cfg = SystemConfig(
        core=smt_full_core_config(),
        memory=base_config.memory,
        l2_prefetcher=base_config.l2_prefetcher,
        l1_prefetcher=base_config.l1_prefetcher,
    )

    half_outcome = simulate_baseline(trace, half_cfg)
    full_outcome = simulate_baseline(trace, full_cfg)

    dla_system = DlaSystem(program, half_cfg, dla_config.baseline_dla(), profile=profile)
    dla_outcome = dla_system.simulate(trace)

    r3_system = DlaSystem(program, half_cfg, dla_config.r3(), profile=profile)
    r3_outcome = r3_system.simulate(trace)

    smt_ipc = _smt_throughput(trace, full_cfg)

    half_ipc = half_outcome.ipc or 1e-9
    return SmtComparison(
        half_core_ipc=half_ipc,
        full_core=full_outcome.ipc / half_ipc,
        dla=dla_outcome.ipc / half_ipc,
        r3_dla=r3_outcome.ipc / half_ipc,
        smt=smt_ipc / half_ipc,
    )
