"""The Branch Outcome Queue (BOQ) and Footnote Queue (FQ).

These two FIFOs are the only communication channel between the look-ahead
core and the main core (Sec. III-A).  The BOQ carries one 2-bit entry per
committed conditional branch (direction + a footnote flag); the FQ carries
wider, less frequent payloads — L1/L2 prefetch addresses, TLB hints,
indirect-branch targets, and (with the value-reuse optimization) predicted
register values.  The classes here model occupancy, ordering and the
communication-volume statistics the paper reports (≈2.2 bits transferred per
instruction), while the co-simulation in :mod:`repro.dla.system` decides the
*timing* of production and consumption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.util.fifo import BoundedFifo


class FootnoteKind(enum.Enum):
    """Payload types carried by the footnote queue (Fig. 2 / Fig. 8)."""

    L1_PREFETCH = "l1_prefetch"
    L2_PREFETCH = "l2_prefetch"
    TLB_HINT = "tlb_hint"
    INDIRECT_TARGET = "indirect_target"
    VALUE_PREDICTION = "value_prediction"
    REBOOT_REGISTER = "reboot_register"

    @property
    def payload_bits(self) -> int:
        """Approximate payload width used for communication accounting."""
        return {
            FootnoteKind.L1_PREFETCH: 48,
            FootnoteKind.L2_PREFETCH: 48,
            FootnoteKind.TLB_HINT: 36,
            FootnoteKind.INDIRECT_TARGET: 48,
            FootnoteKind.VALUE_PREDICTION: 64,
            FootnoteKind.REBOOT_REGISTER: 64,
        }[self]


@dataclass
class BoqEntry:
    """One branch outcome produced by the look-ahead thread."""

    branch_seq: int          # dynamic branch index in the committed stream
    pc: int
    taken: bool
    produce_cycle: float     # LT commit cycle
    has_footnote: bool = False


@dataclass
class FootnoteEntry:
    """One footnote-queue payload."""

    kind: FootnoteKind
    produce_cycle: float
    address: Optional[int] = None
    value: Optional[int] = None
    #: Offset of the value-predicted instruction from the preceding branch.
    offset_from_branch: int = 0


class BranchOutcomeQueue:
    """Occupancy/statistics model of the BOQ."""

    ENTRY_BITS = 2

    def __init__(self, capacity: int = 512) -> None:
        self.fifo: BoundedFifo[BoqEntry] = BoundedFifo(capacity)
        self.produced = 0
        self.consumed = 0
        self.incorrect = 0

    def produce(self, entry: BoqEntry) -> bool:
        """Push an outcome; returns False when the queue is full (LT stalls)."""
        ok = self.fifo.try_push(entry)
        if ok:
            self.produced += 1
        return ok

    def consume(self) -> Optional[BoqEntry]:
        entry = self.fifo.try_pop()
        if entry is not None:
            self.consumed += 1
        return entry

    def record_incorrect(self) -> None:
        self.incorrect += 1

    def flush(self) -> int:
        """Drop all pending entries (look-ahead reboot); returns count dropped."""
        dropped = len(self.fifo)
        self.fifo.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def bits_transferred(self) -> int:
        return self.produced * self.ENTRY_BITS


class FootnoteQueue:
    """Occupancy/statistics model of the FQ."""

    def __init__(self, capacity: int = 128) -> None:
        self.fifo: BoundedFifo[FootnoteEntry] = BoundedFifo(capacity)
        self.produced = 0
        self.consumed = 0
        self.bits_transferred = 0
        self.produced_by_kind = {kind: 0 for kind in FootnoteKind}

    def produce(self, entry: FootnoteEntry) -> bool:
        ok = self.fifo.try_push(entry)
        if ok:
            self.produced += 1
            self.produced_by_kind[entry.kind] += 1
            self.bits_transferred += entry.kind.payload_bits
        return ok

    def consume(self) -> Optional[FootnoteEntry]:
        entry = self.fifo.try_pop()
        if entry is not None:
            self.consumed += 1
        return entry

    def flush(self) -> int:
        dropped = len(self.fifo)
        self.fifo.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return len(self.fifo)


def communication_bits_per_instruction(boq: BranchOutcomeQueue, fq: FootnoteQueue,
                                       committed_instructions: int) -> float:
    """Average LT-to-MT communication volume in bits per committed instruction.

    The paper reports this averages about 2.2 bits per instruction and is
    therefore an insignificant energy contributor.
    """
    if committed_instructions <= 0:
        return 0.0
    total_bits = boq.bits_transferred + fq.bits_transferred
    return total_bits / committed_instructions
