"""Skeleton recycling (the *Recycle* optimization, Sec. III-E).

The baseline skeleton is built from simple heuristics and is rarely optimal
for every phase of a program.  The recycle mechanism therefore prepares a
small number of skeleton *versions* offline (different seed combinations) and
cycles through them at run time, one loop at a time, keeping whichever runs
fastest for that loop in a Loop-Config Table (LCT).

The reproduction mirrors that flow:

* :func:`build_skeleton_versions` produces the six versions evaluated in the
  paper from combinations of the five seed options (L1 targets, L2 targets,
  value-reuse targets, T1 targets, biased branches);
* :class:`RecycleController` segments the dynamic trace into loop units,
  selects the best version per loop (statically from training samples, or
  dynamically by paying for trial iterations of every version), and emits a
  segmented simulation plan for :class:`~repro.dla.system.DlaSystem`;
* :class:`LoopConfigTable` is the small (16-entry) LCT hardware structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dla.config import DlaConfig
from repro.dla.skeleton import Skeleton, SkeletonBuilder, SkeletonOptions
from repro.emulator.trace import DynamicInst


class _SliceMemo:
    """Stable identity for repeated slices of the same trace window.

    The planner carves each window into loop units, trial slices, and
    search samples on *every* ``plan()`` call.  Plain slicing would hand
    the simulator a brand-new list each time, defeating the id-keyed
    decoded-trace and filtered-look-ahead memos downstream.  Keying on
    ``(id(parent), start, stop)`` — with a strong reference to the parent
    so the id cannot be recycled — returns the same list object for the
    same logical slice, which is what makes those memos hit.
    """

    MAX_ENTRIES = 512

    def __init__(self) -> None:
        self._slices: Dict[Tuple[int, int, int], list] = {}
        self._parents: Dict[Tuple[int, int, int], object] = {}

    def get(self, entries: Sequence[DynamicInst], start: int, stop: int) -> list:
        stop = min(stop, len(entries))
        start = min(start, stop)
        token = (id(entries), start, stop)
        hit = self._slices.get(token)
        if hit is not None:
            return hit
        out = list(entries[start:stop])
        while len(self._slices) >= self.MAX_ENTRIES:
            victim = next(iter(self._slices))
            del self._slices[victim]
            self._parents.pop(victim, None)
        self._slices[token] = out
        self._parents[token] = entries
        return out


_SLICES = _SliceMemo()


def build_skeleton_versions(builder: SkeletonBuilder, enable_t1: bool = True,
                            include_value_targets: bool = True) -> List[Skeleton]:
    """The six skeleton versions cycled through by the recycle controller."""
    option_sets = [
        SkeletonOptions(
            name="default",
            include_value_targets=include_value_targets,
            keep_t1_targets=not enable_t1,
        ),
        SkeletonOptions(
            name="l2-only",
            l1_miss_threshold=None,
            l2_miss_threshold=0.001,
            include_value_targets=include_value_targets,
            keep_t1_targets=not enable_t1,
        ),
        SkeletonOptions(
            name="aggressive-prefetch",
            l1_miss_threshold=0.002,
            l2_miss_threshold=0.0002,
            include_value_targets=include_value_targets,
            keep_t1_targets=not enable_t1,
        ),
        SkeletonOptions(
            name="no-value-targets",
            include_value_targets=False,
            keep_t1_targets=not enable_t1,
        ),
        SkeletonOptions(
            name="t1-targets-back",
            include_value_targets=include_value_targets,
            keep_t1_targets=True,
        ),
        SkeletonOptions(
            name="biased-branches-pruned",
            include_value_targets=include_value_targets,
            keep_t1_targets=not enable_t1,
            biased_branch_threshold=0.97,
        ),
    ]
    return [builder.build(options, enable_t1=enable_t1) for options in option_sets]


@dataclass
class LoopConfigTable:
    """The LCT: loop branch PC -> best skeleton version index (16 entries)."""

    capacity: int = 16
    _entries: Dict[int, int] = field(default_factory=dict)
    _use_order: List[int] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    def lookup(self, loop_pc: int) -> Optional[int]:
        if loop_pc in self._entries:
            self.hits += 1
            self._touch(loop_pc)
            return self._entries[loop_pc]
        self.misses += 1
        return None

    def insert(self, loop_pc: int, skeleton_index: int) -> None:
        if loop_pc not in self._entries and len(self._entries) >= self.capacity:
            victim = self._use_order.pop(0)
            del self._entries[victim]
        self._entries[loop_pc] = skeleton_index
        self._touch(loop_pc)

    def _touch(self, loop_pc: int) -> None:
        if loop_pc in self._use_order:
            self._use_order.remove(loop_pc)
        self._use_order.append(loop_pc)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loop_pc: int) -> bool:
        return loop_pc in self._entries


@dataclass
class LoopUnit:
    """One tuning unit: a contiguous trace region dominated by one loop."""

    loop_pc: int
    start: int
    end: int                     # exclusive index into the trace

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class RecyclePlan:
    """Everything the segmented DLA simulation needs, plus Fig. 15 data."""

    #: (trace segment, skeleton) pairs in execution order.
    segments: List[Tuple[Sequence[DynamicInst], Skeleton]]
    #: Per-unit chosen version index, in execution order.
    chosen_versions: List[int]
    #: Instruction-weighted distribution over version indices (sums to 1).
    version_distribution: Dict[int, float]
    #: The LCT state after planning.
    lct: LoopConfigTable


class RecycleController:
    """Plans per-loop skeleton selection for a workload."""

    def __init__(self, versions: Sequence[Skeleton], dla_config: Optional[DlaConfig] = None,
                 loop_branch_pcs: Optional[set] = None) -> None:
        if not versions:
            raise ValueError("at least one skeleton version is required")
        self.versions = list(versions)
        self.config = dla_config or DlaConfig()
        self.loop_branch_pcs = set(loop_branch_pcs or ())
        self.lct = LoopConfigTable(self.config.lct_entries)

    # ------------------------------------------------------------------
    def segment_into_loop_units(self, entries: Sequence[DynamicInst]) -> List[LoopUnit]:
        """Split the trace into loop units of at least the configured length.

        The current unit's identity is the most recently retired loop branch;
        a unit ends when a *different* loop branch retires and the unit has
        already reached the minimum length.
        """
        min_length = self.config.loop_unit_min_instructions
        units: List[LoopUnit] = []
        current_loop = -1
        start = 0
        for index, entry in enumerate(entries):
            if entry.is_branch and entry.pc in self.loop_branch_pcs:
                if (
                    current_loop != -1
                    and entry.pc != current_loop
                    and index - start >= min_length
                ):
                    units.append(LoopUnit(current_loop, start, index))
                    start = index
                current_loop = entry.pc
        if start < len(entries):
            units.append(LoopUnit(current_loop if current_loop != -1 else 0,
                                  start, len(entries)))
        return units

    # ------------------------------------------------------------------
    def plan(self, dla_system, entries: Sequence[DynamicInst],
             dynamic: bool = False, sample_length: int = 2500,
             search_unit_limit: Optional[int] = None) -> RecyclePlan:
        """Choose a skeleton version per loop unit and emit a simulation plan.

        ``dynamic=True`` models on-line tuning: each unit first cycles through
        every version for a trial slice (paying for the suboptimal ones)
        before settling on the winner; ``dynamic=False`` models off-line
        (training-input) tuning where the winner is known up front.

        ``search_unit_limit`` bounds how many *distinct loops* are tuned:
        only the ``N`` loops covering the most trace instructions (ties
        broken by first appearance, so the choice is deterministic) pay for
        version search and dynamic trials; the long tail of minor loops is
        pinned to the default version.  The plan still covers the entire
        trace — this samples the expensive tuning work the way quick mode
        samples workloads, which is what keeps ``--full`` segmented cells
        from dominating campaign wall time.
        """
        if not isinstance(entries, list):
            entries = list(entries)
        units = self.segment_into_loop_units(entries)
        searchable: Optional[set] = None
        if search_unit_limit is not None:
            instruction_weight: Dict[int, int] = {}
            appearance: Dict[int, int] = {}
            for unit in units:
                instruction_weight[unit.loop_pc] = (
                    instruction_weight.get(unit.loop_pc, 0) + unit.length
                )
                appearance.setdefault(unit.loop_pc, len(appearance))
            ranked = sorted(
                instruction_weight,
                key=lambda pc: (-instruction_weight[pc], appearance[pc]),
            )
            searchable = set(ranked[:search_unit_limit])
        if not units:
            skeleton = self.versions[0]
            return RecyclePlan(
                segments=[(entries, skeleton)],
                chosen_versions=[0],
                version_distribution={0: 1.0},
                lct=self.lct,
            )

        best_for_loop: Dict[int, int] = {}
        segments: List[Tuple[Sequence[DynamicInst], Skeleton]] = []
        chosen: List[int] = []
        weights: Dict[int, float] = {}
        total_instructions = float(len(entries))

        for unit in units:
            unit_entries = _SLICES.get(entries, unit.start, unit.end)
            sampled = searchable is None or unit.loop_pc in searchable
            cached = self.lct.lookup(unit.loop_pc)
            if cached is not None:
                best = cached
            elif unit.loop_pc in best_for_loop:
                best = best_for_loop[unit.loop_pc]
            elif not sampled:
                # Unsampled minor loop: default version, no search, no trials.
                best = 0
                best_for_loop[unit.loop_pc] = best
            else:
                best = self._search_best(dla_system, unit_entries, sample_length)
                best_for_loop[unit.loop_pc] = best
                self.lct.insert(unit.loop_pc, best)

            if dynamic and cached is None and sampled:
                # On-line tuning: spend trial slices on every version first.
                trial = self.config.recycle_trial_instructions
                cursor = 0
                for version_index, skeleton in enumerate(self.versions):
                    slice_entries = _SLICES.get(unit_entries, cursor, cursor + trial)
                    if not slice_entries:
                        break
                    segments.append((slice_entries, skeleton))
                    weights[version_index] = weights.get(version_index, 0.0) + len(slice_entries)
                    cursor += trial
                remainder = _SLICES.get(unit_entries, cursor, len(unit_entries))
                if remainder:
                    segments.append((remainder, self.versions[best]))
                    weights[best] = weights.get(best, 0.0) + len(remainder)
            else:
                segments.append((unit_entries, self.versions[best]))
                weights[best] = weights.get(best, 0.0) + len(unit_entries)
            chosen.append(best)

        distribution = {
            version: weight / total_instructions for version, weight in weights.items()
        }
        return RecyclePlan(
            segments=segments,
            chosen_versions=chosen,
            version_distribution=distribution,
            lct=self.lct,
        )

    # ------------------------------------------------------------------
    def _search_best(self, dla_system, unit_entries: Sequence[DynamicInst],
                     sample_length: int) -> int:
        """Try every version on a sample of the unit; return the fastest."""
        sample = _SLICES.get(unit_entries, 0, sample_length)
        if not sample:
            return 0
        best_index, best_cycles = 0, float("inf")
        for index, skeleton in enumerate(self.versions):
            outcome = dla_system.simulate(sample, skeleton=skeleton)
            if outcome.cycles < best_cycles:
                best_index, best_cycles = index, outcome.cycles
        return best_index
