"""Value reuse (the *Reuse of values* optimization, Sec. III-D1).

Three cooperating pieces:

* :class:`SlowInstructionFilter` — the SIF: a counting bloom filter of PCs
  the main thread identified as "slow" (dispatch-to-execute latency of at
  least 20 cycles during the first few iterations of a loop).  The look-ahead
  thread queries it at commit and allocates a footnote-queue value entry for
  matching instructions.  A value misprediction deletes the PC from the SIF.
* :class:`ValidationScoreboard` — the decode-stage scoreboard that lets the
  main thread skip validating ALU instructions whose source registers were
  all produced by value-predicted instructions (Fig. 4): if every input is
  itself a prediction, the output prediction is correct whenever the inputs
  are, so executing it again adds nothing.
* :class:`ValueReuseConfig` / :func:`select_slow_static_pcs` — the offline
  variant of slow-instruction selection used when a profiling run is
  available (the heuristic the paper uses to add critical-path instructions
  back to the skeleton).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.isa.instructions import OP_CLASS_CODE, OpClass
from repro.util.bloom import BloomFilter


@dataclass
class ValueReuseConfig:
    """Parameters of the value-reuse mechanism."""

    #: Dispatch-to-execute latency above which an instruction is "slow".
    slow_threshold: float = 20.0
    #: Loop iterations the main thread observes before trusting the SIF.
    training_iterations: int = 8
    #: Minimum register consumers for the "add back to skeleton" heuristic.
    min_dependents: int = 2
    #: Size of the SIF bloom filter.
    sif_bits: int = 1024
    sif_hashes: int = 3
    #: Capacity of the value-prediction staging table in the main core.
    vpt_entries: int = 32


class SlowInstructionFilter:
    """The SIF: tracks which static PCs deserve value predictions."""

    def __init__(self, config: Optional[ValueReuseConfig] = None) -> None:
        self.config = config or ValueReuseConfig()
        self._bloom = BloomFilter(self.config.sif_bits, self.config.sif_hashes)
        self._observations: Dict[int, List[float]] = {}
        self.insertions = 0
        self.deletions = 0

    # -- training ---------------------------------------------------------
    def observe_latency(self, pc: int, dispatch_to_execute: float) -> None:
        """Record one observed latency for ``pc`` during SIF training."""
        samples = self._observations.setdefault(pc, [])
        samples.append(dispatch_to_execute)
        if len(samples) >= self.config.training_iterations:
            average = sum(samples) / len(samples)
            if average >= self.config.slow_threshold and pc not in self._bloom:
                self._bloom.add(pc)
                self.insertions += 1
            # Keep the sample window bounded.
            del samples[: -self.config.training_iterations]

    def insert(self, pc: int) -> None:
        """Directly mark ``pc`` as slow (offline/profiled selection)."""
        if pc not in self._bloom:
            self._bloom.add(pc)
            self.insertions += 1

    # -- queries ------------------------------------------------------------
    def __contains__(self, pc: int) -> bool:
        return pc in self._bloom

    def should_predict(self, pc: int) -> bool:
        return pc in self._bloom

    # -- feedback -------------------------------------------------------------
    def on_value_mispredict(self, pc: int) -> None:
        """A reused value was wrong: stop predicting this static instruction."""
        if self._bloom.remove(pc):
            self.deletions += 1

    def clear(self) -> None:
        """Reset on entering a new loop (the paper clears the SIF per loop)."""
        self._bloom.clear()
        self._observations.clear()


class ValidationScoreboard:
    """Decode-stage scoreboard for skipping value-prediction validation.

    The main core marks a destination register *validated* when an ALU
    instruction producing a value prediction writes it; any other writer
    clears the mark.  An ALU instruction that (a) has a value prediction and
    (b) reads only validated registers can skip execution entirely — its
    prediction is implied by its inputs' predictions.  The paper reports this
    removes about 11% of validations.
    """

    _SKIPPABLE_CLASSES = {
        OpClass.INT_ALU,
        OpClass.INT_MUL,
        OpClass.FP_ALU,
        OpClass.FP_MUL,
    }
    #: Same set expressed as plain int class codes (decoded fast path).
    _SKIPPABLE_CODES = frozenset(OP_CLASS_CODE[cls] for cls in _SKIPPABLE_CLASSES)

    def __init__(self) -> None:
        self._validated: Set[int] = set()
        self.skips = 0
        self.validations = 0

    def process(self, op_class: OpClass, dst: Optional[int],
                srcs: Sequence[int], has_prediction: bool) -> bool:
        """Update the scoreboard for one instruction; returns True when the
        instruction's validation can be skipped."""
        return self.process_code(OP_CLASS_CODE[op_class], dst, srcs, has_prediction)

    def process_code(self, class_code: int, dst: Optional[int],
                     srcs: Sequence[int], has_prediction: bool) -> bool:
        """:meth:`process` keyed by the decoded int class code (hot path)."""
        skip = False
        skippable = class_code in self._SKIPPABLE_CODES
        if has_prediction and skippable and srcs:
            validated = self._validated
            if all(src in validated for src in srcs):
                skip = True
                self.skips += 1
            else:
                self.validations += 1
        elif has_prediction:
            self.validations += 1

        if dst is not None:
            if has_prediction and skippable:
                self._validated.add(dst)
            else:
                self._validated.discard(dst)
        return skip

    def reset(self) -> None:
        self._validated.clear()

    @property
    def skip_fraction(self) -> float:
        total = self.skips + self.validations
        return self.skips / total if total else 0.0


def select_slow_static_pcs(dispatch_to_execute: Dict[int, float],
                           dependents: Dict[int, int],
                           config: Optional[ValueReuseConfig] = None) -> List[int]:
    """Offline selection of value-reuse targets from profiling data.

    Mirrors the paper's heuristic for adding critical-path instructions back
    to the skeleton: average dispatch-to-execute latency above the threshold
    and more than one dependent instruction.
    """
    config = config or ValueReuseConfig()
    return sorted(
        pc
        for pc, latency in dispatch_to_execute.items()
        if latency >= config.slow_threshold
        and dependents.get(pc, 0) >= config.min_dependents
    )
