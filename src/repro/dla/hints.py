"""Main-thread hint source: turns look-ahead results into pipeline hooks.

The :class:`MainThreadHintSource` is constructed from the look-ahead pass's
outputs (per-branch and per-value production times, the stream of prefetch
hints) and is then handed to the main-thread core as a set of
:class:`~repro.core.pipeline.CoreHooks`.  It owns all of the runtime coupling
behaviour:

* stalling the main thread's fetch until a BOQ entry exists (hints become
  available only after the look-ahead thread produced them, plus the
  core-to-core transfer latency);
* throttling the look-ahead lead to the BOQ capacity;
* rebooting the look-ahead thread when a hint turns out wrong (all later
  hints are pushed back by the reboot penalty plus the re-execution time);
* just-in-time installation of L1 prefetch / TLB hints as the main thread's
  fetch reaches the corresponding point of the program;
* value-reuse delivery with the validation-skip scoreboard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compile.decoded import F_LOAD
from repro.core.compile.hookspec import CompiledHookSpec
from repro.core.pipeline import BranchHint, CoreHooks, ValueHint
from repro.dla.config import DlaConfig
from repro.dla.queues import (
    BoqEntry,
    BranchOutcomeQueue,
    FootnoteEntry,
    FootnoteKind,
    FootnoteQueue,
)
from repro.dla.t1 import T1PrefetchEngine
from repro.dla.value_reuse import ValidationScoreboard
from repro.emulator.trace import DynamicInst
from repro.memory.hierarchy import CoreMemorySystem
from repro.util.rng import DeterministicRng


@dataclass
class LookaheadProducts:
    """Everything the look-ahead pass produced, keyed by original trace seq."""

    #: seq of conditional branch -> LT commit cycle.
    branch_times: Dict[int, float] = field(default_factory=dict)
    #: Ordered list of branch seqs (for BOQ occupancy throttling).
    branch_order: List[int] = field(default_factory=list)
    #: seq of value-reuse target instruction -> LT commit cycle.
    value_times: Dict[int, float] = field(default_factory=dict)
    #: Prefetch hints (LT L1 misses), ordered by LT cycle: (cycle, address).
    prefetch_hints: List[Tuple[float, int]] = field(default_factory=list)
    #: LT core cycles spent producing the segment (for lead accounting).
    lt_cycles: float = 0.0


@dataclass
class RebootRecord:
    """Bookkeeping for one look-ahead reboot."""

    branch_seq: int
    mt_resolve_cycle: float
    offset_after: float


class MainThreadHintSource:
    """Builds the CoreHooks used by the main thread of a DLA system."""

    def __init__(
        self,
        products: LookaheadProducts,
        dla_config: DlaConfig,
        memory: CoreMemorySystem,
        boq: BranchOutcomeQueue,
        fq: FootnoteQueue,
        risky_branch_pcs: Set[int],
        biased_branch_pcs: Set[int],
        branch_bias_direction: Dict[int, bool],
        value_target_pcs: Optional[Set[int]] = None,
        t1_engine: Optional[T1PrefetchEngine] = None,
        loop_branch_pcs: Optional[Set[int]] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self.products = products
        self.config = dla_config
        self.memory = memory
        self.boq = boq
        self.fq = fq
        self.risky_branch_pcs = risky_branch_pcs
        self.biased_branch_pcs = biased_branch_pcs
        self.branch_bias_direction = branch_bias_direction
        self.value_target_pcs = value_target_pcs or set()
        self.t1 = t1_engine
        self.loop_branch_pcs = loop_branch_pcs or set()
        self.rng = rng or DeterministicRng(dla_config.seed)

        #: Offset translating LT production cycles into MT availability cycles.
        self.offset = float(dla_config.hint_transfer_latency)
        self.reboots: List[RebootRecord] = []
        self.scoreboard = ValidationScoreboard()

        # Branch-ordinal bookkeeping for BOQ-capacity throttling.
        self._branch_ordinal: Dict[int, int] = {
            seq: i for i, seq in enumerate(products.branch_order)
        }
        self._branch_consume_cycles: List[float] = []

        # Just-in-time prefetch-hint installation.
        self._prefetch_cursor = 0
        self.prefetches_installed = 0
        #: Hints whose prefetch the memory system dropped (MSHR file full).
        self.prefetches_dropped = 0

        # Hot-path aliases (single attribute load in per-instruction hooks).
        self._branch_times = products.branch_times
        self._value_times = products.value_times
        self._prefetch_hints = products.prefetch_hints

        # PCs for which the SIF stopped predicting after a misprediction.
        self._value_disabled_pcs: Set[int] = set()

    # ------------------------------------------------------------------
    # hook entry points
    # ------------------------------------------------------------------
    def hooks(self) -> CoreHooks:
        # Inert callbacks are omitted entirely: the core's inner loop skips
        # a per-instruction call for every hook that is ``None``, and a hook
        # that could only ever return ``None`` (no value targets, no T1
        # engine) cannot influence the simulation.
        #
        # ``fast_hints`` declares each hook's sparse firing conditions to
        # the compiled kernel: on_fetch only acts on branches or when a
        # pending prefetch hint comes due, on_commit only acts on loads
        # (T1), and value_hint only predicts the look-ahead's value-target
        # seqs (the validation scoreboard the unsplit hook runs for every
        # instruction moves into the kernel).  The reference interpreter
        # ignores the object, and the equivalence suites pin both paths.
        has_value = bool(self.value_target_pcs)
        fast = CompiledHookSpec(
            value_request=self.value_hint_request if has_value else None,
            value_target_seqs=(
                tuple(sorted(self._value_times)) if has_value else None
            ),
            scoreboard=self.scoreboard,
            fetch_next_due=self.fetch_next_due,
            commit_flag_mask=F_LOAD,
        )
        return CoreHooks(
            branch_hint=self.branch_hint,
            value_hint=self.value_hint if has_value else None,
            on_commit=self.on_commit if self.t1 is not None else None,
            on_fetch=self.on_fetch,
            on_hint_mispredict=self.on_hint_mispredict,
            fast_hints=fast,
        )

    # -- branch hints ------------------------------------------------------
    def branch_hint(self, entry: DynamicInst) -> Optional[BranchHint]:
        lt_time = self._branch_times.get(entry.seq)
        if lt_time is None:
            return None
        available = lt_time + self.offset

        # BOQ capacity: the hint for branch j cannot exist before the entry
        # for branch j - capacity was consumed by the main thread.
        ordinal = self._branch_ordinal.get(entry.seq)
        if ordinal is not None and ordinal >= self.config.boq_entries:
            gate_index = ordinal - self.config.boq_entries
            if gate_index < len(self._branch_consume_cycles):
                available = max(available, self._branch_consume_cycles[gate_index])

        correct = self._hint_correct(entry)
        if not correct:
            self.boq.record_incorrect()
        return BranchHint(available=available, correct=correct, has_target=True)

    def _hint_correct(self, entry: DynamicInst) -> bool:
        pc = entry.static.pc
        if pc in self.biased_branch_pcs:
            # The skeleton replaced this branch with its bias direction; the
            # hint is wrong exactly when the dynamic outcome goes against it.
            bias_taken = self.branch_bias_direction.get(pc, True)
            if bool(entry.taken) != bias_taken:
                return False
            return not self.rng.bernoulli(self.config.safe_branch_error_rate)
        error_rate = (
            self.config.risky_branch_error_rate
            if pc in self.risky_branch_pcs
            else self.config.safe_branch_error_rate
        )
        return not self.rng.bernoulli(error_rate)

    # -- value hints ----------------------------------------------------------
    def value_hint(self, entry: DynamicInst) -> Optional[ValueHint]:
        static = entry.static
        lt_time = self._value_times.get(entry.seq)
        has_prediction = (
            lt_time is not None
            and static.pc in self.value_target_pcs
            and static.pc not in self._value_disabled_pcs
        )
        skip = self.scoreboard.process_code(
            static.class_code, static.dst, static.srcs, has_prediction
        )
        if not has_prediction:
            return None
        correct = not self.rng.bernoulli(self.config.value_error_rate)
        if not correct:
            # The SIF entry is deleted; this static instruction will no
            # longer receive predictions.
            self._value_disabled_pcs.add(static.pc)
        self.fq.produce(
            FootnoteEntry(
                kind=FootnoteKind.VALUE_PREDICTION,
                produce_cycle=lt_time,
                value=entry.result,
            )
        )
        return ValueHint(
            available=lt_time + self.offset,
            correct=correct,
            skip_validation=skip and correct,
        )

    def value_hint_request(self, entry: DynamicInst) -> Optional[Tuple[float, bool]]:
        """Sparse split of :meth:`value_hint` for the compiled kernel.

        Covers the hint-delivery side only — the RNG draw, the SIF disable
        on a wrong prediction, the FQ traffic.  The validation scoreboard,
        which :meth:`value_hint` runs for *every* instruction, lives in the
        kernel; this method is called for exactly the dynamic instructions
        declared in ``value_target_seqs``.  Returns ``None`` when the entry
        carries no prediction, else ``(available_cycle, correct)``.
        """
        static = entry.static
        lt_time = self._value_times.get(entry.seq)
        if (
            lt_time is None
            or static.pc not in self.value_target_pcs
            or static.pc in self._value_disabled_pcs
        ):
            return None
        correct = not self.rng.bernoulli(self.config.value_error_rate)
        if not correct:
            self._value_disabled_pcs.add(static.pc)
        self.fq.produce(
            FootnoteEntry(
                kind=FootnoteKind.VALUE_PREDICTION,
                produce_cycle=lt_time,
                value=entry.result,
            )
        )
        return lt_time + self.offset, correct

    # -- fetch-side activity ----------------------------------------------------
    def on_fetch(self, entry: DynamicInst, fetch_cycle: float) -> None:
        # Install prefetch / TLB hints whose (shifted) production time has
        # passed — the just-in-time release tied to BOQ consumption.
        hints = self._prefetch_hints
        while self._prefetch_cursor < len(hints):
            produce_cycle, address = hints[self._prefetch_cursor]
            available = produce_cycle + self.offset
            if available > fetch_cycle:
                break
            installed = self.memory.prefetch(address, int(available), level="l1")
            self.memory.prefill_tlb(address, int(available))
            # The FQ entry was transferred either way (the communication
            # happened); only successful installs count as prefetches.
            self.fq.produce(
                FootnoteEntry(
                    kind=FootnoteKind.L1_PREFETCH,
                    produce_cycle=produce_cycle,
                    address=address,
                )
            )
            if installed is not None:
                self.prefetches_installed += 1
            else:
                self.prefetches_dropped += 1
            self._prefetch_cursor += 1

        if entry.static.is_branch:
            self._record_branch_consumption(entry, fetch_cycle)

    def fetch_next_due(self) -> float:
        """Availability of the next uninstalled prefetch hint (inf if drained).

        The compiled kernel uses this to skip :meth:`on_fetch` for
        non-branches until fetch reaches the cycle.  A look-ahead reboot can
        only push availability *later* (the offset never shrinks), so a
        stale value fires the hook early — a no-op — never late.
        """
        hints = self._prefetch_hints
        if self._prefetch_cursor < len(hints):
            return hints[self._prefetch_cursor][0] + self.offset
        return math.inf

    def _record_branch_consumption(self, entry: DynamicInst, fetch_cycle: float) -> None:
        ordinal = self._branch_ordinal.get(entry.seq)
        if ordinal is None:
            return
        # Consumption cycles are recorded in branch order; fetch is in-order
        # so appending keeps the list sorted by ordinal.
        while len(self._branch_consume_cycles) <= ordinal:
            self._branch_consume_cycles.append(fetch_cycle)
        self.boq.produce(
            BoqEntry(
                branch_seq=entry.seq,
                pc=entry.static.pc,
                taken=bool(entry.taken),
                produce_cycle=self.products.branch_times.get(entry.seq, fetch_cycle),
            )
        )
        self.boq.consume()

    # -- commit-side activity ------------------------------------------------------
    def on_commit(self, entry: DynamicInst, commit_cycle: float) -> None:
        if self.t1 is None:
            return
        static = entry.static
        if static.is_load:
            self.t1.on_commit(static.pc, entry.effective_address, commit_cycle)
        # Note: the paper clears the prefetch table when "a loop terminates".
        # With the nested loops of the synthetic kernels a literal
        # clear-on-every-not-taken-backward-branch would flush entries every
        # few iterations; the stale-stride fallback inside the engine already
        # handles behaviour changes, so no explicit clearing is done here.

    # -- reboots ------------------------------------------------------------------
    def on_hint_mispredict(self, entry: DynamicInst, resolve_cycle: float) -> None:
        """An incorrect BOQ direction was detected: reboot the look-ahead thread.

        The look-ahead thread restarts from the main thread's architectural
        state; every hint it produces afterwards is delayed by the reboot
        penalty plus however far the main thread had to progress to expose
        the error.
        """
        lt_time = self.products.branch_times.get(entry.seq)
        if lt_time is None:
            return
        new_offset = resolve_cycle + self.config.reboot_penalty - lt_time
        if new_offset > self.offset:
            self.offset = new_offset
        self.boq.flush()
        self.fq.flush()
        self.reboots.append(
            RebootRecord(
                branch_seq=entry.seq,
                mt_resolve_cycle=resolve_cycle,
                offset_after=self.offset,
            )
        )

    # ------------------------------------------------------------------
    @property
    def reboot_count(self) -> int:
        return len(self.reboots)
