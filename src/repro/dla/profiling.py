"""Training-run profiling for skeleton construction.

Appendix A of the paper assumes a runtime profiler that executes the program
with a *training* input and records, per static instruction, how often it
misses in the caches; the skeleton generator then seeds on memory
instructions above a miss-probability threshold (1% in L1 or 0.1% in L2).
The recycle optimization additionally needs branch bias, and the T1 engine
needs to know which loads are strided.  This module computes all of those
statistics from a functional trace plus a lightweight cache-only simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.config import SystemConfig
from repro.core.pipeline import OutOfOrderCore
from repro.emulator.trace import Trace
from repro.isa.program import Program
from repro.memory.hierarchy import AccessType, CoreMemorySystem, SharedMemorySystem


@dataclass
class PcMemoryStats:
    """Cache behaviour of one static load/store."""

    executions: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    #: Number of address deltas equal to the dominant stride.
    dominant_stride_hits: int = 0
    dominant_stride: int = 0
    deltas_observed: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.executions if self.executions else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.executions if self.executions else 0.0

    @property
    def stride_regularity(self) -> float:
        """Fraction of dynamic address deltas equal to the dominant stride."""
        return (
            self.dominant_stride_hits / self.deltas_observed
            if self.deltas_observed
            else 0.0
        )


@dataclass
class PcBranchStats:
    """Outcome statistics of one static conditional branch."""

    executions: int = 0
    taken: int = 0

    @property
    def taken_ratio(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """How lopsided the branch is (0.5 = unbiased, 1.0 = always one way)."""
        ratio = self.taken_ratio
        return max(ratio, 1.0 - ratio)


@dataclass
class ProgramProfile:
    """Aggregate training-run statistics keyed by static PC."""

    program: Program
    instruction_counts: Dict[int, int] = field(default_factory=dict)
    memory: Dict[int, PcMemoryStats] = field(default_factory=dict)
    branches: Dict[int, PcBranchStats] = field(default_factory=dict)
    #: Average dispatch-to-execute latency per static PC (from a timing run).
    dispatch_to_execute: Dict[int, float] = field(default_factory=dict)
    #: Number of register consumers per static PC (for value-reuse seeding).
    dependents: Dict[int, int] = field(default_factory=dict)
    #: Static PCs of backward conditional branches (loop branches).
    loop_branch_pcs: Set[int] = field(default_factory=set)
    dynamic_instructions: int = 0

    # ------------------------------------------------------------------
    def l1_miss_pcs(self, threshold: float = 0.01) -> List[int]:
        """Loads/stores whose L1 miss probability exceeds ``threshold``."""
        return sorted(
            pc for pc, stats in self.memory.items() if stats.l1_miss_rate > threshold
        )

    def l2_miss_pcs(self, threshold: float = 0.001) -> List[int]:
        return sorted(
            pc for pc, stats in self.memory.items() if stats.l2_miss_rate > threshold
        )

    def strided_pcs(self, regularity: float = 0.9, min_executions: int = 16) -> List[int]:
        """Loads whose address stream is dominated by one constant stride.

        Only loads inside loops qualify (T1 is driven by a loop branch), and
        zero-stride streams are excluded because re-touching the same line
        needs no prefetch.
        """
        result = []
        for pc, stats in self.memory.items():
            if not self.program[pc].is_load:
                continue
            if stats.executions < min_executions:
                continue
            if stats.dominant_stride == 0:
                continue
            if stats.stride_regularity >= regularity:
                result.append(pc)
        return sorted(result)

    def biased_branch_pcs(self, bias_threshold: float = 0.98,
                          min_executions: int = 32) -> List[int]:
        return sorted(
            pc
            for pc, stats in self.branches.items()
            if stats.executions >= min_executions and stats.bias >= bias_threshold
        )

    def slow_pcs(self, latency_threshold: float = 20.0,
                 min_dependents: int = 2) -> List[int]:
        """Value-reuse candidates: long dispatch-to-execute latency plus more
        than one dependent instruction (Sec. III-D1)."""
        return sorted(
            pc
            for pc, latency in self.dispatch_to_execute.items()
            if latency >= latency_threshold
            and self.dependents.get(pc, 0) >= min_dependents
        )


def _dominant_stride(deltas: Sequence[int]) -> (int, int):
    """(most common delta, its count) over a delta sequence."""
    counts: Dict[int, int] = {}
    for delta in deltas:
        counts[delta] = counts.get(delta, 0) + 1
    if not counts:
        return 0, 0
    stride = max(counts, key=counts.get)
    return stride, counts[stride]


def profile_workload(
    program: Program,
    trace: Trace,
    config: Optional[SystemConfig] = None,
    run_timing: bool = True,
    timing_window: int = 20_000,
) -> ProgramProfile:
    """Profile a training trace.

    Cache statistics come from replaying the trace's memory accesses through
    a dedicated (cold) cache hierarchy; dispatch-to-execute latencies come
    from an optional baseline timing run over a bounded window
    (``run_timing=False`` skips it when only memory seeds are needed).
    """
    config = config or SystemConfig()
    profile = ProgramProfile(program=program, dynamic_instructions=len(trace))

    shared = SharedMemorySystem(config.memory)
    memory = CoreMemorySystem(shared, config.memory)

    last_address: Dict[int, int] = {}
    deltas: Dict[int, List[int]] = {}
    cycle = 0
    instruction_counts = profile.instruction_counts
    for entry in trace:
        static = entry.static
        pc = static.pc
        instruction_counts[pc] = instruction_counts.get(pc, 0) + 1
        if static.is_memory:
            stats = profile.memory.setdefault(pc, PcMemoryStats())
            stats.executions += 1
            access_type = AccessType.LOAD if static.is_load else AccessType.STORE
            outcome = memory.access(entry.effective_address, cycle, access_type)
            if outcome.l1_miss:
                stats.l1_misses += 1
                if outcome.supplied_by in ("l3", "dram"):
                    stats.l2_misses += 1
            if pc in last_address:
                deltas.setdefault(pc, []).append(entry.effective_address - last_address[pc])
            last_address[pc] = entry.effective_address
            cycle += 2
        elif static.is_branch:
            stats = profile.branches.setdefault(pc, PcBranchStats())
            stats.executions += 1
            if entry.taken:
                stats.taken += 1
            if entry.taken and static.target is not None and static.target <= pc:
                profile.loop_branch_pcs.add(pc)
            cycle += 1
        else:
            cycle += 1

    for pc, delta_list in deltas.items():
        stride, hits = _dominant_stride(delta_list)
        stats = profile.memory[pc]
        stats.dominant_stride = stride
        stats.dominant_stride_hits = hits
        stats.deltas_observed = len(delta_list)

    # Register-dependence fan-out (consumers per producer PC).
    last_writer: Dict[int, int] = {}
    dependents = profile.dependents
    last_writer_get = last_writer.get
    for entry in trace:
        static = entry.static
        for src in static.srcs:
            writer = last_writer_get(src)
            if writer is not None:
                dependents[writer] = dependents.get(writer, 0) + 1
        if static.writes_register:
            last_writer[static.dst] = static.pc

    if run_timing:
        _profile_timing(program, trace, config, profile, timing_window)
    return profile


def _profile_timing(program: Program, trace: Trace, config: SystemConfig,
                    profile: ProgramProfile, window: int) -> None:
    """Per-PC average dispatch-to-execute latency from a baseline timing run."""
    shared = SharedMemorySystem(config.memory)
    memory = CoreMemorySystem(shared, config.memory)
    core = OutOfOrderCore(config.core, memory)
    entries = trace.entries[:window]
    result = core.run(entries, collect_timings=True)
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for entry, timing in zip(entries, result.timings):
        pc = entry.static.pc
        sums[pc] = sums.get(pc, 0.0) + timing.dispatch_to_execute
        counts[pc] = counts.get(pc, 0) + 1
    profile.dispatch_to_execute = {
        pc: sums[pc] / counts[pc] for pc in sums
    }
