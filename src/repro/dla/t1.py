"""T1: the strided-prefetch offload engine (the *Reduce* optimization).

T1 is a deliberately dumb finite state machine located in the main core.  The
skeleton generator marks strided loop loads with an S bit; at run time T1
watches those marked instructions commit, derives the stride from consecutive
addresses of the same static instruction and the prefetch distance from the
ratio of average miss latency to loop-iteration time, and then issues one
prefetch per iteration (plus a burst of catch-up prefetches when it first
reaches steady state).  Crucially it never has to *detect* whether a stream is
strided — that decision was made offline — which is why it can be both more
accurate and less traffic-hungry than a conventional stride prefetcher
(Table III, Fig. 12).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.memory.hierarchy import CoreMemorySystem


class _EntryState(enum.Enum):
    INVALID = "invalid"
    TRANSIENT = "transient"
    STEADY = "steady"


@dataclass
class T1Config:
    """T1 sizing (Table I: 16 prefetch-table entries)."""

    entries: int = 16
    #: Default/fallback prefetch distance while the real one is being learned.
    initial_distance: int = 4
    min_distance: int = 2
    max_distance: int = 64
    #: Observations of a consistent stride required before steady state.
    confirmations: int = 2
    #: Prefetches issued in one burst when catching up to the distance.
    catch_up_burst: int = 8
    #: Assumed average miss latency (cycles) for the distance calculation,
    #: refined online from observed inter-commit times.  Set near the full
    #: L1-to-DRAM round trip so steady-state prefetches land early enough.
    assumed_miss_latency: float = 240.0
    block_bytes: int = 64


@dataclass
class _PrefetchTableEntry:
    """One entry of the T1 prefetch table (Fig. 3)."""

    inst_pc: int
    loop_pc: int = 0
    state: _EntryState = _EntryState.INVALID
    last_address: int = 0
    stride: int = 0
    confirmations: int = 0
    last_commit_cycle: float = 0.0
    iteration_interval: float = 0.0
    prefetch_distance: int = 0
    last_use: float = 0.0


@dataclass
class T1Stats:
    prefetches_issued: int = 0
    #: Requests refused by the memory system (no free MSHR entry at issue).
    prefetches_dropped: int = 0
    catch_up_bursts: int = 0
    entries_allocated: int = 0
    entries_reset: int = 0
    strides_confirmed: int = 0


class T1PrefetchEngine:
    """The FSM attached to the main core when ``enable_t1`` is on."""

    def __init__(self, marked_pcs: Iterable[int], memory: CoreMemorySystem,
                 config: Optional[T1Config] = None) -> None:
        self.marked_pcs: Set[int] = set(marked_pcs)
        self.memory = memory
        self.config = config or T1Config()
        self.stats = T1Stats()
        self._table: Dict[int, _PrefetchTableEntry] = {}

    # ------------------------------------------------------------------
    def on_commit(self, pc: int, address: Optional[int], cycle: float,
                  is_loop_branch: bool = False) -> None:
        """Feed one committed instruction of the main thread into the engine."""
        if is_loop_branch:
            # All entries are cleared when a loop terminates; we approximate
            # loop termination by a *not-taken* loop branch, which the caller
            # signals by is_loop_branch=True with address None.
            if address is None:
                self.clear()
            return
        if address is None or pc not in self.marked_pcs:
            return
        entry = self._table.get(pc)
        if entry is None:
            entry = self._allocate(pc, cycle)
            entry.last_address = address
            entry.last_commit_cycle = cycle
            entry.state = _EntryState.TRANSIENT
            return

        observed_stride = address - entry.last_address
        interval = max(1.0, cycle - entry.last_commit_cycle)
        entry.last_address = address
        entry.last_commit_cycle = cycle
        entry.last_use = cycle

        if entry.state is _EntryState.TRANSIENT:
            if observed_stride == entry.stride and observed_stride != 0:
                entry.confirmations += 1
                entry.iteration_interval = (entry.iteration_interval + interval) / 2.0
                if entry.confirmations >= self.config.confirmations:
                    self._enter_steady(entry, address, cycle)
            else:
                entry.stride = observed_stride
                entry.confirmations = 0
                entry.iteration_interval = interval
        elif entry.state is _EntryState.STEADY:
            if observed_stride != entry.stride:
                # The loop changed behaviour; fall back and re-learn.
                entry.state = _EntryState.TRANSIENT
                entry.stride = observed_stride
                entry.confirmations = 0
                self.stats.entries_reset += 1
                return
            entry.iteration_interval = 0.75 * entry.iteration_interval + 0.25 * interval
            self._issue(entry, address, cycle, count=1)

    # ------------------------------------------------------------------
    def _enter_steady(self, entry: _PrefetchTableEntry, address: int, cycle: float) -> None:
        entry.state = _EntryState.STEADY
        self.stats.strides_confirmed += 1
        interval = max(1.0, entry.iteration_interval)
        distance = int(round(self.config.assumed_miss_latency / interval))
        entry.prefetch_distance = max(
            self.config.min_distance, min(self.config.max_distance, distance)
        )
        # Catch-up burst: launch several prefetches to reach the distance.
        self._issue(entry, address, cycle, count=min(
            self.config.catch_up_burst, entry.prefetch_distance))
        self.stats.catch_up_bursts += 1

    def _issue(self, entry: _PrefetchTableEntry, address: int, cycle: float,
               count: int) -> None:
        distance = entry.prefetch_distance or self.config.initial_distance
        block = self.config.block_bytes
        issued_blocks = set()
        for i in range(count):
            target = address + (distance + i) * entry.stride
            if target < 0:
                continue
            if target // block in issued_blocks:
                continue
            issued_blocks.add(target // block)
            if self.memory.prefetch(target, int(cycle), level="l1") is not None:
                self.stats.prefetches_issued += 1
            else:
                self.stats.prefetches_dropped += 1

    def _allocate(self, pc: int, cycle: float) -> _PrefetchTableEntry:
        if len(self._table) >= self.config.entries:
            victim = min(self._table, key=lambda key: self._table[key].last_use)
            del self._table[victim]
        entry = _PrefetchTableEntry(inst_pc=pc, last_use=cycle)
        self._table[pc] = entry
        self.stats.entries_allocated += 1
        return entry

    def clear(self) -> None:
        """Clear all table entries (loop termination)."""
        if self._table:
            self.stats.entries_reset += len(self._table)
        self._table.clear()

    @property
    def occupancy(self) -> int:
        return len(self._table)

    def entry_state(self, pc: int) -> Optional[str]:
        entry = self._table.get(pc)
        return entry.state.value if entry is not None else None
