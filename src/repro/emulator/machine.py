"""Architectural interpreter producing committed dynamic traces."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.emulator.trace import DynamicInst, Trace
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, ZERO_REGISTER

#: Values are wrapped to 64-bit two's complement, as on a real machine.
_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class ExecutionLimitExceeded(RuntimeError):
    """Raised when ``strict`` execution hits the dynamic instruction limit."""


class Emulator:
    """Functional execution engine.

    The emulator is deterministic and side-effect free with respect to the
    :class:`~repro.isa.program.Program` it runs: the program's initial data
    image is copied at reset, so running the same program twice yields
    identical traces.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.memory: Dict[int, int] = {}
        self.pc = program.entry_point
        self.halted = False
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore architectural state to the program's initial image."""
        self.registers = [0] * NUM_REGISTERS
        self.memory = dict(self.program.data)
        self.pc = self.program.entry_point
        self.halted = False

    # ------------------------------------------------------------------
    def _read(self, reg: int) -> int:
        return 0 if reg == ZERO_REGISTER else self.registers[reg]

    def _write(self, reg: Optional[int], value: int) -> Optional[int]:
        if reg is None or reg == ZERO_REGISTER:
            return None
        value = _to_signed(value)
        self.registers[reg] = value
        return value

    # ------------------------------------------------------------------
    def step(self, seq: int) -> DynamicInst:
        """Execute one instruction and return its dynamic record."""
        inst = self.program[self.pc]
        op = inst.opcode
        srcs = [self._read(r) for r in inst.srcs]
        result: Optional[int] = None
        effective_address: Optional[int] = None
        taken: Optional[bool] = None
        next_pc = self.pc + 1

        # The chain is ordered by typical dynamic frequency (memory ops,
        # address arithmetic and branches first) — ordering is semantically
        # irrelevant as the opcodes are mutually exclusive, but it roughly
        # halves the comparisons per emulated instruction.
        if op is Opcode.LOAD:
            effective_address = srcs[0] + inst.imm
            result = self._write(inst.dst, self.memory.get(effective_address, 0))
        elif op is Opcode.STORE:
            effective_address = srcs[0] + inst.imm
            self.memory[effective_address] = _to_signed(srcs[1])
        elif op is Opcode.ADDI:
            result = self._write(inst.dst, srcs[0] + inst.imm)
        elif op is Opcode.BEQZ:
            taken = srcs[0] == 0
            if taken:
                next_pc = inst.target
        elif op is Opcode.BNEZ:
            taken = srcs[0] != 0
            if taken:
                next_pc = inst.target
        elif op is Opcode.BLT:
            taken = srcs[0] < srcs[1]
            if taken:
                next_pc = inst.target
        elif op is Opcode.BGE:
            taken = srcs[0] >= srcs[1]
            if taken:
                next_pc = inst.target
        elif op in (Opcode.ADD, Opcode.FADD):
            result = self._write(inst.dst, srcs[0] + srcs[1])
        elif op is Opcode.SUB:
            result = self._write(inst.dst, srcs[0] - srcs[1])
        elif op is Opcode.AND:
            result = self._write(inst.dst, srcs[0] & srcs[1])
        elif op is Opcode.OR:
            result = self._write(inst.dst, srcs[0] | srcs[1])
        elif op is Opcode.XOR:
            result = self._write(inst.dst, srcs[0] ^ srcs[1])
        elif op is Opcode.SHL:
            result = self._write(inst.dst, srcs[0] << (srcs[1] & 63))
        elif op is Opcode.SHR:
            result = self._write(inst.dst, (srcs[0] & _MASK64) >> (srcs[1] & 63))
        elif op is Opcode.SLT:
            result = self._write(inst.dst, 1 if srcs[0] < srcs[1] else 0)
        elif op is Opcode.SEQ:
            result = self._write(inst.dst, 1 if srcs[0] == srcs[1] else 0)
        elif op is Opcode.ANDI:
            result = self._write(inst.dst, srcs[0] & inst.imm)
        elif op is Opcode.LI:
            result = self._write(inst.dst, inst.imm)
        elif op is Opcode.MOV:
            result = self._write(inst.dst, srcs[0])
        elif op in (Opcode.MUL, Opcode.FMUL):
            result = self._write(inst.dst, srcs[0] * srcs[1])
        elif op in (Opcode.DIV, Opcode.FDIV):
            divisor = srcs[1]
            result = self._write(inst.dst, 0 if divisor == 0 else srcs[0] // divisor)
        elif op is Opcode.MOD:
            divisor = srcs[1]
            result = self._write(inst.dst, 0 if divisor == 0 else srcs[0] % divisor)
        elif op is Opcode.JUMP:
            taken = True
            next_pc = inst.target
        elif op is Opcode.CALL:
            taken = True
            result = self._write(inst.dst, self.pc + 1)
            next_pc = inst.target
        elif op is Opcode.RET:
            taken = True
            next_pc = srcs[0]
        elif op is Opcode.HALT:
            self.halted = True
            next_pc = self.pc
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - every opcode is handled above
            raise NotImplementedError(f"unhandled opcode {op}")

        if not 0 <= next_pc < len(self.program):
            raise RuntimeError(
                f"control transfer to invalid pc {next_pc} from pc {self.pc}"
            )

        record = DynamicInst(
            seq=seq,
            static=inst,
            result=result,
            effective_address=effective_address,
            taken=taken,
            next_pc=next_pc,
        )
        self.pc = next_pc
        return record

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000, strict: bool = False) -> Trace:
        """Execute until ``HALT`` or the dynamic-instruction limit.

        Parameters
        ----------
        max_instructions:
            Upper bound on committed instructions.
        strict:
            When ``True`` an :class:`ExecutionLimitExceeded` is raised if the
            limit is hit before the program halts; otherwise the partial
            trace is returned with ``completed=False``.
        """
        self.reset()
        entries: List[DynamicInst] = []
        while not self.halted and len(entries) < max_instructions:
            entries.append(self.step(len(entries)))
        if not self.halted and strict:
            raise ExecutionLimitExceeded(
                f"program {self.program.name!r} did not halt within "
                f"{max_instructions} instructions"
            )
        return Trace(self.program, entries, completed=self.halted)


def run_program(program: Program, max_instructions: int = 1_000_000) -> Trace:
    """Convenience wrapper: execute ``program`` and return its trace."""
    return Emulator(program).run(max_instructions=max_instructions)
