"""Dynamic trace representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.instructions import Instruction, OpClass


@dataclass
class DynamicInst:
    """One committed dynamic instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    static:
        The static :class:`~repro.isa.instructions.Instruction` executed.
    result:
        Value written to the destination register (``None`` if none).
    effective_address:
        Byte address touched by a load/store (``None`` otherwise).
    taken:
        For control instructions, whether the redirect happened.
    next_pc:
        Static PC of the dynamically following instruction.
    """

    seq: int
    static: Instruction
    result: Optional[int] = None
    effective_address: Optional[int] = None
    taken: Optional[bool] = None
    next_pc: int = 0

    # Convenience pass-throughs so timing models rarely need ``.static``.
    @property
    def pc(self) -> int:
        return self.static.pc

    @property
    def op_class(self) -> OpClass:
        return self.static.op_class

    @property
    def is_branch(self) -> bool:
        return self.static.is_branch

    @property
    def is_control(self) -> bool:
        return self.static.is_control

    @property
    def is_load(self) -> bool:
        return self.static.is_load

    @property
    def is_store(self) -> bool:
        return self.static.is_store

    @property
    def is_memory(self) -> bool:
        return self.static.is_memory


class Trace:
    """A committed dynamic instruction stream plus summary statistics."""

    def __init__(self, program, entries: Sequence[DynamicInst], completed: bool) -> None:
        self.program = program
        self.entries: List[DynamicInst] = list(entries)
        #: True when the program reached a HALT before the instruction limit.
        self.completed = completed

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, idx: int) -> DynamicInst:
        return self.entries[idx]

    def __iter__(self) -> Iterator[DynamicInst]:
        return iter(self.entries)

    # -- summaries ---------------------------------------------------------
    def class_mix(self) -> Dict[OpClass, int]:
        """Dynamic instruction count per functional class."""
        mix: Dict[OpClass, int] = {}
        for entry in self.entries:
            cls = entry.static.op_class
            mix[cls] = mix.get(cls, 0) + 1
        return mix

    def branch_count(self) -> int:
        return sum(1 for e in self.entries if e.static.is_branch)

    def load_count(self) -> int:
        return sum(1 for e in self.entries if e.static.is_load)

    def store_count(self) -> int:
        return sum(1 for e in self.entries if e.static.is_store)

    def memory_count(self) -> int:
        return sum(1 for e in self.entries if e.static.is_memory)

    def pc_execution_counts(self) -> Dict[int, int]:
        """Dynamic execution count per static PC (used by profilers)."""
        counts: Dict[int, int] = {}
        for entry in self.entries:
            pc = entry.static.pc
            counts[pc] = counts.get(pc, 0) + 1
        return counts

    def window(self, start: int, length: int) -> "Trace":
        """A sub-trace covering ``[start, start + length)`` dynamic entries."""
        return Trace(self.program, self.entries[start : start + length], self.completed)
