"""Functional (architectural) execution of programs.

The emulator executes a :class:`~repro.isa.program.Program` instruction by
instruction and records a *dynamic trace*: the committed instruction stream
with resolved branch outcomes, effective addresses and result values.  All
timing models in this repository (the baseline out-of-order core, the DLA
main and look-ahead threads, the runahead baselines) are trace driven — they
consume this architectural trace and charge cycles against it — which keeps
timing concerns cleanly separated from instruction semantics.
"""

from repro.emulator.trace import DynamicInst, Trace
from repro.emulator.machine import Emulator, ExecutionLimitExceeded

__all__ = ["DynamicInst", "Trace", "Emulator", "ExecutionLimitExceeded"]
