"""Best-Offset Prefetcher (Michaud, HPCA 2016).

BOP is the L2 prefetcher of the paper's baseline configuration (256 recent
request table entries, a 52-entry offset candidate list).  The algorithm
learns, over successive evaluation rounds, the single offset ``D`` such that
for most demanded lines ``X``, line ``X - D`` was requested recently — i.e.
prefetching ``X + D`` would have been timely.  The implementation below
follows the published algorithm: round-robin scoring of candidate offsets
against a recent-requests (RR) table, promotion of the winner at the end of a
round, and a score threshold below which prefetching is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.prefetch.base import Prefetcher, PrefetchRequest


def _default_offsets() -> List[int]:
    """The 52-candidate offset list from the BOP paper.

    Offsets are of the form ``2^i * 3^j * 5^k`` up to 256, which covers the
    strides produced by common loop nests while keeping the list short.
    """
    candidates = set()
    for i in range(9):
        for j in range(6):
            for k in range(4):
                value = (2 ** i) * (3 ** j) * (5 ** k)
                if 1 <= value <= 256:
                    candidates.add(value)
    ordered = sorted(candidates)
    return ordered[:52]


@dataclass
class BestOffsetConfig:
    rr_entries: int = 256
    offsets: List[int] = field(default_factory=_default_offsets)
    block_bytes: int = 64
    #: Rounds end after this many scored accesses.
    round_max: int = 100
    #: An offset reaching this score is selected immediately.
    score_max: int = 31
    #: Winners scoring below this leave prefetching off for the next round.
    bad_score: int = 1
    target_level: str = "l2"


class BestOffsetPrefetcher(Prefetcher):
    """Offset prefetcher with RR-table-based timeliness scoring."""

    def __init__(self, config: Optional[BestOffsetConfig] = None, **overrides) -> None:
        self.config = config or BestOffsetConfig(**overrides)
        self.target_level = self.config.target_level
        self._rr: Dict[int, int] = {}            # block -> insertion order
        self._rr_order = 0
        self._scores: Dict[int, int] = {off: 0 for off in self.config.offsets}
        self._test_index = 0
        self._round_accesses = 0
        self._current_offset: Optional[int] = 1  # start with next-line behaviour
        self._prefetch_on = True

    # ------------------------------------------------------------------
    def _rr_insert(self, block: int) -> None:
        if block in self._rr:
            self._rr[block] = self._rr_order
        else:
            if len(self._rr) >= self.config.rr_entries:
                victim = min(self._rr, key=self._rr.get)
                del self._rr[victim]
            self._rr[block] = self._rr_order
        self._rr_order += 1

    def _end_round(self) -> None:
        best_offset = max(self._scores, key=self._scores.get)
        best_score = self._scores[best_offset]
        if best_score <= self.config.bad_score:
            self._prefetch_on = False
            self._current_offset = None
        else:
            self._prefetch_on = True
            self._current_offset = best_offset
        self._scores = {off: 0 for off in self.config.offsets}
        self._round_accesses = 0
        self._test_index = 0

    # ------------------------------------------------------------------
    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        block = address // self.config.block_bytes

        # Score one candidate offset per (miss or prefetch-hit) access.
        offsets = self.config.offsets
        tested = offsets[self._test_index % len(offsets)]
        self._test_index += 1
        if (block - tested) in self._rr:
            self._scores[tested] += 1
            if self._scores[tested] >= self.config.score_max:
                self._current_offset = tested
                self._prefetch_on = True
                self._scores = {off: 0 for off in offsets}
                self._round_accesses = 0
                self._test_index = 0
        self._round_accesses += 1
        if self._round_accesses >= self.config.round_max:
            self._end_round()

        # The line being demanded now will (once filled) become a "recent
        # request" that future offsets are scored against.
        self._rr_insert(block)

        if not self._prefetch_on or self._current_offset is None:
            return []
        target_block = block + self._current_offset
        return [PrefetchRequest(target_block * self.config.block_bytes,
                                level=self.config.target_level)]

    def reset(self) -> None:
        self._rr.clear()
        self._rr_order = 0
        self._scores = {off: 0 for off in self.config.offsets}
        self._test_index = 0
        self._round_accesses = 0
        self._current_offset = 1
        self._prefetch_on = True

    @property
    def current_offset(self) -> Optional[int]:
        """Offset currently used for prefetching (``None`` when disabled)."""
        return self._current_offset
