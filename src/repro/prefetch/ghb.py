"""Global History Buffer (GHB) prefetcher, PC-localised delta correlation.

One of the seven "state of the art" prefetchers the paper's authors swept
when choosing their baseline L2 prefetcher (Nesbit & Smith, HPCA 2004).  The
implementation keeps a global circular buffer of misses, with per-PC linked
lists threading through it; on each trigger it reconstructs the recent delta
history for the PC and, when the last two deltas correlate with an earlier
occurrence, prefetches the deltas that followed that occurrence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.prefetch.base import Prefetcher, PrefetchRequest


@dataclass
class _GhbEntry:
    address: int
    prev_index: Optional[int]          # previous entry for the same PC


class GlobalHistoryBufferPrefetcher(Prefetcher):
    """PC/DC (delta-correlation) flavour of the GHB prefetcher."""

    def __init__(self, buffer_entries: int = 256, index_entries: int = 256,
                 degree: int = 4, block_bytes: int = 64,
                 target_level: str = "l2") -> None:
        self.buffer_entries = buffer_entries
        self.index_entries = index_entries
        self.degree = degree
        self.block_bytes = block_bytes
        self.target_level = target_level
        self._buffer: List[Optional[_GhbEntry]] = [None] * buffer_entries
        self._head = 0
        self._count = 0
        self._index: Dict[int, int] = {}   # pc -> most recent buffer position

    # ------------------------------------------------------------------
    def _pc_history(self, pc: int, max_entries: int = 16) -> List[int]:
        """Most recent addresses for ``pc``, newest first."""
        history: List[int] = []
        position = self._index.get(pc)
        oldest_valid = self._head - min(self._count, self.buffer_entries)
        while position is not None and position >= oldest_valid and len(history) < max_entries:
            entry = self._buffer[position % self.buffer_entries]
            if entry is None:
                break
            history.append(entry.address)
            position = entry.prev_index
        return history

    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        if hit:
            return []
        requests = self._correlate(pc, address)
        self._insert(pc, address)
        return requests

    def _insert(self, pc: int, address: int) -> None:
        prev = self._index.get(pc)
        slot = self._head % self.buffer_entries
        self._buffer[slot] = _GhbEntry(address=address, prev_index=prev)
        self._index[pc] = self._head
        self._head += 1
        self._count += 1
        if len(self._index) > self.index_entries:
            victim = min(self._index, key=self._index.get)
            del self._index[victim]

    def _correlate(self, pc: int, address: int) -> List[PrefetchRequest]:
        history = self._pc_history(pc)
        if len(history) < 3:
            return []
        addresses = [address] + history            # newest first
        deltas = [addresses[i] - addresses[i + 1] for i in range(len(addresses) - 1)]
        if len(deltas) < 3:
            return []
        pair = (deltas[0], deltas[1])
        # Search for an earlier occurrence of the same delta pair.
        for start in range(2, len(deltas) - 1):
            if (deltas[start], deltas[start + 1]) == pair:
                # Replay the deltas that followed that occurrence (which are
                # the *earlier* positions in our newest-first list).
                replay = deltas[max(0, start - self.degree):start][::-1]
                requests = []
                target = address
                seen = {address // self.block_bytes}
                for delta in replay:
                    target += delta
                    block = target // self.block_bytes
                    if block not in seen and target >= 0:
                        seen.add(block)
                        requests.append(
                            PrefetchRequest(target, level=self.target_level))
                return requests
        return []

    def reset(self) -> None:
        self._buffer = [None] * self.buffer_entries
        self._head = 0
        self._count = 0
        self._index.clear()
