"""Common prefetcher interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PrefetchRequest:
    """One block the prefetcher wants fetched.

    ``level`` selects the cache level the prefetch should fill ("l1" or
    "l2"); conventional L2 prefetchers such as BOP use "l2", while the L1
    stride prefetcher of Sec. IV-C1 and the DLA prefetch hints use "l1".
    """

    address: int
    level: str = "l2"


class Prefetcher:
    """Base class: observes the demand access stream, emits prefetches."""

    #: Default target level for requests produced by this prefetcher.
    target_level = "l2"

    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        """Called on every demand access to the level this prefetcher guards.

        Parameters
        ----------
        pc:
            Static PC of the load/store performing the access.
        address:
            Byte address being accessed.
        hit:
            Whether the access hit in the guarded cache level.
        cycle:
            Current core cycle (used by prefetchers that track timeliness).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear all internal state (e.g. between simulation windows)."""

    def notify_drop(self, request: PrefetchRequest) -> None:
        """The memory system dropped ``request`` (no free MSHR entry).

        Prefetches never stall for a miss register the way demand misses do;
        a full file at issue time simply loses the request.  This default is
        a pure no-op hook (drop *counts* live on the guarded cache's
        ``CacheStats.prefetches_dropped``); stateful prefetchers may
        override it to track lost coverage or re-queue the block.
        """


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (the ``noPF`` configurations)."""

    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        return []

    def reset(self) -> None:
        return None
