"""Per-PC stride prefetcher (reference-prediction-table style).

This is the "conventional stride prefetcher" that Sec. IV-C1 of the paper
adds to the baseline for comparison with the T1 offload engine.  Unlike T1 —
which is *told* which instructions are strided — this prefetcher has to
discover strides on its own from the address stream, confirm them over
several observations, and pick a prefetch degree; that extra uncertainty is
exactly why the paper finds it both less accurate and more traffic-hungry
than T1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.prefetch.base import Prefetcher, PrefetchRequest


class _EntryState(enum.Enum):
    INITIAL = "initial"
    TRANSIENT = "transient"
    STEADY = "steady"
    NO_PREDICTION = "no_prediction"


@dataclass
class _TableEntry:
    last_address: int
    stride: int = 0
    state: _EntryState = _EntryState.INITIAL
    last_use: int = 0


@dataclass
class StridePrefetcherConfig:
    """Tuning knobs (defaults follow the paper's tuned L1 stride prefetcher:
    32 tracked strides, prefetch degree 4)."""

    table_entries: int = 32
    degree: int = 4
    block_bytes: int = 64
    target_level: str = "l1"


class StridePrefetcher(Prefetcher):
    """Classic Chen/Baer reference prediction table with 2-step confirmation."""

    def __init__(self, config: Optional[StridePrefetcherConfig] = None, **overrides) -> None:
        self.config = config or StridePrefetcherConfig(**overrides)
        self.target_level = self.config.target_level
        self._table: Dict[int, _TableEntry] = {}

    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        entry = self._table.get(pc)
        if entry is None:
            self._allocate(pc, address, cycle)
            return []

        observed_stride = address - entry.last_address
        requests: List[PrefetchRequest] = []

        if entry.state is _EntryState.INITIAL:
            entry.stride = observed_stride
            entry.state = _EntryState.TRANSIENT
        elif observed_stride == entry.stride and entry.stride != 0:
            entry.state = _EntryState.STEADY
            requests = self._issue(address, entry.stride)
        else:
            # Mispredicted stride: fall back and re-learn.
            if entry.state is _EntryState.STEADY:
                entry.state = _EntryState.TRANSIENT
            else:
                entry.state = _EntryState.NO_PREDICTION
            entry.stride = observed_stride

        entry.last_address = address
        entry.last_use = cycle
        return requests

    # ------------------------------------------------------------------
    def _issue(self, address: int, stride: int) -> List[PrefetchRequest]:
        block = self.config.block_bytes
        requests = []
        seen_blocks = {address // block}
        for distance in range(1, self.config.degree + 1):
            target = address + distance * stride
            if target < 0:
                continue
            if target // block in seen_blocks:
                continue
            seen_blocks.add(target // block)
            requests.append(PrefetchRequest(target, level=self.config.target_level))
        return requests

    def _allocate(self, pc: int, address: int, cycle: int) -> None:
        if len(self._table) >= self.config.table_entries:
            victim = min(self._table, key=lambda k: self._table[k].last_use)
            del self._table[victim]
        self._table[pc] = _TableEntry(last_address=address, last_use=cycle)

    def reset(self) -> None:
        self._table.clear()

    @property
    def tracked_pcs(self) -> List[int]:
        return list(self._table)
