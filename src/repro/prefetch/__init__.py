"""Hardware prefetchers.

The paper's baseline core uses a Best-Offset Prefetcher (BOP) at L2, chosen
as the best of a group of state-of-the-art prefetchers, and its analysis of
the T1 offload engine compares against adding a conventional stride
prefetcher at L1.  This package implements those prefetchers (plus simpler
ones used as sanity baselines) behind a single event-driven interface:
``observe(pc, address, hit, cycle)`` returns the list of block addresses the
prefetcher wants brought in.
"""

from repro.prefetch.base import NullPrefetcher, Prefetcher, PrefetchRequest
from repro.prefetch.stride import StridePrefetcher, StridePrefetcherConfig
from repro.prefetch.best_offset import BestOffsetPrefetcher, BestOffsetConfig
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.ghb import GlobalHistoryBufferPrefetcher

PREFETCHER_FACTORIES = {
    "none": NullPrefetcher,
    "next_line": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "bop": BestOffsetPrefetcher,
    "ghb": GlobalHistoryBufferPrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    if name not in PREFETCHER_FACTORIES:
        raise KeyError(f"unknown prefetcher {name!r}; known: {sorted(PREFETCHER_FACTORIES)}")
    return PREFETCHER_FACTORIES[name](**kwargs)


__all__ = [
    "Prefetcher",
    "PrefetchRequest",
    "NullPrefetcher",
    "StridePrefetcher",
    "StridePrefetcherConfig",
    "BestOffsetPrefetcher",
    "BestOffsetConfig",
    "NextLinePrefetcher",
    "GlobalHistoryBufferPrefetcher",
    "make_prefetcher",
    "PREFETCHER_FACTORIES",
]
