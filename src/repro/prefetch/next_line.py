"""Next-N-line prefetcher — the simplest possible sequential prefetcher."""

from __future__ import annotations

from typing import List

from repro.prefetch.base import Prefetcher, PrefetchRequest


class NextLinePrefetcher(Prefetcher):
    """On every miss, prefetch the following ``degree`` cache lines."""

    def __init__(self, degree: int = 1, block_bytes: int = 64,
                 target_level: str = "l2", on_hit: bool = False) -> None:
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.degree = degree
        self.block_bytes = block_bytes
        self.target_level = target_level
        self.on_hit = on_hit

    def observe(self, pc: int, address: int, hit: bool, cycle: int) -> List[PrefetchRequest]:
        if hit and not self.on_hit:
            return []
        block = address // self.block_bytes
        return [
            PrefetchRequest((block + i) * self.block_bytes, level=self.target_level)
            for i in range(1, self.degree + 1)
        ]

    def reset(self) -> None:
        return None
