"""ProgramBuilder: a tiny assembler DSL for constructing workloads.

Workload kernels build programs through this class instead of hand-writing
:class:`Instruction` lists.  The builder provides labels with forward
references, a bump allocator for the data segment, and one emit method per
opcode so kernels read roughly like assembly listings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Data addresses are word (8-byte) aligned; the allocator hands out
#: multiples of this.
WORD_BYTES = 8


class Label:
    """A named position in the code, possibly not yet bound."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pc: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Label({self.name!r}, pc={self.pc})"


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program", data_base: int = 0x10000) -> None:
        self.name = name
        self._pending: List[dict] = []
        self._labels: Dict[str, Label] = {}
        self._data: Dict[int, int] = {}
        self._data_cursor = data_base
        self._annotation = ""

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def label(self, name: str) -> Label:
        """Create (or fetch) a label and bind it to the current position."""
        lbl = self._labels.setdefault(name, Label(name))
        if lbl.pc is not None:
            raise ValueError(f"label {name!r} bound twice")
        lbl.pc = len(self._pending)
        return lbl

    def forward_label(self, name: str) -> Label:
        """Reference a label that will be bound later."""
        return self._labels.setdefault(name, Label(name))

    # ------------------------------------------------------------------
    # data segment
    # ------------------------------------------------------------------
    def alloc_words(self, count: int, fill: Union[int, Sequence[int]] = 0) -> int:
        """Reserve ``count`` words of data memory; returns the base address."""
        if count <= 0:
            raise ValueError("count must be positive")
        base = self._data_cursor
        if isinstance(fill, int):
            values = [fill] * count
        else:
            values = list(fill)
            if len(values) != count:
                raise ValueError("fill length does not match count")
        for i, value in enumerate(values):
            self._data[base + i * WORD_BYTES] = value
        self._data_cursor = base + count * WORD_BYTES
        return base

    def alloc_array(self, values: Sequence[int]) -> int:
        """Reserve and initialise an array; returns the base address."""
        return self.alloc_words(len(values), list(values))

    def poke(self, address: int, value: int) -> None:
        """Directly set one word of initial data memory."""
        self._data[address] = value

    @property
    def data_cursor(self) -> int:
        return self._data_cursor

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def annotate(self, text: str) -> None:
        """Attach ``text`` to the next emitted instruction."""
        self._annotation = text

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def _emit(self, opcode: Opcode, dst=None, srcs=(), imm=0, target=None) -> int:
        record = {
            "opcode": opcode,
            "dst": dst,
            "srcs": tuple(srcs),
            "imm": imm,
            "target": target,
            "annotation": self._annotation,
        }
        self._annotation = ""
        self._pending.append(record)
        return len(self._pending) - 1

    # integer ALU ------------------------------------------------------
    def add(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.ADD, dst, (a, b))

    def sub(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.SUB, dst, (a, b))

    def and_(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.AND, dst, (a, b))

    def or_(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.OR, dst, (a, b))

    def xor(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.XOR, dst, (a, b))

    def shl(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.SHL, dst, (a, b))

    def shr(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.SHR, dst, (a, b))

    def slt(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.SLT, dst, (a, b))

    def seq(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.SEQ, dst, (a, b))

    def addi(self, dst: int, src: int, imm: int) -> int:
        return self._emit(Opcode.ADDI, dst, (src,), imm)

    def andi(self, dst: int, src: int, imm: int) -> int:
        return self._emit(Opcode.ANDI, dst, (src,), imm)

    def li(self, dst: int, imm: int) -> int:
        return self._emit(Opcode.LI, dst, (), imm)

    def mov(self, dst: int, src: int) -> int:
        return self._emit(Opcode.MOV, dst, (src,))

    def mul(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.MUL, dst, (a, b))

    def div(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.DIV, dst, (a, b))

    def mod(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.MOD, dst, (a, b))

    # floating point -----------------------------------------------------
    def fadd(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.FADD, dst, (a, b))

    def fmul(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.FMUL, dst, (a, b))

    def fdiv(self, dst: int, a: int, b: int) -> int:
        return self._emit(Opcode.FDIV, dst, (a, b))

    # memory -------------------------------------------------------------
    def load(self, dst: int, base: int, offset: int = 0) -> int:
        return self._emit(Opcode.LOAD, dst, (base,), offset)

    def store(self, base: int, value: int, offset: int = 0) -> int:
        return self._emit(Opcode.STORE, None, (base, value), offset)

    # control ------------------------------------------------------------
    def beqz(self, src: int, label: Union[str, Label]) -> int:
        return self._emit(Opcode.BEQZ, None, (src,), target=self._label_ref(label))

    def bnez(self, src: int, label: Union[str, Label]) -> int:
        return self._emit(Opcode.BNEZ, None, (src,), target=self._label_ref(label))

    def blt(self, a: int, b: int, label: Union[str, Label]) -> int:
        return self._emit(Opcode.BLT, None, (a, b), target=self._label_ref(label))

    def bge(self, a: int, b: int, label: Union[str, Label]) -> int:
        return self._emit(Opcode.BGE, None, (a, b), target=self._label_ref(label))

    def jump(self, label: Union[str, Label]) -> int:
        return self._emit(Opcode.JUMP, target=self._label_ref(label))

    def call(self, label: Union[str, Label], link_register: int = 31) -> int:
        return self._emit(Opcode.CALL, link_register, (), target=self._label_ref(label))

    def ret(self, link_register: int = 31) -> int:
        return self._emit(Opcode.RET, None, (link_register,))

    def halt(self) -> int:
        return self._emit(Opcode.HALT)

    def nop(self) -> int:
        return self._emit(Opcode.NOP)

    def _label_ref(self, label: Union[str, Label]) -> Label:
        if isinstance(label, Label):
            return self._labels.setdefault(label.name, label)
        return self._labels.setdefault(label, Label(label))

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve label references and produce an immutable Program."""
        unresolved = [l.name for l in self._labels.values() if l.pc is None]
        if unresolved:
            raise ValueError(f"unbound labels: {unresolved}")
        instructions = []
        for pc, record in enumerate(self._pending):
            target = record["target"]
            if isinstance(target, Label):
                target = target.pc
            instructions.append(
                Instruction(
                    pc=pc,
                    opcode=record["opcode"],
                    dst=record["dst"],
                    srcs=record["srcs"],
                    imm=record["imm"],
                    target=target,
                    annotation=record["annotation"],
                )
            )
        return Program(instructions, data=self._data, name=self.name)

    def __len__(self) -> int:
        return len(self._pending)
