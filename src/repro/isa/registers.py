"""Register-file conventions of the simulation ISA."""

from __future__ import annotations

#: Total number of architectural integer registers.
NUM_REGISTERS = 32

#: Register 0 is hard-wired to zero, as in MIPS/RISC-V.  Writes are ignored.
ZERO_REGISTER = 0

#: Calls write their return address here; ``RET`` jumps through it.
LINK_REGISTER = 31

#: By convention the workload builders use r30 as a stack/frame pointer.
STACK_POINTER = 30

#: General-purpose registers available to the workload generator
#: (everything except the zero, link and stack registers).
GENERAL_PURPOSE = tuple(
    r for r in range(NUM_REGISTERS) if r not in (ZERO_REGISTER, LINK_REGISTER, STACK_POINTER)
)


def register_name(index: int) -> str:
    """Human-readable name of register ``index`` (``r0`` ... ``r31``)."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    if index == ZERO_REGISTER:
        return "zero"
    if index == LINK_REGISTER:
        return "ra"
    if index == STACK_POINTER:
        return "sp"
    return f"r{index}"


def validate_register(index: int) -> int:
    """Return ``index`` unchanged if valid, raise otherwise."""
    if not isinstance(index, int) or not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"invalid register index: {index!r}")
    return index
