"""Static analysis over programs: basic blocks, def-use chains, backward slices.

Skeleton construction (Appendix A of the paper) works on the program binary:
starting from *seed* instructions (branches plus profiled memory
instructions), it walks backward dependence chains and marks everything
reachable.  The helpers in this module provide exactly the reaching-definition
information that walk requires, computed once per program and memoised inside
a :class:`StaticAnalysis` object.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.isa.instructions import Instruction
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import NUM_REGISTERS, ZERO_REGISTER


def build_basic_blocks(program: Program) -> List[BasicBlock]:
    """Partition ``program`` into basic blocks and link successors.

    Block leaders are: the entry point, every branch/jump/call target, and
    every instruction that follows a control instruction.
    """
    n = len(program)
    if n == 0:
        return []
    leaders: Set[int] = {0}
    for inst in program:
        if inst.is_control:
            if inst.target is not None:
                leaders.add(inst.target)
            if inst.pc + 1 < n:
                leaders.add(inst.pc + 1)
    ordered_leaders = sorted(leaders)
    blocks: List[BasicBlock] = []
    leader_to_block: Dict[int, int] = {}
    for idx, leader in enumerate(ordered_leaders):
        end = (ordered_leaders[idx + 1] - 1) if idx + 1 < len(ordered_leaders) else n - 1
        blocks.append(BasicBlock(index=idx, start=leader, end=end))
        leader_to_block[leader] = idx

    for block in blocks:
        terminator = program[block.end]
        succs: List[int] = []
        if terminator.is_control:
            if terminator.target is not None:
                succs.append(leader_to_block[terminator.target])
            # Conditional branches and calls fall through as well.
            if (terminator.is_branch or terminator.op_class.name == "CALL") and (
                block.end + 1 in leader_to_block
            ):
                succs.append(leader_to_block[block.end + 1])
        else:
            if block.end + 1 in leader_to_block:
                succs.append(leader_to_block[block.end + 1])
        block.successors = succs
    return blocks


def def_use_chains(program: Program) -> Dict[int, List[int]]:
    """Map each static PC to the PCs of its *most recent* register definers.

    This is an intentionally simple, conservative reaching-definition
    approximation: for every source register of an instruction we record any
    instruction earlier in *static program order* that defines that register
    and is the closest such definition along a linear scan, plus any
    definition that can reach around a backward branch (loop-carried
    dependence).  The approximation matches what a binary parser without full
    data-flow analysis can extract — the setting the paper describes — and is
    sufficient for skeleton construction because including an extra producer
    only grows the skeleton slightly and never breaks correctness (the
    skeleton is speculative by design).
    """
    last_def: Dict[int, int] = {}
    # First pass: straight-line "closest previous definition".
    linear_defs: Dict[int, List[int]] = defaultdict(list)
    for inst in program:
        for src in inst.srcs:
            if src == ZERO_REGISTER:
                continue
            if src in last_def:
                linear_defs[inst.pc].append(last_def[src])
        if inst.writes_register:
            last_def[inst.dst] = inst.pc

    # Second pass: add loop-carried definitions.  For each backward branch
    # with target T and branch PC B, any definition inside [T, B] reaches the
    # uses inside the same region on the next iteration.
    region_defs: Dict[int, Dict[int, int]] = {}
    for inst in program:
        if inst.is_control and inst.target is not None and inst.target <= inst.pc:
            lo, hi = inst.target, inst.pc
            defs_in_region: Dict[int, int] = {}
            for pc in range(lo, hi + 1):
                producer = program[pc]
                if producer.writes_register:
                    defs_in_region[producer.dst] = pc
            region_defs[(lo, hi)] = defs_in_region

    chains: Dict[int, List[int]] = {pc: list(defs) for pc, defs in linear_defs.items()}
    for (lo, hi), defs_in_region in region_defs.items():
        for pc in range(lo, hi + 1):
            inst = program[pc]
            for src in inst.srcs:
                if src == ZERO_REGISTER:
                    continue
                if src in defs_in_region:
                    chains.setdefault(pc, [])
                    if defs_in_region[src] not in chains[pc]:
                        chains[pc].append(defs_in_region[src])
    for inst in program:
        chains.setdefault(inst.pc, [])
    return dict(chains)


def backward_slice(
    program: Program,
    seeds: Iterable[int],
    chains: Dict[int, List[int]] = None,
    max_store_load_distance: int = 1000,
) -> Set[int]:
    """PCs reachable by walking backward dependence chains from ``seeds``.

    Memory dependences (store feeding a later load at the same base-register
    + displacement pattern) are included only when the store and load are
    within ``max_store_load_distance`` static instructions of each other,
    matching the heuristic in Appendix A of the paper.
    """
    if chains is None:
        chains = def_use_chains(program)

    # Approximate store->load memory dependences by matching base register
    # and displacement, the same clue a binary parser would use.
    store_sites: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for inst in program:
        if inst.is_store and inst.srcs:
            store_sites[(inst.srcs[0], inst.imm)].append(inst.pc)

    work = deque(seeds)
    included: Set[int] = set()
    while work:
        pc = work.popleft()
        if pc in included:
            continue
        included.add(pc)
        for producer_pc in chains.get(pc, ()):
            if producer_pc not in included:
                work.append(producer_pc)
        inst = program[pc]
        if inst.is_load and inst.srcs:
            for store_pc in store_sites.get((inst.srcs[0], inst.imm), ()):
                if abs(store_pc - pc) <= max_store_load_distance and store_pc not in included:
                    work.append(store_pc)
    return included


@dataclass(frozen=True)
class StaticAnalysis:
    """Memoised bundle of the static analyses for one program."""

    program: Program
    blocks: Tuple[BasicBlock, ...]
    chains: Dict[int, List[int]]

    @classmethod
    def analyze(cls, program: Program) -> "StaticAnalysis":
        return cls(
            program=program,
            blocks=tuple(build_basic_blocks(program)),
            chains=def_use_chains(program),
        )

    def slice_from(self, seeds: Iterable[int], max_store_load_distance: int = 1000) -> Set[int]:
        return backward_slice(
            self.program, seeds, self.chains, max_store_load_distance
        )

    def block_of(self, pc: int) -> BasicBlock:
        for block in self.blocks:
            if pc in block:
                return block
        raise ValueError(f"pc {pc} not inside any basic block")

    @property
    def register_pressure(self) -> Dict[int, int]:
        """Number of static writers per register (rough pressure metric)."""
        writers: Dict[int, int] = {r: 0 for r in range(NUM_REGISTERS)}
        for inst in self.program:
            if inst.writes_register:
                writers[inst.dst] += 1
        return writers
