"""Program container: static code plus an initial data image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.instructions import Instruction, Opcode


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions.

    ``start`` and ``end`` are inclusive static PCs.  The block's terminator
    (if any) is the control instruction at ``end``.
    """

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1


class Program:
    """Static code (a list of :class:`Instruction`) plus initial data memory.

    The data image is a sparse mapping from word-aligned byte addresses to
    integer values; the functional emulator copies it into its architectural
    memory at reset so that a single :class:`Program` can be re-executed many
    times (e.g. once per simulated configuration) without state leaking
    between runs.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        data: Optional[Dict[int, int]] = None,
        name: str = "program",
        entry_point: int = 0,
    ) -> None:
        self._instructions: List[Instruction] = list(instructions)
        self._validate()
        self.data: Dict[int, int] = dict(data or {})
        self.name = name
        self.entry_point = entry_point

    # -- construction-time validation ------------------------------------
    def _validate(self) -> None:
        for idx, inst in enumerate(self._instructions):
            if inst.pc != idx:
                raise ValueError(
                    f"instruction at index {idx} has inconsistent pc {inst.pc}"
                )
            if inst.target is not None and not (
                0 <= inst.target < len(self._instructions)
            ):
                raise ValueError(
                    f"instruction {idx} targets out-of-range pc {inst.target}"
                )

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self._instructions[pc]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    @property
    def instructions(self) -> Sequence[Instruction]:
        return tuple(self._instructions)

    # -- queries -----------------------------------------------------------
    def branch_pcs(self) -> List[int]:
        """Static PCs of all conditional branches."""
        return [inst.pc for inst in self._instructions if inst.is_branch]

    def control_pcs(self) -> List[int]:
        """Static PCs of all control instructions (branches, jumps, calls, rets)."""
        return [inst.pc for inst in self._instructions if inst.is_control]

    def memory_pcs(self) -> List[int]:
        """Static PCs of all loads and stores."""
        return [inst.pc for inst in self._instructions if inst.is_memory]

    def load_pcs(self) -> List[int]:
        return [inst.pc for inst in self._instructions if inst.is_load]

    def store_pcs(self) -> List[int]:
        return [inst.pc for inst in self._instructions if inst.is_store]

    def halt_pcs(self) -> List[int]:
        return [
            inst.pc for inst in self._instructions if inst.opcode is Opcode.HALT
        ]

    def describe(self) -> str:
        """Multi-line human-readable listing (for examples and debugging)."""
        header = f"# program {self.name!r}: {len(self)} static instructions"
        return "\n".join([header] + [str(inst) for inst in self._instructions])
