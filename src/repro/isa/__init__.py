"""A small register ISA used as the simulation substrate.

The original paper evaluates Alpha/x86 binaries under gem5.  This repository
replaces those binaries with programs written in a compact load/store
register ISA defined here.  The ISA is deliberately simple — 32 integer
registers, a flat word-addressed data memory, conditional branches on a
register, calls/returns through a link register — yet rich enough that the
skeleton-construction, prefetching, value-reuse and control-flow machinery of
R3-DLA all operate exactly as described in the paper: every static
instruction has explicit source/destination registers from which backward
dependence chains can be extracted, loads/stores compute addresses from a
base register plus an immediate, and control instructions expose taken /
not-taken outcomes.
"""

from repro.isa.instructions import (
    FU_POOL_FP,
    FU_POOL_INT,
    FU_POOL_MEM,
    Instruction,
    LatencyClass,
    OP_CLASS_CODE,
    OPCODE_META,
    Opcode,
    OpcodeMeta,
    OpClass,
    is_branch,
    is_control,
    is_memory,
)
from repro.isa.registers import (
    LINK_REGISTER,
    NUM_REGISTERS,
    STACK_POINTER,
    ZERO_REGISTER,
    register_name,
)
from repro.isa.program import BasicBlock, Program
from repro.isa.builder import ProgramBuilder
from repro.isa.analysis import (
    StaticAnalysis,
    backward_slice,
    build_basic_blocks,
    def_use_chains,
)

__all__ = [
    "Instruction",
    "Opcode",
    "OpClass",
    "OpcodeMeta",
    "OPCODE_META",
    "OP_CLASS_CODE",
    "FU_POOL_INT",
    "FU_POOL_MEM",
    "FU_POOL_FP",
    "LatencyClass",
    "is_branch",
    "is_control",
    "is_memory",
    "NUM_REGISTERS",
    "ZERO_REGISTER",
    "LINK_REGISTER",
    "STACK_POINTER",
    "register_name",
    "Program",
    "BasicBlock",
    "ProgramBuilder",
    "StaticAnalysis",
    "backward_slice",
    "build_basic_blocks",
    "def_use_chains",
]
