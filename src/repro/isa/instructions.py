"""Static instruction representation.

Every static instruction carries explicit destination/source registers, an
immediate, and (for control instructions) a branch target expressed as a
static PC.  PCs are simply indices into the program's instruction list; the
memory hierarchy maps them onto byte addresses by multiplying with the
instruction size (4 bytes), matching a classic RISC layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import ZERO_REGISTER, register_name, validate_register

#: Size in bytes of one encoded instruction; used to form I-cache addresses.
INSTRUCTION_BYTES = 4


class OpClass(enum.Enum):
    """Coarse functional-unit class of an instruction.

    The out-of-order timing model schedules instructions onto functional
    units by class, and the energy model charges per-class event energies.
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    NOP = "nop"


class Opcode(enum.Enum):
    """Concrete opcodes understood by the functional emulator."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"          # set if less-than (signed)
    SEQ = "seq"          # set if equal
    ADDI = "addi"        # dst = src1 + imm
    ANDI = "andi"
    LI = "li"            # dst = imm
    MOV = "mov"          # dst = src1
    # Integer multiply / divide
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    # Floating point (values kept in the integer register file; only the
    # latency/energy class differs for the purposes of this simulator)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory
    LOAD = "load"        # dst = mem[src1 + imm]
    STORE = "store"      # mem[src1 + imm] = src2
    # Control
    BEQZ = "beqz"        # branch to target if src1 == 0
    BNEZ = "bnez"        # branch to target if src1 != 0
    BLT = "blt"          # branch to target if src1 < src2
    BGE = "bge"          # branch to target if src1 >= src2
    JUMP = "jump"        # unconditional branch to target
    CALL = "call"        # ra = pc + 1; jump to target
    RET = "ret"          # jump to ra (src1)
    HALT = "halt"        # stop execution
    NOP = "nop"


#: Mapping from opcode to functional-unit class.
_OPCODE_CLASS = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SEQ: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.LI: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.MOD: OpClass.INT_DIV,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.BEQZ: OpClass.BRANCH,
    Opcode.BNEZ: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JUMP: OpClass.JUMP,
    Opcode.CALL: OpClass.CALL,
    Opcode.RET: OpClass.RET,
    Opcode.HALT: OpClass.NOP,
    Opcode.NOP: OpClass.NOP,
}


class LatencyClass:
    """Default execution latencies (in cycles) per :class:`OpClass`.

    These mirror the functional-unit latencies of the aggressive out-of-order
    baseline in Table I of the paper (single-cycle integer ALU, pipelined
    multiplier, long-latency divides).  Memory latency is *not* included
    here; loads and stores get their latency from the cache hierarchy.
    """

    DEFAULTS = {
        OpClass.INT_ALU: 1,
        OpClass.INT_MUL: 3,
        OpClass.INT_DIV: 12,
        OpClass.FP_ALU: 3,
        OpClass.FP_MUL: 4,
        OpClass.FP_DIV: 14,
        OpClass.LOAD: 1,    # address generation + cache access added separately
        OpClass.STORE: 1,
        OpClass.BRANCH: 1,
        OpClass.JUMP: 1,
        OpClass.CALL: 1,
        OpClass.RET: 1,
        OpClass.NOP: 1,
    }

    @classmethod
    def latency_of(cls, op_class: OpClass) -> int:
        return cls.DEFAULTS[op_class]


_CONTROL_CLASSES = {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
_CONDITIONAL_OPCODES = {Opcode.BEQZ, Opcode.BNEZ, Opcode.BLT, Opcode.BGE}
_MEMORY_CLASSES = {OpClass.LOAD, OpClass.STORE}


@dataclass
class Instruction:
    """One static instruction.

    Attributes
    ----------
    pc:
        Static program counter — the index of this instruction in its
        :class:`~repro.isa.program.Program`.
    opcode:
        The concrete operation.
    dst:
        Destination register or ``None`` for instructions without one.
    srcs:
        Tuple of source registers (possibly empty).
    imm:
        Immediate operand (also the displacement for loads/stores).
    target:
        Static PC of the branch/jump/call target, where applicable.
    annotation:
        Free-form label attached by workload builders (e.g. ``"list_next"``)
        that profiling and skeleton construction can key off for reporting.
    """

    pc: int
    opcode: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    annotation: str = ""

    def __post_init__(self) -> None:
        if self.dst is not None:
            validate_register(self.dst)
        for src in self.srcs:
            validate_register(src)

    # -- classification --------------------------------------------------
    @property
    def op_class(self) -> OpClass:
        return _OPCODE_CLASS[self.opcode]

    @property
    def is_branch(self) -> bool:
        """True for *conditional* branches only."""
        return self.opcode in _CONDITIONAL_OPCODES

    @property
    def is_control(self) -> bool:
        """True for any instruction that can redirect the PC."""
        return self.op_class in _CONTROL_CLASSES

    @property
    def is_memory(self) -> bool:
        return self.op_class in _MEMORY_CLASSES

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def writes_register(self) -> bool:
        return self.dst is not None and self.dst != ZERO_REGISTER

    @property
    def byte_address(self) -> int:
        """Byte address of the instruction in the (virtual) text segment."""
        return self.pc * INSTRUCTION_BYTES

    @property
    def execution_latency(self) -> int:
        return LatencyClass.latency_of(self.op_class)

    # -- pretty-printing -------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.pc:5d}: {self.opcode.value:6s}"]
        if self.dst is not None:
            parts.append(register_name(self.dst))
        parts.extend(register_name(s) for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        if self.annotation:
            parts.append(f"# {self.annotation}")
        return " ".join(parts)


# -- module-level helpers used by analysis passes ------------------------
def is_branch(inst: Instruction) -> bool:
    """True when ``inst`` is a conditional branch."""
    return inst.is_branch


def is_control(inst: Instruction) -> bool:
    """True when ``inst`` may redirect control flow."""
    return inst.is_control


def is_memory(inst: Instruction) -> bool:
    """True when ``inst`` accesses data memory."""
    return inst.is_memory
