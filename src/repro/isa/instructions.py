"""Static instruction representation.

Every static instruction carries explicit destination/source registers, an
immediate, and (for control instructions) a branch target expressed as a
static PC.  PCs are simply indices into the program's instruction list; the
memory hierarchy maps them onto byte addresses by multiplying with the
instruction size (4 bytes), matching a classic RISC layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional, Tuple

from repro.isa.registers import ZERO_REGISTER, register_name, validate_register

#: Size in bytes of one encoded instruction; used to form I-cache addresses.
INSTRUCTION_BYTES = 4


class OpClass(enum.Enum):
    """Coarse functional-unit class of an instruction.

    The out-of-order timing model schedules instructions onto functional
    units by class, and the energy model charges per-class event energies.
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    NOP = "nop"


class Opcode(enum.Enum):
    """Concrete opcodes understood by the functional emulator."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"          # set if less-than (signed)
    SEQ = "seq"          # set if equal
    ADDI = "addi"        # dst = src1 + imm
    ANDI = "andi"
    LI = "li"            # dst = imm
    MOV = "mov"          # dst = src1
    # Integer multiply / divide
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    # Floating point (values kept in the integer register file; only the
    # latency/energy class differs for the purposes of this simulator)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory
    LOAD = "load"        # dst = mem[src1 + imm]
    STORE = "store"      # mem[src1 + imm] = src2
    # Control
    BEQZ = "beqz"        # branch to target if src1 == 0
    BNEZ = "bnez"        # branch to target if src1 != 0
    BLT = "blt"          # branch to target if src1 < src2
    BGE = "bge"          # branch to target if src1 >= src2
    JUMP = "jump"        # unconditional branch to target
    CALL = "call"        # ra = pc + 1; jump to target
    RET = "ret"          # jump to ra (src1)
    HALT = "halt"        # stop execution
    NOP = "nop"


#: Mapping from opcode to functional-unit class.
_OPCODE_CLASS = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SEQ: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.LI: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.MOD: OpClass.INT_DIV,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.BEQZ: OpClass.BRANCH,
    Opcode.BNEZ: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.JUMP: OpClass.JUMP,
    Opcode.CALL: OpClass.CALL,
    Opcode.RET: OpClass.RET,
    Opcode.HALT: OpClass.NOP,
    Opcode.NOP: OpClass.NOP,
}


class LatencyClass:
    """Default execution latencies (in cycles) per :class:`OpClass`.

    These mirror the functional-unit latencies of the aggressive out-of-order
    baseline in Table I of the paper (single-cycle integer ALU, pipelined
    multiplier, long-latency divides).  Memory latency is *not* included
    here; loads and stores get their latency from the cache hierarchy.
    """

    DEFAULTS = {
        OpClass.INT_ALU: 1,
        OpClass.INT_MUL: 3,
        OpClass.INT_DIV: 12,
        OpClass.FP_ALU: 3,
        OpClass.FP_MUL: 4,
        OpClass.FP_DIV: 14,
        OpClass.LOAD: 1,    # address generation + cache access added separately
        OpClass.STORE: 1,
        OpClass.BRANCH: 1,
        OpClass.JUMP: 1,
        OpClass.CALL: 1,
        OpClass.RET: 1,
        OpClass.NOP: 1,
    }

    @classmethod
    def latency_of(cls, op_class: OpClass) -> int:
        return cls.DEFAULTS[op_class]


_CONTROL_CLASSES = {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
_CONDITIONAL_OPCODES = {Opcode.BEQZ, Opcode.BNEZ, Opcode.BLT, Opcode.BGE}
_MEMORY_CLASSES = {OpClass.LOAD, OpClass.STORE}


# -- decoded fast path ----------------------------------------------------
#
# The timing models walk traces instruction-by-instruction; resolving
# ``op_class`` / ``is_load`` / ``execution_latency`` through enum-keyed dict
# lookups on every dynamic instruction dominated simulation time.  Instead,
# every classification fact an :class:`Instruction` can expose is decoded
# exactly once per *opcode* into an interned :class:`OpcodeMeta` record, and
# copied onto each instruction as plain attributes at construction time.

#: Small integer code per :class:`OpClass`, in definition order.  Timing and
#: energy models may index plain lists/arrays with these instead of hashing
#: enum members.
OP_CLASS_CODE: Dict[OpClass, int] = {cls: i for i, cls in enumerate(OpClass)}

#: Inverse of :data:`OP_CLASS_CODE` (list position == class code).
OP_CLASS_BY_CODE: Tuple[OpClass, ...] = tuple(OpClass)

#: Functional-unit pool indices used by the out-of-order scheduler.
FU_POOL_INT = 0
FU_POOL_MEM = 1
FU_POOL_FP = 2

_FP_CLASSES = {OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV}


class OpcodeMeta(NamedTuple):
    """Interned decode record shared by every instruction with one opcode."""

    op_class: OpClass
    class_code: int
    is_branch: bool
    is_control: bool
    is_memory: bool
    is_load: bool
    is_store: bool
    execution_latency: int
    #: ``float(execution_latency)``, precomputed for the timing model.
    latency_cycles: float
    #: Which functional-unit pool executes this opcode.
    fu_pool: int


def _decode_opcode(op: Opcode) -> OpcodeMeta:
    op_class = _OPCODE_CLASS[op]
    if op_class in _FP_CLASSES:
        fu_pool = FU_POOL_FP
    elif op_class in _MEMORY_CLASSES:
        fu_pool = FU_POOL_MEM
    else:
        fu_pool = FU_POOL_INT
    latency = LatencyClass.latency_of(op_class)
    return OpcodeMeta(
        op_class=op_class,
        class_code=OP_CLASS_CODE[op_class],
        is_branch=op in _CONDITIONAL_OPCODES,
        is_control=op_class in _CONTROL_CLASSES,
        is_memory=op_class in _MEMORY_CLASSES,
        is_load=op_class is OpClass.LOAD,
        is_store=op_class is OpClass.STORE,
        execution_latency=latency,
        latency_cycles=float(latency),
        fu_pool=fu_pool,
    )


#: The interned decode table, one record per opcode, built once at import.
OPCODE_META: Dict[Opcode, OpcodeMeta] = {op: _decode_opcode(op) for op in Opcode}


@dataclass
class Instruction:
    """One static instruction.

    Attributes
    ----------
    pc:
        Static program counter — the index of this instruction in its
        :class:`~repro.isa.program.Program`.
    opcode:
        The concrete operation.
    dst:
        Destination register or ``None`` for instructions without one.
    srcs:
        Tuple of source registers (possibly empty).
    imm:
        Immediate operand (also the displacement for loads/stores).
    target:
        Static PC of the branch/jump/call target, where applicable.
    annotation:
        Free-form label attached by workload builders (e.g. ``"list_next"``)
        that profiling and skeleton construction can key off for reporting.

    Classification facts (``op_class``, ``is_branch``, ``execution_latency``,
    ...) are decoded once at construction from the interned
    :data:`OPCODE_META` table and stored as plain attributes, so reading them
    in a timing model's inner loop costs a single attribute load — they keep
    the exact values the original enum-backed properties produced.
    """

    pc: int
    opcode: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    annotation: str = ""

    # -- decoded metadata (derived, excluded from eq/repr) ----------------
    op_class: OpClass = field(init=False, repr=False, compare=False)
    class_code: int = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    is_memory: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    execution_latency: int = field(init=False, repr=False, compare=False)
    latency_cycles: float = field(init=False, repr=False, compare=False)
    fu_pool: int = field(init=False, repr=False, compare=False)
    writes_register: bool = field(init=False, repr=False, compare=False)
    byte_address: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.dst is not None:
            validate_register(self.dst)
        for src in self.srcs:
            validate_register(src)
        meta = OPCODE_META[self.opcode]
        self.op_class = meta.op_class
        self.class_code = meta.class_code
        self.is_branch = meta.is_branch
        self.is_control = meta.is_control
        self.is_memory = meta.is_memory
        self.is_load = meta.is_load
        self.is_store = meta.is_store
        self.execution_latency = meta.execution_latency
        self.latency_cycles = meta.latency_cycles
        self.fu_pool = meta.fu_pool
        self.writes_register = self.dst is not None and self.dst != ZERO_REGISTER
        self.byte_address = self.pc * INSTRUCTION_BYTES

    @property
    def meta(self) -> OpcodeMeta:
        """The interned decode record for this instruction's opcode."""
        return OPCODE_META[self.opcode]

    # -- pretty-printing -------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.pc:5d}: {self.opcode.value:6s}"]
        if self.dst is not None:
            parts.append(register_name(self.dst))
        parts.extend(register_name(s) for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        if self.annotation:
            parts.append(f"# {self.annotation}")
        return " ".join(parts)


# -- module-level helpers used by analysis passes ------------------------
def is_branch(inst: Instruction) -> bool:
    """True when ``inst`` is a conditional branch."""
    return inst.is_branch


def is_control(inst: Instruction) -> bool:
    """True when ``inst`` may redirect control flow."""
    return inst.is_control


def is_memory(inst: Instruction) -> bool:
    """True when ``inst`` accesses data memory."""
    return inst.is_memory
