"""Distributed campaign fabric: cell-sync transport + fleet dispatcher.

The lease/merge layer (store leases, shard partitions, worker claim loops,
``repro merge``) is host-agnostic by construction — a cell is done exactly
when its result is in a ``.repro_cache/``.  What it could not do until now
is *move* cells between cache directories or *submit* workers to a backend.
This package closes that gap:

:mod:`repro.campaign.fabric.sync`
    Batched, idempotent, torn-transfer-safe push/pull of cache entries and
    campaign lease/failure/journal state between a local cache root and a
    shared root (a directory, or an rsync-style remote target).

:mod:`repro.campaign.fabric.dispatch`
    Renders per-host worker job scripts from templates, submits them to a
    backend (:mod:`repro.campaign.fabric.backends`), polls campaign status
    until the fleet converges, and merges — byte-identical to a single-host
    run.

CLI surface: ``repro dispatch`` and ``repro sync``.
"""

from repro.campaign.fabric.dispatch import (  # noqa: F401
    DispatchError, Dispatcher, DispatchPlan, HostJob,
)
from repro.campaign.fabric.sync import (  # noqa: F401
    CacheSync, DirectoryTarget, RsyncTarget, SyncError, SyncReport,
    parse_target,
)

__all__ = [
    "CacheSync",
    "DirectoryTarget",
    "DispatchError",
    "DispatchPlan",
    "Dispatcher",
    "HostJob",
    "RsyncTarget",
    "SyncError",
    "SyncReport",
    "parse_target",
]
