"""Job-script templates for the fleet dispatcher.

Every backend — local subprocess, process pool, SLURM — executes the *same*
rendered bash script, so what a host does is decided entirely at render
time and is inspectable with ``--dry-run`` before anything runs.  The
script is self-contained: it exports its own environment (cache root,
``PYTHONPATH``, pinned smoke figure, journal TTL), so submitting it under
a scheduler that strips the environment changes nothing.

Two claim modes, two bodies:

``shard``
    The host owns a static slice of the cell matrix and its *own* cache
    root: pull warm cells from the shared root, run the shard, push
    results back.  The push runs even when the shard run fails — every
    cell that did finish is in the local cache and belongs to the fleet.

``worker``
    The host points straight at the shared root and claims cells through
    store leases (``repro run NAME --worker``); no sync steps needed.

Rendering uses :class:`string.Template` (never ``str.format``): bash is
full of ``${...}`` and ``$?``, and Template's ``$$`` escape keeps the
boundary between render-time substitution and run-time shell expansion
explicit.
"""

from __future__ import annotations

from string import Template
from typing import Dict, List, Optional

#: Written by the SLURM epilogue's EXIT trap; its content is the job's
#: exit code.  Polling for this file is how the dispatcher observes a
#: SLURM job finishing without talking to ``squeue``.
SENTINEL_SUFFIX = ".exit"

_SCRIPT = Template("""\
#!/bin/bash
# repro fabric job: campaign $campaign, host $host_index of $host_count
# ($claim claim, $mode mode) — rendered by `repro dispatch`; do not edit.
${directives}set -uo pipefail
${sentinel_trap}$env_exports
$body""")

_SHARD_BODY = Template("""\
"$python" -m repro.campaign.cli sync pull --shared "$shared" \\
    --local "$cache_root" --campaign "$campaign"
"$python" -m repro.campaign.cli run "$campaign"$mode_flag$spec_flag \\
    --shard $shard --processes $processes
status=$$?
"$python" -m repro.campaign.cli sync push --shared "$shared" \\
    --local "$cache_root" --campaign "$campaign"
exit $$status
""")

_WORKER_BODY = Template("""\
"$python" -m repro.campaign.cli run "$campaign"$mode_flag$spec_flag \\
    --worker --no-render --owner "$owner" --ttl $ttl --poll $poll \\
    --processes $processes
""")

#: ``#SBATCH`` header rendered for the slurm backend (the other backends
#: render no directives — bash ignores them anyway, but keeping them out
#: makes the dry-run scripts honest about what will be submitted).
_SBATCH_DIRECTIVES = Template("""\
#SBATCH --job-name=$job_name
#SBATCH --output=$log_path
#SBATCH --time=$time_limit
#SBATCH --ntasks=1
#SBATCH --cpus-per-task=$cpus
""")

_SENTINEL_TRAP = Template("""\
trap 'echo -n $$? > "$sentinel"' EXIT
""")


def _export_lines(env: Dict[str, str]) -> str:
    lines: List[str] = []
    for name in sorted(env):
        value = str(env[name]).replace('"', '\\"')
        lines.append(f'export {name}="{value}"')
    return "\n".join(lines)


def render_job_script(*, campaign: str, claim: str, host_index: int,
                      host_count: int, python: str, shared: str,
                      cache_root: str, env: Dict[str, str], quick: bool,
                      spec_file: Optional[str] = None, processes: int = 1,
                      owner: Optional[str] = None, ttl: float = 60.0,
                      poll: float = 2.0, sbatch: bool = False,
                      job_name: str = "repro", log_path: str = "job.log",
                      time_limit: str = "01:00:00", cpus: int = 1,
                      sentinel: Optional[str] = None) -> str:
    """One host's complete job script (see the module docstring)."""
    mode_flag = " --quick" if quick else " --full"
    spec_flag = f' --spec "{spec_file}"' if spec_file else ""
    common = dict(python=python, shared=shared, cache_root=cache_root,
                  campaign=campaign, mode_flag=mode_flag,
                  spec_flag=spec_flag, processes=processes)
    if claim == "shard":
        body = _SHARD_BODY.substitute(
            shard=f"{host_index}/{host_count}", **common)
    elif claim == "worker":
        body = _WORKER_BODY.substitute(
            owner=owner or f"fabric-host-{host_index}",
            ttl=f"{ttl:g}", poll=f"{poll:g}", **common)
    else:
        raise ValueError(f"unknown claim mode {claim!r}")
    directives = ""
    if sbatch:
        directives = _SBATCH_DIRECTIVES.substitute(
            job_name=job_name, log_path=log_path,
            time_limit=time_limit, cpus=cpus)
    sentinel_trap = ""
    if sentinel is not None:
        sentinel_trap = _SENTINEL_TRAP.substitute(sentinel=sentinel)
    return _SCRIPT.substitute(
        campaign=campaign, claim=claim, mode="quick" if quick else "full",
        host_index=host_index, host_count=host_count,
        directives=directives, sentinel_trap=sentinel_trap,
        env_exports=_export_lines(env), body=body)


__all__ = ["SENTINEL_SUFFIX", "render_job_script"]
