"""SLURM backend: submit rendered ``sbatch`` scripts, observe via sentinel.

Submission is one ``sbatch --parsable`` call per host job (the rendered
script already carries its ``#SBATCH`` directives).  Completion is
observed without ever talking to ``squeue``/``sacct``: the script's EXIT
trap writes its exit code to a sentinel file on the shared filesystem,
so polling is a portable ``stat`` — robust to accounting lag, controller
restarts and the myriad site-specific ways SLURM reports state.

``repro dispatch --backend slurm --dry-run`` renders the sbatch scripts
without submitting anything — the supported way to inspect (or hand-edit
and hand-submit) what would run on the cluster.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Optional

from repro.campaign.fabric.backends.base import Backend, BackendError


class SlurmBackend(Backend):
    name = "slurm"

    def __init__(self, sbatch: str = "sbatch") -> None:
        self.sbatch = sbatch

    def submit(self, job) -> None:
        script = Path(job.script_path)
        if not script.is_file():
            raise BackendError(f"job script missing: {script}")
        # Stale sentinel from an earlier submission of the same plan would
        # read as instant completion — clear it first.
        sentinel = Path(job.sentinel_path)
        try:
            sentinel.unlink()
        except OSError:
            pass
        result = subprocess.run(
            [self.sbatch, "--parsable", str(script)],
            capture_output=True, text=True,
        )
        if result.returncode != 0:
            raise BackendError(
                f"sbatch failed ({result.returncode}): "
                f"{result.stderr.strip() or result.stdout.strip()}"
            )
        # --parsable prints `jobid[;cluster]` on one line.
        job.job_id = result.stdout.strip().split(";")[0]

    def poll(self, job) -> Optional[int]:
        if job.returncode is not None:
            return job.returncode
        sentinel = Path(job.sentinel_path)
        if not sentinel.exists():
            return None
        try:
            text = sentinel.read_text().strip()
            code = int(text) if text else 1
        except (OSError, ValueError):
            code = 1
        job.returncode = code
        return code


__all__ = ["SlurmBackend"]
