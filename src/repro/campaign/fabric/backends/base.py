"""Execution-backend protocol for the fleet dispatcher.

A backend answers exactly two questions about a rendered job script:
*run it* (:meth:`Backend.submit`) and *is it done yet*
(:meth:`Backend.poll`).  Everything else — what the script does, which
cache root it talks to, how results merge — is decided at render time
(:mod:`repro.campaign.fabric.templates`), so backends stay small enough
to be obviously correct and trivially mockable in tests.

Backends duck-type the job argument (anything with ``script_path``,
``log_path``, ``sentinel_path`` and writable ``job_id`` /
``returncode`` attributes works) so this package never imports the
dispatcher — no import cycle, and tests can poll plain stand-in objects.
"""

from __future__ import annotations

from typing import Optional


class BackendError(RuntimeError):
    """A backend could not submit or observe a job."""


class Backend:
    """Submit rendered job scripts and observe their completion."""

    #: Registry name (``--backend`` spelling).
    name = "base"

    def submit(self, job) -> None:
        """Start ``job.script_path``; record identity on the job object."""
        raise NotImplementedError

    def poll(self, job) -> Optional[int]:
        """The job's exit code once terminal, else ``None`` (running)."""
        raise NotImplementedError


__all__ = ["Backend", "BackendError"]
