"""Local backend: run each host job to completion, one after another.

The simplest possible executor — ``submit`` blocks until the script
exits — which makes it the reference backend for debugging a dispatch
plan: no concurrency, no races, the host logs interleave with nothing.
Fleet semantics still hold (each job sees its own cache root and syncs
through the shared one), just serialised.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Optional

from repro.campaign.fabric.backends.base import Backend, BackendError


class LocalBackend(Backend):
    name = "local"

    def submit(self, job) -> None:
        script = Path(job.script_path)
        if not script.is_file():
            raise BackendError(f"job script missing: {script}")
        with open(job.log_path, "wb") as log:
            result = subprocess.run(
                ["bash", str(script)], stdout=log,
                stderr=subprocess.STDOUT,
            )
        job.job_id = f"local-{script.stem}"
        job.returncode = result.returncode

    def poll(self, job) -> Optional[int]:
        return job.returncode


__all__ = ["LocalBackend"]
