"""Process-pool backend: every host job is a concurrent subprocess.

The single-machine stand-in for a real fleet — N subprocesses, each with
its own cache root (or a shared one, in worker-claim mode), genuinely
racing through the same lease/sync protocol real hosts would.  This is
what CI's ``dispatch`` job uses to rehearse a 2-host fleet.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Optional

from repro.campaign.fabric.backends.base import Backend, BackendError


class ProcessPoolBackend(Backend):
    name = "process_pool"

    def __init__(self) -> None:
        self._procs = {}

    def submit(self, job) -> None:
        script = Path(job.script_path)
        if not script.is_file():
            raise BackendError(f"job script missing: {script}")
        log = open(job.log_path, "wb")
        proc = subprocess.Popen(
            ["bash", str(script)], stdout=log, stderr=subprocess.STDOUT,
        )
        job.job_id = f"pool-{proc.pid}"
        self._procs[job.job_id] = (proc, log)

    def poll(self, job) -> Optional[int]:
        if job.returncode is not None:
            return job.returncode
        entry = self._procs.get(job.job_id)
        if entry is None:
            raise BackendError(f"unknown job {job.job_id!r}")
        proc, log = entry
        code = proc.poll()
        if code is None:
            return None
        log.close()
        job.returncode = code
        del self._procs[job.job_id]
        return code

    def terminate(self) -> None:
        """Best-effort kill of every still-running job (error cleanup)."""
        for proc, log in list(self._procs.values()):
            try:
                proc.terminate()
            except OSError:
                pass
            try:
                log.close()
            except OSError:
                pass
        self._procs.clear()


__all__ = ["ProcessPoolBackend"]
