"""Execution backends for ``repro dispatch`` (see :mod:`.base`)."""

from repro.campaign.fabric.backends.base import (  # noqa: F401
    Backend, BackendError,
)
from repro.campaign.fabric.backends.local import LocalBackend
from repro.campaign.fabric.backends.process_pool import ProcessPoolBackend
from repro.campaign.fabric.backends.slurm import SlurmBackend

_BACKENDS = {
    LocalBackend.name: LocalBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    SlurmBackend.name: SlurmBackend,
}

#: ``--backend`` choices, in help-text order.
BACKEND_NAMES = tuple(sorted(_BACKENDS))


def get_backend(name: str) -> Backend:
    """A fresh backend instance by registry name."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r} (choose from: "
            f"{', '.join(BACKEND_NAMES)})"
        ) from None
    return cls()


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "LocalBackend",
    "ProcessPoolBackend",
    "SlurmBackend",
    "get_backend",
]
