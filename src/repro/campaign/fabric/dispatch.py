"""Fleet dispatcher: render host jobs, submit, poll to convergence, merge.

``repro dispatch NAME --backend B --hosts N`` turns one campaign into N
host jobs and runs the whole distributed lifecycle:

1. **prepare** — open the campaign manifest in the *shared* cache root
   (:meth:`~repro.campaign.scheduler.CampaignScheduler.prepare`), so
   status/monitor report meaningful counts from the first poll and the
   sync transport can resolve the campaign's cell keys;
2. **render** — write one self-contained bash job script per host under
   ``<shared>/fabric/<campaign>/jobs/`` (templates module; ``--dry-run``
   stops here);
3. **submit** — hand the scripts to an execution backend
   (:mod:`repro.campaign.fabric.backends`);
4. **poll** — watch job exit codes and the shared store's cell counts
   until every planned cell has landed (or a host fleet dies short);
5. **merge** — finalize + render artifacts exactly once, in the shared
   root, then print the telemetry monitor's fleet summary.

The dispatcher itself emits no journal events and simulates no cells —
workers own execution telemetry, the merge owner journals the assembly —
so a dispatched campaign's artifacts and timeline are byte-for-byte what
a single-host run of the same spec produces (the invariant CI's
``dispatch`` job diffs for).

Claim modes: ``shard`` gives each host an isolated cache root
(``<shared>/fabric/<campaign>/hosts/host-<i>``) plus a static slice of
the cell matrix, syncing through the shared root before and after the
run — survives hosts that share *nothing* but the shared target.
``worker`` points every host at the shared root directly and lets store
leases arbitrate — better load balance when the shared root is a real
shared filesystem.  Hosts > cells is fine in both: an empty shard (or a
worker that never wins a claim) converges trivially.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.campaign.fabric.backends import get_backend
from repro.campaign.fabric.templates import SENTINEL_SUFFIX, render_job_script
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, DEFAULT_LEASE_TTL
from repro.experiments.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

#: Claim modes a dispatch plan can use (see module docstring).
CLAIM_MODES = ("shard", "worker")

#: Subdirectory of the shared cache root holding fabric state
#: (rendered job scripts, logs, per-host cache roots).
FABRIC_DIR = "fabric"


class DispatchError(RuntimeError):
    """A dispatch that cannot be planned, submitted or converged."""


@dataclass
class HostJob:
    """One host's rendered job and its observed lifecycle."""

    index: int
    script_path: Path
    log_path: Path
    sentinel_path: Path
    cache_root: Path
    job_id: Optional[str] = None
    returncode: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "script": str(self.script_path),
            "log": str(self.log_path),
            "cache_root": str(self.cache_root),
            "job_id": self.job_id,
            "returncode": self.returncode,
        }


@dataclass
class DispatchPlan:
    """Everything a dispatch decided before anything ran."""

    campaign: str
    backend: str
    claim: str
    hosts: int
    quick: bool
    cells_planned: int
    shared_root: Path
    fabric_dir: Path
    jobs: List[HostJob] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "backend": self.backend,
            "claim": self.claim,
            "hosts": self.hosts,
            "mode": "quick" if self.quick else "full",
            "cells_planned": self.cells_planned,
            "shared_root": str(self.shared_root),
            "fabric_dir": str(self.fabric_dir),
            "jobs": [job.to_dict() for job in self.jobs],
        }


class Dispatcher:
    """Plan and run one campaign across a fleet (see module docstring).

    The shared root is wherever the surrounding environment points the
    disk cache (``REPRO_CACHE_DIR``) — the dispatcher, ``repro status``,
    ``repro monitor`` and the final merge all naturally read the same
    truth, and ``repro dispatch --shared DIR`` is just an env override.
    """

    def __init__(self, spec: CampaignSpec, backend: str = "process_pool",
                 hosts: int = 2, claim: str = "shard", quick: bool = True,
                 spec_file: Optional[str] = None,
                 processes: Optional[int] = None,
                 poll_seconds: float = 1.0, ttl: float = DEFAULT_LEASE_TTL,
                 timeout: Optional[float] = None,
                 time_limit: str = "01:00:00",
                 progress: Optional[Callable[[str], None]] = print) -> None:
        if hosts < 1:
            raise DispatchError(f"hosts must be >= 1 (got {hosts})")
        if claim not in CLAIM_MODES:
            raise DispatchError(
                f"unknown claim mode {claim!r} "
                f"(choose from: {', '.join(CLAIM_MODES)})"
            )
        self.spec = spec
        self.backend_name = backend
        self.hosts = hosts
        self.claim = claim
        self.quick = quick
        self.spec_file = (str(Path(spec_file).resolve())
                          if spec_file else None)
        self.processes = processes
        self.poll_seconds = poll_seconds
        self.ttl = ttl
        self.timeout = timeout
        self.time_limit = time_limit
        self.progress = progress or (lambda line: None)
        self.shared_root = Path(
            os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        ).resolve()
        self.store = CampaignStore(spec.name)

    # ------------------------------------------------------------------
    def _job_env(self, cache_root: Path) -> Dict[str, str]:
        """The environment one host job exports (self-contained scripts)."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        existing = os.environ.get("PYTHONPATH", "")
        if existing and src_dir not in existing.split(os.pathsep):
            src_dir = src_dir + os.pathsep + existing
        env = {
            CACHE_DIR_ENV: str(cache_root),
            "REPRO_DISK_CACHE": "1",
            "PYTHONPATH": src_dir,
        }
        if self.spec.name == "smoke":
            # Every host must exercise the same rotated figure as the
            # dispatcher's plan, even across a midnight boundary.
            from repro.campaign.registry import SMOKE_FIGURE_ENV, smoke_figure
            env[SMOKE_FIGURE_ENV] = smoke_figure()
        for passthrough in ("REPRO_JOURNAL_TTL_DAYS",):
            if os.environ.get(passthrough):
                env[passthrough] = os.environ[passthrough]
        return env

    def plan(self) -> DispatchPlan:
        """Prepare the shared store and render every host's job script."""
        scheduler = CampaignScheduler(self.spec, quick=self.quick,
                                      store=self.store, bench_report=False)
        manifest = scheduler.prepare()
        fabric = self.shared_root / FABRIC_DIR / self.spec.name
        jobs_dir = fabric / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        plan = DispatchPlan(
            campaign=self.spec.name, backend=self.backend_name,
            claim=self.claim, hosts=self.hosts, quick=self.quick,
            cells_planned=len(manifest.get("cells", {})),
            shared_root=self.shared_root, fabric_dir=fabric,
        )
        for index in range(self.hosts):
            if self.claim == "shard":
                cache_root = fabric / "hosts" / f"host-{index}"
                cache_root.mkdir(parents=True, exist_ok=True)
            else:
                cache_root = self.shared_root
            stem = jobs_dir / f"host-{index}"
            job = HostJob(
                index=index,
                script_path=stem.with_suffix(".sh"),
                log_path=stem.with_suffix(".log"),
                sentinel_path=stem.with_suffix(SENTINEL_SUFFIX),
                cache_root=cache_root,
            )
            script = render_job_script(
                campaign=self.spec.name, claim=self.claim,
                host_index=index, host_count=self.hosts,
                python=sys.executable, shared=str(self.shared_root),
                cache_root=str(cache_root),
                env=self._job_env(cache_root), quick=self.quick,
                spec_file=self.spec_file,
                processes=self.processes or 1,
                owner=f"fabric-{self.spec.name}-host-{index}",
                ttl=self.ttl,
                sbatch=(self.backend_name == "slurm"),
                job_name=f"repro-{self.spec.name}-{index}",
                log_path=str(job.log_path),
                time_limit=self.time_limit,
                sentinel=(str(job.sentinel_path)
                          if self.backend_name == "slurm" else None),
            )
            job.script_path.write_text(script)
            job.script_path.chmod(0o755)
            plan.jobs.append(job)
        return plan

    # ------------------------------------------------------------------
    def _status_line(self, status: Dict[str, object],
                     jobs: List[HostJob]) -> str:
        running = sum(1 for job in jobs if job.returncode is None)
        return (
            f"[{self.spec.name}] fleet: {running}/{len(jobs)} job(s) "
            f"running; cells "
            f"{status.get('cells_done', 0)}/{status.get('cells_planned', 0)} "
            f"done, {status.get('cells_pending', 0)} pending"
            + (f", {status['cells_failed']} FAILED"
               if status.get("cells_failed") else "")
        )

    def _poll(self, backend, plan: DispatchPlan) -> None:
        """Watch jobs + shared cell counts until convergence (or failure)."""
        deadline = (time.monotonic() + self.timeout
                    if self.timeout else None)
        last_line = ""
        while True:
            for job in plan.jobs:
                if job.returncode is None:
                    backend.poll(job)
            status = self.store.status()
            line = self._status_line(status, plan.jobs)
            if line != last_line:
                self.progress(line)
                last_line = line
            if all(job.returncode is not None for job in plan.jobs):
                return
            if deadline is not None and time.monotonic() > deadline:
                if hasattr(backend, "terminate"):
                    backend.terminate()
                raise DispatchError(
                    f"dispatch timed out after {self.timeout:g}s with "
                    f"cells {status.get('cells_done', 0)}/"
                    f"{status.get('cells_planned', 0)} done"
                )
            time.sleep(self.poll_seconds)

    def _check_converged(self, plan: DispatchPlan) -> Dict[str, object]:
        status = self.store.status()
        failed_jobs = [job for job in plan.jobs if job.returncode]
        pending = status.get("cells_pending", 0)
        if pending or failed_jobs:
            details = "; ".join(
                f"host-{job.index} exited {job.returncode} "
                f"(log: {job.log_path})" for job in failed_jobs
            ) or "all jobs exited 0"
            raise DispatchError(
                f"fleet finished without converging: "
                f"{status.get('cells_done', 0)}/"
                f"{status.get('cells_planned', 0)} cells done, "
                f"{pending} pending — {details}"
            )
        return status

    # ------------------------------------------------------------------
    def dispatch(self, dry_run: bool = False, no_render: bool = False,
                 out_dir: Optional[str] = None) -> DispatchPlan:
        """The full lifecycle; ``--dry-run`` stops after rendering."""
        plan = self.plan()
        self.progress(
            f"[{self.spec.name}] dispatch plan: {plan.cells_planned} "
            f"cell(s) across {plan.hosts} host(s), "
            f"{plan.claim} claim, {plan.backend} backend"
        )
        for job in plan.jobs:
            self.progress(f"[{self.spec.name}]   host-{job.index}: "
                          f"{job.script_path}")
        if dry_run:
            self.progress(f"[{self.spec.name}] dry run: scripts rendered, "
                          f"nothing submitted")
            return plan
        backend = get_backend(self.backend_name)
        try:
            for job in plan.jobs:
                backend.submit(job)
                self.progress(f"[{self.spec.name}] submitted host-"
                              f"{job.index} as {job.job_id}")
            self._poll(backend, plan)
        finally:
            if hasattr(backend, "terminate"):
                backend.terminate()
        self._check_converged(plan)
        # Merge exactly once, in the shared root — the single render site
        # for a dispatched campaign.
        scheduler = CampaignScheduler(self.spec, quick=self.quick,
                                      store=self.store,
                                      progress=self.progress,
                                      bench_report=False)
        scheduler.finalize()
        if not no_render:
            from repro.campaign.render import render_campaign
            for path in render_campaign(self.spec.name, store=self.store,
                                        out_dir=out_dir):
                self.progress(f"[{self.spec.name}] wrote {path}")
        self._monitor_summary()
        return plan

    def _monitor_summary(self) -> None:
        from repro.campaign.monitor import build_timeline, render_summary
        try:
            timeline = build_timeline(self.store)
        except Exception:   # telemetry is never allowed to fail a dispatch
            return
        summary = render_summary(timeline)
        if summary:
            self.progress(summary.rstrip("\n"))


__all__ = [
    "CLAIM_MODES",
    "DispatchError",
    "DispatchPlan",
    "Dispatcher",
    "FABRIC_DIR",
    "HostJob",
]
