"""Cell-sync transport: move cache cells between hosts' ``.repro_cache/``.

Sharded and worker campaign runs coordinate through one invariant — a cell
is done exactly when its checksummed result sits in a disk cache — so
multi-host execution needs exactly one new primitive: copying cache state
between a host-local root and a *shared* root.  :class:`CacheSync` is that
primitive, in both directions:

``push``
    local ``.repro_cache/`` -> shared root: every (optionally
    campaign-filtered) ``*.pkl`` cell entry plus the campaign's lease,
    failure-record and event-journal state.

``pull``
    shared root -> local ``.repro_cache/``: the same set, so a fresh worker
    host starts warm and sees the fleet's failure/backoff records.

Design contract (the properties the dispatcher and CI lean on):

* **content-keyed and idempotent** — entry filenames are salted content
  fingerprints, so an entry that already exists at the destination is
  complete and byte-identical by construction and is skipped; re-running a
  sync is free;
* **batched** — entries move in sorted fixed-size batches (HTCondor's
  high-throughput data-movement shape: few large transfer operations, not
  one per cell), and the :class:`SyncReport` counts batches so operators
  see the transfer shape;
* **torn-transfer-safe** — every entry is verified against its RPRC1
  checksum frame (:func:`repro.experiments.cache.decode_entry`) *before*
  install, installs go through fsync-before-rename
  (:func:`repro.util.durability.atomic_write_bytes`), and a corrupt source
  entry is quarantined on its own side, never propagated — a half-copied
  entry can cost a re-simulation, never a wrong result;
* **state merges monotonically** — journals are append-only (copy when the
  source is strictly longer), failure records advance by attempt count,
  leases copy only when absent (a lease is host-advisory; stale ones die by
  TTL anywhere).

Targets come in two flavours: :class:`DirectoryTarget` (a shared/NFS/
artifact-synced directory — what CI and the tests use) and
:class:`RsyncTarget` (an ``rsync``-style ``host:/path`` remote; batches
become ``rsync`` invocations, and pulled entries are verified locally after
landing).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.experiments.cache import (
    CACHE_DIR_ENV, DEFAULT_CACHE_DIR, QUARANTINE_DIR, decode_entry,
    salted_key,
)
from repro.util.durability import atomic_write_bytes

#: Cell entries move in sorted batches of this many files by default.
DEFAULT_BATCH_SIZE = 64

#: Cache-entry glob (the disk cache's on-disk naming scheme).
ENTRY_GLOB = "*.pkl"

#: Campaign state directories replicated alongside the cell entries.
#: ``events`` journals are append-only, ``failures`` advance by attempt
#: count, ``leases`` copy only when absent.
STATE_DIRS = ("events", "failures", "leases")


class SyncError(RuntimeError):
    """A sync request that cannot be satisfied (bad target, self-sync)."""


@dataclass
class SyncReport:
    """What one push/pull moved, skipped and refused."""

    direction: str
    entries_total: int = 0
    entries_copied: int = 0
    entries_skipped: int = 0
    entries_corrupt: int = 0
    batches: int = 0
    state_copied: int = 0
    state_skipped: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "direction": self.direction,
            "entries_total": self.entries_total,
            "entries_copied": self.entries_copied,
            "entries_skipped": self.entries_skipped,
            "entries_corrupt": self.entries_corrupt,
            "batches": self.batches,
            "state_copied": self.state_copied,
            "state_skipped": self.state_skipped,
        }

    def summary(self) -> str:
        return (
            f"{self.direction}: {self.entries_copied} cell(s) copied "
            f"in {self.batches} batch(es), {self.entries_skipped} already "
            f"present, {self.entries_corrupt} corrupt refused; "
            f"state files {self.state_copied} copied / "
            f"{self.state_skipped} unchanged"
        )


# ---------------------------------------------------------------------------
# targets
# ---------------------------------------------------------------------------
class DirectoryTarget:
    """A shared root that is a plain directory (NFS mount, synced folder)."""

    scheme = "dir"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    def describe(self) -> str:
        return str(self.root)

    # -- generic relative-path file ops ---------------------------------
    def list_files(self, rel_dir: str, pattern: str) -> List[str]:
        directory = self.root / rel_dir if rel_dir else self.root
        if not directory.is_dir():
            return []
        return sorted(p.name for p in directory.glob(pattern) if p.is_file())

    def read(self, rel: str) -> Optional[bytes]:
        try:
            return (self.root / rel).read_bytes()
        except OSError:
            return None

    def write(self, rel: str, data: bytes) -> None:
        atomic_write_bytes(self.root / rel, data)

    def exists(self, rel: str) -> bool:
        return (self.root / rel).exists()

    def size(self, rel: str) -> int:
        try:
            return (self.root / rel).stat().st_size
        except OSError:
            return -1

    def quarantine_entry(self, name: str) -> None:
        """Move a corrupt shared-side cell entry aside (never delete), so it
        stops failing verification on every subsequent pull."""
        path = self.root / name
        try:
            quarantine = self.root / QUARANTINE_DIR
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            pass


class RsyncTarget:
    """An rsync-style shared root: ``host:/path`` or ``rsync://host/path``.

    Batches become single ``rsync`` invocations (``--files-from`` keeps one
    process per batch, not per cell).  Verification stays local: entries are
    checksum-checked before a push and after a pull — a torn remote transfer
    therefore lands as a quarantined local file, never as a trusted cell.
    """

    scheme = "rsync"

    def __init__(self, remote: str, rsync: str = "rsync") -> None:
        self.remote = remote.rstrip("/")
        self.rsync = rsync

    def describe(self) -> str:
        return self.remote

    def _run(self, args: Sequence[str]) -> None:
        result = subprocess.run(list(args), capture_output=True, text=True)
        if result.returncode != 0:
            raise SyncError(
                f"rsync failed ({result.returncode}): "
                f"{result.stderr.strip() or result.stdout.strip()}"
            )

    def push_files(self, local_root: Path, rel_paths: Sequence[str],
                   ignore_existing: bool) -> None:
        """One batched rsync of ``rel_paths`` from ``local_root`` upward."""
        import tempfile

        if not rel_paths:
            return
        with tempfile.NamedTemporaryFile("w", suffix=".list",
                                         delete=False) as listing:
            listing.write("\n".join(rel_paths) + "\n")
            name = listing.name
        try:
            args = [self.rsync, "-a", "--relative",
                    f"--files-from={name}"]
            if ignore_existing:
                args.append("--ignore-existing")
            args += [str(local_root) + "/", self.remote + "/"]
            self._run(args)
        finally:
            try:
                os.unlink(name)
            except OSError:
                pass

    def pull_tree(self, local_root: Path, rel_dirs: Sequence[str]) -> None:
        """Pull entry files and state subtrees in one recursive rsync.

        ``--update`` keeps the monotonic-state contract approximately
        (newer wins); entry trust still comes from the post-landing
        checksum verification, never from rsync itself.
        """
        local_root.mkdir(parents=True, exist_ok=True)
        sources = [f"{self.remote}/{rel}" if rel else f"{self.remote}/"
                   for rel in rel_dirs]
        self._run([self.rsync, "-a", "--update", *sources,
                   str(local_root) + "/"])


Target = Union[DirectoryTarget, RsyncTarget]

#: ``host:/path`` (not a drive letter or a bare path) means rsync.
_REMOTE_SPEC = re.compile(r"^[A-Za-z0-9_.@-]+:")


def parse_target(text: Union[str, os.PathLike, Target]) -> Target:
    """A sync target from its CLI spelling: remote specs go to rsync,
    everything else is a directory."""
    if isinstance(text, (DirectoryTarget, RsyncTarget)):
        return text
    spec = str(text)
    if spec.startswith("rsync://") or _REMOTE_SPEC.match(spec):
        return RsyncTarget(spec)
    return DirectoryTarget(spec)


# ---------------------------------------------------------------------------
# the transport
# ---------------------------------------------------------------------------
def _chunked(items: Sequence[str], size: int) -> Iterable[Sequence[str]]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


class CacheSync:
    """Push/pull cache cells + campaign state between a local root and a
    shared target (see the module docstring for the full contract)."""

    def __init__(self, local_root: Optional[Union[str, os.PathLike]] = None,
                 target: Union[str, os.PathLike, Target] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if target is None:
            raise SyncError("a sync target (shared root) is required")
        self.local_root = Path(
            local_root
            or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        )
        self.target = parse_target(target)
        if batch_size < 1:
            raise SyncError(f"batch size must be >= 1 (got {batch_size})")
        self.batch_size = batch_size
        if (isinstance(self.target, DirectoryTarget)
                and self.target.root.resolve() == self.local_root.resolve()):
            raise SyncError(
                f"sync target {self.target.describe()} is the local cache "
                f"root itself — nothing to move"
            )

    # ------------------------------------------------------------------
    # campaign cell selection
    # ------------------------------------------------------------------
    def _campaign_dir(self, campaign: str) -> str:
        return f"campaigns/{campaign}"

    def _manifest_cells(self, campaign: str) -> Optional[Set[str]]:
        """The campaign's planned cell keys as on-disk entry names, from the
        local manifest or (directory targets) the shared one; ``None`` when
        neither side has a manifest yet (sync then moves every entry)."""
        rel = f"{self._campaign_dir(campaign)}/manifest.json"
        raw: Optional[bytes] = None
        try:
            raw = (self.local_root / rel).read_bytes()
        except OSError:
            if isinstance(self.target, DirectoryTarget):
                raw = self.target.read(rel)
        if raw is None:
            return None
        try:
            manifest = json.loads(raw.decode("utf-8"))
            cells = manifest.get("cells", {})
        except (ValueError, AttributeError):
            return None
        if not isinstance(cells, dict) or not cells:
            return None
        return {f"{salted_key(key)}.pkl" for key in cells}

    def _select(self, names: Iterable[str],
                campaign: Optional[str]) -> List[str]:
        names = sorted(set(names))
        if campaign is None:
            return names
        wanted = self._manifest_cells(campaign)
        if wanted is None:
            return names
        return [name for name in names if name in wanted]

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------
    def push(self, campaign: Optional[str] = None) -> SyncReport:
        """Local -> shared: cells first (batched), then campaign state."""
        report = SyncReport("push")
        local_names = []
        if self.local_root.is_dir():
            local_names = [p.name for p in self.local_root.glob(ENTRY_GLOB)
                           if p.is_file()]
        names = self._select(local_names, campaign)
        report.entries_total = len(names)
        if isinstance(self.target, RsyncTarget):
            self._push_entries_rsync(names, report)
        else:
            self._push_entries_directory(names, report)
        if campaign is not None:
            self._sync_state_out(campaign, report)
        return report

    def _verify_local(self, name: str, report: SyncReport) -> Optional[bytes]:
        """The verified bytes of a local entry, quarantining corrupt ones."""
        try:
            data = (self.local_root / name).read_bytes()
        except OSError:
            return None
        if decode_entry(data) is None:
            # Never propagate a torn/bit-rotted entry: quarantine it where
            # it lives (same contract as the disk cache's read path).
            DirectoryTarget(self.local_root).quarantine_entry(name)
            report.entries_corrupt += 1
            return None
        return data

    def _push_entries_directory(self, names: Sequence[str],
                                report: SyncReport) -> None:
        for batch in _chunked(list(names), self.batch_size):
            report.batches += 1
            for name in batch:
                if self.target.exists(name):
                    report.entries_skipped += 1
                    continue
                data = self._verify_local(name, report)
                if data is None:
                    continue
                self.target.write(name, data)
                report.entries_copied += 1

    def _push_entries_rsync(self, names: Sequence[str],
                            report: SyncReport) -> None:
        for batch in _chunked(list(names), self.batch_size):
            good = [name for name in batch
                    if self._verify_local(name, report) is not None]
            if not good:
                continue
            report.batches += 1
            self.target.push_files(self.local_root, good,
                                   ignore_existing=True)
            # --ignore-existing makes re-pushes idempotent; without remote
            # stat access the copied/skipped split is unknowable, so count
            # the batch members as copied (an upper bound).
            report.entries_copied += len(good)

    # ------------------------------------------------------------------
    # pull
    # ------------------------------------------------------------------
    def pull(self, campaign: Optional[str] = None) -> SyncReport:
        """Shared -> local: cells first (batched, verified), then state."""
        report = SyncReport("pull")
        if isinstance(self.target, RsyncTarget):
            self._pull_rsync(campaign, report)
            return report
        names = self._select(self.target.list_files("", ENTRY_GLOB), campaign)
        report.entries_total = len(names)
        for batch in _chunked(names, self.batch_size):
            report.batches += 1
            for name in batch:
                if (self.local_root / name).exists():
                    report.entries_skipped += 1
                    continue
                data = self.target.read(name)
                if data is None:
                    continue
                if decode_entry(data) is None:
                    # Half-copied or rotten on the shared side: quarantine
                    # it there so it stops haunting every pull; the cell
                    # simply re-simulates locally.
                    self.target.quarantine_entry(name)
                    report.entries_corrupt += 1
                    continue
                atomic_write_bytes(self.local_root / name, data)
                report.entries_copied += 1
        if campaign is not None:
            self._sync_state_in(campaign, report)
        return report

    def _pull_rsync(self, campaign: Optional[str],
                    report: SyncReport) -> None:
        rel_dirs: List[str] = [""]
        if campaign is not None:
            rel_dirs += [f"{self._campaign_dir(campaign)}/{sub}"
                         for sub in STATE_DIRS]
        self.target.pull_tree(self.local_root, rel_dirs)
        report.batches += 1
        # Post-landing verification: anything torn in transit fails its
        # checksum frame here and is quarantined locally before any reader
        # could trust it.
        for path in sorted(self.local_root.glob(ENTRY_GLOB)):
            report.entries_total += 1
            try:
                data = path.read_bytes()
            except OSError:
                continue
            if decode_entry(data) is None:
                DirectoryTarget(self.local_root).quarantine_entry(path.name)
                report.entries_corrupt += 1
            else:
                report.entries_copied += 1

    # ------------------------------------------------------------------
    # campaign state (events / failures / leases)
    # ------------------------------------------------------------------
    def _sync_state_out(self, campaign: str, report: SyncReport) -> None:
        if isinstance(self.target, RsyncTarget):
            rels: List[str] = []
            base = Path(self._campaign_dir(campaign))
            for sub in STATE_DIRS:
                directory = self.local_root / base / sub
                if directory.is_dir():
                    rels += [str(base / sub / p.name)
                             for p in sorted(directory.iterdir())
                             if p.is_file()]
            if rels:
                self.target.push_files(self.local_root, rels,
                                       ignore_existing=False)
                report.state_copied += len(rels)
            return
        local = _StateSide.local(self.local_root, self._campaign_dir(campaign))
        shared = _StateSide.target(self.target, self._campaign_dir(campaign))
        _merge_state(local, shared, report)

    def _sync_state_in(self, campaign: str, report: SyncReport) -> None:
        local = _StateSide.local(self.local_root, self._campaign_dir(campaign))
        shared = _StateSide.target(self.target, self._campaign_dir(campaign))
        _merge_state(shared, local, report)


# ---------------------------------------------------------------------------
# state-merge plumbing (one code path for both directions)
# ---------------------------------------------------------------------------
@dataclass
class _StateSide:
    """Read/write adapter over one side's ``campaigns/<name>/`` directory."""

    reader: object
    base: str
    writes_local: bool = False
    local_root: Optional[Path] = None

    @classmethod
    def local(cls, root: Path, base: str) -> "_StateSide":
        return cls(reader=DirectoryTarget(root), base=base,
                   writes_local=True, local_root=root)

    @classmethod
    def target(cls, target: DirectoryTarget, base: str) -> "_StateSide":
        return cls(reader=target, base=base)

    def list(self, sub: str, pattern: str) -> List[str]:
        return self.reader.list_files(f"{self.base}/{sub}", pattern)

    def read(self, sub: str, name: str) -> Optional[bytes]:
        return self.reader.read(f"{self.base}/{sub}/{name}")

    def size(self, sub: str, name: str) -> int:
        return self.reader.size(f"{self.base}/{sub}/{name}")

    def exists(self, sub: str, name: str) -> bool:
        return self.reader.exists(f"{self.base}/{sub}/{name}")

    def write(self, sub: str, name: str, data: bytes) -> None:
        self.reader.write(f"{self.base}/{sub}/{name}", data)


def _failure_attempts(data: Optional[bytes]) -> int:
    if data is None:
        return -1
    try:
        record = json.loads(data.decode("utf-8"))
        return int(record.get("attempts", 0))
    except (ValueError, AttributeError, TypeError):
        return -1


def _merge_state(src: _StateSide, dst: _StateSide,
                 report: SyncReport) -> None:
    """Monotonic one-way state merge (see module docstring for the rules)."""
    # events: append-only journals — copy when strictly longer at the source.
    for name in src.list("events", "*.jsonl"):
        if dst.exists("events", name) and (
                src.size("events", name) <= dst.size("events", name)):
            report.state_skipped += 1
            continue
        data = src.read("events", name)
        if data is not None:
            dst.write("events", name, data)
            report.state_copied += 1
    # failures: a record advances by attempt count (retry/poison state rides
    # along); equal-or-lower attempt counts never overwrite.
    for name in src.list("failures", "*.json"):
        src_data = src.read("failures", name)
        if src_data is None:
            continue
        if (_failure_attempts(src_data)
                <= _failure_attempts(dst.read("failures", name))):
            report.state_skipped += 1
            continue
        dst.write("failures", name, src_data)
        report.state_copied += 1
    # leases: advisory work claims — copy only when absent (TTL expiry
    # handles staleness on whichever host observes them).
    for name in src.list("leases", "*.json"):
        if dst.exists("leases", name):
            report.state_skipped += 1
            continue
        data = src.read("leases", name)
        if data is not None:
            dst.write("leases", name, data)
            report.state_copied += 1


__all__ = [
    "CacheSync",
    "DEFAULT_BATCH_SIZE",
    "DirectoryTarget",
    "RsyncTarget",
    "STATE_DIRS",
    "SyncError",
    "SyncReport",
    "parse_target",
]
