"""Declarative campaign specifications.

A :class:`CampaignSpec` describes one evaluation campaign as data:
experiment module x workloads x configuration variants x trace windows.
Specs are plain frozen dataclasses with a dict/JSON form, so they can be
registered in code (every experiment module ships one), printed by the CLI,
stored in campaign manifests, or written by hand for custom sweeps.

A :class:`ConfigVariant` names one simulation configuration of the campaign
matrix.  Variants are *declarative* — prefetcher preset, core overrides and
DLA optimization toggles — and are materialised against the runner's base
:class:`~repro.core.config.SystemConfig` at schedule time, so the resulting
content fingerprints are identical to the ones the figure modules produce
when they build the same configurations imperatively.  That identity is what
makes campaign cells, figure reruns and the benchmark suite all share one
result cache.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.dla.config import DlaConfig

#: Valid simulation kinds of a variant (mirrors SimRequest kinds).
VARIANT_KINDS = ("baseline", "dla", "segmented")
#: Valid prefetcher presets.
PREFETCH_PRESETS = ("default", "none", "l1stride")
#: Valid DLA presets.
DLA_PRESETS = ("dla", "r3")


class SpecError(ValueError):
    """A campaign spec failed validation."""


@dataclass(frozen=True)
class ConfigVariant:
    """One named configuration of a campaign's simulation matrix."""

    name: str
    kind: str = "baseline"
    #: Prefetcher preset applied to the runner's base system config.
    prefetch: str = "default"
    #: ``SystemConfig.with_overrides`` keyword overrides (core fields).
    core_overrides: Mapping[str, object] = field(default_factory=dict)
    #: DLA preset ("dla" = baseline DLA, "r3" = all optimizations)...
    dla_preset: Optional[str] = None
    #: ...or explicit ``DlaConfig.with_optimizations`` toggles.
    dla_optimizations: Mapping[str, bool] = field(default_factory=dict)
    #: Segmented variants only: on-line (dynamic) vs off-line tuning.
    dynamic: bool = False
    #: MSHR-file capacity applied uniformly to every cache level via
    #: ``SystemConfig.with_mshr_entries``: ``None`` leaves the base config
    #: untouched, a positive integer caps outstanding misses per level, and
    #: ``0`` means *unbounded* (infinite memory-level parallelism).
    mshr_entries: Optional[int] = None
    #: MSHR banking applied uniformly via ``SystemConfig.with_mshr_banks``:
    #: ``None`` leaves the base config untouched, ``0``/``1`` forces the
    #: single un-banked file, ``>= 2`` interleaves the file over that many
    #: address banks (bank-conflict stalls counted separately).
    mshr_banks: Optional[int] = None
    #: Victim write-buffer depth per write-allocating level via
    #: ``SystemConfig.with_write_buffer``: ``None`` leaves the base config
    #: untouched, ``0`` removes the buffers (instant drain), a positive
    #: integer bounds in-flight writebacks per level.
    write_buffer_entries: Optional[int] = None
    #: DRAM controller read/write queue depth per bank group via
    #: ``SystemConfig.with_dram_queue``: ``None`` leaves the base config
    #: untouched, ``0`` means unbounded (no queue model), a positive integer
    #: bounds in-flight transfers per queue.
    dram_queue_depth: Optional[int] = None

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise SpecError("variant needs a name")
        if self.kind not in VARIANT_KINDS:
            raise SpecError(f"variant {self.name!r}: unknown kind {self.kind!r}")
        if self.prefetch not in PREFETCH_PRESETS:
            raise SpecError(
                f"variant {self.name!r}: unknown prefetch preset {self.prefetch!r}"
            )
        if self.dla_preset is not None and self.dla_preset not in DLA_PRESETS:
            raise SpecError(
                f"variant {self.name!r}: unknown dla preset {self.dla_preset!r}"
            )
        if self.dla_preset and self.dla_optimizations:
            raise SpecError(
                f"variant {self.name!r}: dla_preset and dla_optimizations "
                "are mutually exclusive"
            )
        if self.kind == "baseline" and (self.dla_preset or self.dla_optimizations):
            raise SpecError(
                f"variant {self.name!r}: baseline variants take no DLA config"
            )
        if self.kind != "segmented" and self.dynamic:
            raise SpecError(
                f"variant {self.name!r}: dynamic tuning is a segmented-only knob"
            )
        self._check_knob("mshr_entries", "0 = unbounded")
        self._check_knob("mshr_banks", "0/1 = un-banked")
        self._check_knob("write_buffer_entries", "0 = no buffer")
        self._check_knob("dram_queue_depth", "0 = unbounded")

    def _check_knob(self, name: str, zero_meaning: str) -> None:
        value = getattr(self, name)
        if value is not None and (
            not isinstance(value, int)
            or isinstance(value, bool)   # bool subclasses int
            or value < 0
        ):
            raise SpecError(
                f"variant {self.name!r}: {name} must be a non-negative "
                f"integer ({zero_meaning}) or None"
            )

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def system_config(self, base: SystemConfig) -> Optional[SystemConfig]:
        """The concrete system config, or ``None`` for "the runner default".

        Returning ``None`` for the untouched default matters: figures pass
        ``config=None`` for the default too, and both spellings must map to
        one fingerprint-keyed cache slot.
        """
        if (
            self.prefetch == "default"
            and not self.core_overrides
            and self.mshr_entries is None
            and self.mshr_banks is None
            and self.write_buffer_entries is None
            and self.dram_queue_depth is None
        ):
            return None
        config = base
        if self.prefetch == "none":
            config = config.without_prefetchers()
        elif self.prefetch == "l1stride":
            config = config.with_l1_stride()
        if self.core_overrides:
            config = config.with_overrides(**dict(self.core_overrides))
        if self.mshr_entries is not None:
            config = config.with_mshr_entries(
                None if self.mshr_entries == 0 else self.mshr_entries
            )
        if self.mshr_banks is not None:
            config = config.with_mshr_banks(
                None if self.mshr_banks in (0, 1) else self.mshr_banks
            )
        if self.write_buffer_entries is not None:
            config = config.with_write_buffer(
                None if self.write_buffer_entries == 0 else self.write_buffer_entries
            )
        if self.dram_queue_depth is not None:
            config = config.with_dram_queue(
                None if self.dram_queue_depth == 0 else self.dram_queue_depth
            )
        return config

    def dla_config(self) -> Optional[DlaConfig]:
        """The concrete DLA config for dla/segmented variants."""
        if self.kind == "baseline":
            return None
        if self.dla_preset == "r3":
            return DlaConfig().r3()
        if self.dla_preset == "dla":
            return DlaConfig().baseline_dla()
        return DlaConfig().with_optimizations(**dict(self.dla_optimizations))

    # ------------------------------------------------------------------
    # dict / JSON form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["core_overrides"] = dict(self.core_overrides)
        out["dla_optimizations"] = dict(self.dla_optimizations)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConfigVariant":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown variant fields: {sorted(unknown)}")
        variant = cls(**data)  # type: ignore[arg-type]
        variant.validate()
        return variant


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: experiment x workloads x variants x window."""

    name: str
    title: str
    #: Dotted module path providing ``run(runner)`` and ``artifact_tables``.
    experiment: str
    description: str = ""
    #: Workload selection: ``None`` means the runner default (quick subset or
    #: every workload); entries may be workload names, ``"suite:<name>"`` or
    #: ``"scenario:<name>"`` references (expanded in order, de-duplicated).
    workloads: Optional[Tuple[str, ...]] = None
    variants: Tuple[ConfigVariant, ...] = ()
    #: Window overrides; ``None`` means the runner's quick/full default.
    warmup_instructions: Optional[int] = None
    timed_instructions: Optional[int] = None
    #: In quick mode, only the first N resolved workloads get matrix cells
    #: (mirrors figures that sub-sample in quick mode, e.g. Fig. 15).
    max_cell_workloads_quick: Optional[int] = None
    tags: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise SpecError("campaign needs a name")
        if not self.experiment:
            raise SpecError(f"campaign {self.name!r}: experiment module required")
        seen = set()
        for variant in self.variants:
            variant.validate()
            if variant.name in seen:
                raise SpecError(
                    f"campaign {self.name!r}: duplicate variant {variant.name!r}"
                )
            seen.add(variant.name)
        for window in (self.warmup_instructions, self.timed_instructions):
            if window is not None and window <= 0:
                raise SpecError(f"campaign {self.name!r}: windows must be positive")
        if self.workloads is not None:
            self.resolve_workloads()   # raises on unknown references

    # ------------------------------------------------------------------
    def resolve_workloads(self) -> Optional[List[str]]:
        """Expand suite:/scenario: references into a workload-name list.

        Returns ``None`` when the spec defers to the runner default.
        """
        if self.workloads is None:
            return None
        from repro.workloads.suites import (
            SCENARIOS, SUITES, get_workload, scenario_workloads, suite_workloads,
        )

        names: List[str] = []
        for entry in self.workloads:
            if entry.startswith("suite:"):
                suite = entry.split(":", 1)[1]
                if suite not in SUITES:
                    raise SpecError(
                        f"campaign {self.name!r}: unknown suite {suite!r}"
                    )
                expanded = [w.name for w in suite_workloads(suite)]
            elif entry.startswith("scenario:"):
                scenario = entry.split(":", 1)[1]
                if scenario not in SCENARIOS:
                    raise SpecError(
                        f"campaign {self.name!r}: unknown scenario {scenario!r}"
                    )
                expanded = scenario_workloads(scenario)
            else:
                try:
                    get_workload(entry)
                except KeyError:
                    raise SpecError(
                        f"campaign {self.name!r}: unknown workload {entry!r}"
                    ) from None
                expanded = [entry]
            for name in expanded:
                if name not in names:
                    names.append(name)
        return names

    def with_window(self, warmup: Optional[int], timed: Optional[int]) -> "CampaignSpec":
        return replace(self, warmup_instructions=warmup, timed_instructions=timed)

    # ------------------------------------------------------------------
    # dict / JSON form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "experiment": self.experiment,
            "description": self.description,
            "workloads": list(self.workloads) if self.workloads is not None else None,
            "variants": [variant.to_dict() for variant in self.variants],
            "warmup_instructions": self.warmup_instructions,
            "timed_instructions": self.timed_instructions,
            "max_cell_workloads_quick": self.max_cell_workloads_quick,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown campaign fields: {sorted(unknown)}")
        payload = dict(data)
        if payload.get("workloads") is not None:
            payload["workloads"] = tuple(payload["workloads"])
        payload["variants"] = tuple(
            v if isinstance(v, ConfigVariant) else ConfigVariant.from_dict(v)
            for v in payload.get("variants", ())
        )
        payload["tags"] = tuple(payload.get("tags", ()))
        spec = cls(**payload)  # type: ignore[arg-type]
        spec.validate()
        return spec

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Content fingerprint of the spec (keys campaign manifests)."""
        from repro.experiments.fingerprint import fingerprint

        return fingerprint(self.to_dict())


def variants(*specs: Mapping[str, object]) -> Tuple[ConfigVariant, ...]:
    """Shorthand used by the experiment modules' spec registrations."""
    built = tuple(ConfigVariant(**spec) for spec in specs)  # type: ignore[arg-type]
    for variant in built:
        variant.validate()
    return built
