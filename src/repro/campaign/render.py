"""Artifact rendering: stored campaign results -> CSV/JSON/Markdown files.

Renderers read the campaign store (they never simulate) and write under
``artifacts/<campaign>/``:

* one ``<table>.csv`` per structured table, full-precision values;
* ``<campaign>.md`` — provenance, every table in Markdown form (same float
  formatting as the figure modules' plain-text tables), and the experiment
  module's rendered text **verbatim**, so the Markdown artifact shows
  bit-for-bit the numbers a direct ``python -m repro.experiments.<module>``
  run prints;
* ``<campaign>.json`` — the structured payload for downstream tooling.

Artifacts are **deterministic**: volatile run metadata (timestamps, wall
times, simulated-vs-cached counters) stays in the campaign store's
``result.json`` and never reaches the rendered files.  That is what lets a
sharded run (``repro run --shard``/``--worker`` + ``repro merge``) produce
artifacts byte-identical to a single-host ``repro run`` — and lets CI diff
them.  Run provenance is available via ``repro status --json``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.reporting import format_markdown_table
from repro.campaign.store import CampaignStore

DEFAULT_ARTIFACTS_DIR = "artifacts"


class RenderError(RuntimeError):
    """Rendering was requested for a campaign with no stored result."""


def _columns(rows: Sequence[Mapping[str, object]]) -> List[str]:
    """First-row key order, extended by any keys later rows introduce."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _csv_value(value: object) -> object:
    # repr keeps full float precision (round-trippable); csv handles the rest.
    if isinstance(value, float):
        return repr(value)
    return value


def write_csv(path: Path, rows: Sequence[Mapping[str, object]]) -> Path:
    columns = _columns(rows)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: _csv_value(row.get(col, "")) for col in columns})
    return path


#: Result keys that vary run-to-run (timestamps, wall times, hit counters).
#: They stay in the store's ``result.json``; rendered artifacts exclude them
#: so single-host and sharded executions produce byte-identical files.
VOLATILE_RESULT_KEYS = ("generated_at", "run")


def deterministic_result(result: Mapping[str, object]) -> Dict[str, object]:
    """``result`` without its volatile (run-provenance) keys."""
    return {
        key: value for key, value in result.items()
        if key not in VOLATILE_RESULT_KEYS
    }


def render_markdown(result: Mapping[str, object]) -> str:
    """The Markdown artifact body for one stored campaign result.

    Only content-determined fields appear — see :data:`VOLATILE_RESULT_KEYS`.
    """
    lines: List[str] = [f"# {result.get('title') or result.get('campaign')}", ""]
    description = result.get("description")
    if description:
        lines += [str(description), ""]
    cells = result.get("cells")
    if cells is None:
        # Results stored before the "cells" field carried the count only in
        # the (volatile) run summary.
        cells = (result.get("run") or {}).get("cells_total", 0)
    lines += [
        f"- campaign: `{result.get('campaign')}`",
        f"- experiment: `{result.get('experiment')}`",
        f"- mode: {result.get('mode')}",
        f"- spec fingerprint: `{result.get('spec_fingerprint')}`",
        f"- cells: {cells}",
        "",
    ]
    health = result.get("health")
    if health:
        # Degraded campaigns carry their failure roster into the artifact —
        # a partial result that *says* it is partial beats a missing one.
        lines += [f"## health: {health.get('state', 'degraded').upper()}", ""]
        for entry in health.get("failed", []):
            lines.append(
                f"- `{entry.get('workload')}/{entry.get('variant')}` "
                f"(`{entry.get('key')}`): {entry.get('error_type')}: "
                f"{entry.get('message')} "
                f"[attempts: {entry.get('attempts')}, "
                f"digest: {entry.get('traceback_digest')}]"
            )
        lines.append("")
    tables = result.get("tables") or {}
    for name, rows in tables.items():
        lines += [f"## {name}", "", format_markdown_table(rows), ""]
    text = result.get("text")
    if text:
        lines += ["## rendered output", "", "```", str(text), "```", ""]
    return "\n".join(lines)


def render_campaign(
    name: str,
    store: Optional[CampaignStore] = None,
    out_dir: Optional[str] = None,
    campaigns_dir: Optional[str] = None,
) -> List[Path]:
    """Write every artifact for ``name``; returns the created paths.

    ``campaigns_dir`` overrides the campaigns directory itself (the default
    is ``<cache dir>/campaigns`` — see :func:`~repro.campaign.store.campaigns_root`).
    """
    store = store or CampaignStore(name, campaigns_dir)
    result = store.load_result()
    if result is None:
        raise RenderError(
            f"campaign {name!r} has no stored result — run `repro run {name}` first"
        )
    out = Path(out_dir or DEFAULT_ARTIFACTS_DIR) / name
    out.mkdir(parents=True, exist_ok=True)

    written: List[Path] = []
    tables: Dict[str, List[Mapping[str, object]]] = result.get("tables") or {}
    for table_name, rows in tables.items():
        if rows:
            written.append(write_csv(out / f"{table_name}.csv", rows))
    health = result.get("health")
    if health and health.get("failed"):
        # Degraded campaigns surface their failure roster in every format:
        # the Markdown health block, the JSON ``health`` key, and this CSV.
        # Healthy runs never write it, so fault-free artifacts are unchanged
        # byte for byte.
        written.append(write_csv(out / "health.csv", health["failed"]))
    markdown = out / f"{name}.md"
    markdown.write_text(render_markdown(result) + "\n")
    written.append(markdown)
    payload = out / f"{name}.json"
    # No key sorting: table rows keep their experiment module's column order.
    # Volatile run metadata is stripped so the file is deterministic.
    payload.write_text(json.dumps(deterministic_result(result), indent=2) + "\n")
    written.append(payload)
    return written
