"""Campaign timeline aggregation and fleet anomaly detection.

The read side of the telemetry spine (:mod:`repro.campaign.telemetry`):
merge every owner journal of a campaign into one :func:`build_timeline`
roll-up — per-worker and per-campaign throughput, cell-latency distribution
(p50/p90/max via :mod:`repro.util.stats_math`), lease churn, retry and
quarantine counts, contention stall share per cell — then run deterministic
anomaly detectors over it:

``worker_slow``
    a worker whose instructions/s fell below a configurable fraction of the
    fleet median (MPCDF-style per-node visibility: one sick node hides
    inside an aggregate, never inside a per-worker roll-up);
``cell_latency_outlier`` / ``cell_stall_outlier``
    a cell whose simulation wall time or contention stall share is a
    robust-z outlier (Iglewicz–Hoaglin modified z-score, double-gated with
    an absolute margin so tiny homogeneous fleets never flag noise);
``lease_storm``
    leases being reclaimed repeatedly — workers dying faster than they
    finish cells;
``retry_hotspot``
    a cell burning multiple attempts (transient faults clustering);
``cell_poisoned`` / ``worker_lost``
    a cell that exhausted its retry budget, and a worker that started and
    claimed cells but never wrote ``worker.stopped`` before the campaign
    converged (killed mid-cell — its journal survives it).

Every detector is a pure function of journal contents and store state, so
the same journals always yield the same anomaly list.  Rendering
(`repro monitor --summary`) is plain ASCII; ``--json`` emits the timeline
verbatim for machine consumers (the future fabric dispatcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.store import CampaignStore
from repro.campaign.telemetry import event_counts, load_events
from repro.util.stats_math import median, percentile, robust_zscores

#: ASCII sparkline levels, lowest to highest (no unicode in dashboards).
SPARK_LEVELS = " .:-=+*#%@"

#: Campaign states in which a started-but-never-stopped worker is dead
#: rather than merely busy.
_SETTLED_STATES = ("complete", "degraded")


@dataclass(frozen=True)
class AnomalyThresholds:
    """Tunable gates for the anomaly detectors (defaults are conservative).

    The statistical detectors are *double-gated*: a value must be both a
    robust-z outlier and beyond an absolute margin of the median.  The
    z-score alone misfires on small homogeneous fleets (with near-zero MAD
    a hair of jitter scores arbitrarily high); the margin alone misfires on
    genuinely wide distributions.  Together they only flag values that are
    extreme by both yardsticks.
    """

    #: Flag a worker whose inst/s is below this fraction of the fleet median.
    worker_fraction: float = 0.5
    #: Modified z-score gate for cell latency / stall-share outliers.
    robust_z: float = 3.5
    #: ...and the latency must also be at least this multiple of the median.
    latency_factor: float = 3.0
    #: ...and the stall share must also exceed the median by this margin.
    stall_margin: float = 0.2
    #: Lease reclaims at or above this count are a storm.
    lease_storm: int = 3
    #: A cell at or above this many attempts is a retry hotspot.
    retry_hotspot: int = 2
    #: Statistical detectors need at least this many samples.
    min_samples: int = 4


def _anomaly(kind: str, subject: str, detail: str) -> Dict[str, str]:
    return {"kind": kind, "subject": subject, "detail": detail}


def _worker_rollups(events: List[Dict[str, object]]) -> Dict[str, Dict[str, object]]:
    workers: Dict[str, Dict[str, object]] = {}
    for record in events:
        owner = str(record.get("owner", ""))
        roll = workers.setdefault(owner, {
            "events": 0, "claims": 0, "finished": 0, "failed": 0,
            "instructions": 0, "sim_seconds": 0.0,
            "inst_per_second": 0.0, "started": False, "stopped": False,
        })
        roll["events"] += 1
        name = record.get("event")
        if name == "worker.started":
            roll["started"] = True
            roll["mode"] = record.get("mode")
        elif name == "worker.stopped":
            roll["stopped"] = True
            # The run-summary measures on the stop event are authoritative
            # for this owner (exact wall time over every cell it simulated).
            ips = record.get("instructions_per_second")
            if isinstance(ips, (int, float)) and ips > 0:
                roll["inst_per_second"] = float(ips)
        elif name == "cell.claimed":
            roll["claims"] += 1
        elif name == "cell.finished":
            roll["finished"] += 1
            roll["instructions"] += int(record.get("instructions", 0) or 0)
            roll["sim_seconds"] += float(record.get("sim_seconds", 0.0) or 0.0)
        elif name == "cell.failed":
            roll["failed"] += 1
    for roll in workers.values():
        # Fallback inst/s from the per-cell measures when the worker never
        # stopped cleanly (killed) or predates the stop-event summary.
        if not roll["inst_per_second"] and roll["sim_seconds"] > 0:
            roll["inst_per_second"] = roll["instructions"] / roll["sim_seconds"]
        roll["inst_per_second"] = round(roll["inst_per_second"], 1)
        roll["sim_seconds"] = round(roll["sim_seconds"], 3)
    return {owner: workers[owner] for owner in sorted(workers)}


def _cell_rollups(events: List[Dict[str, object]]) -> Dict[str, Dict[str, object]]:
    cells: Dict[str, Dict[str, object]] = {}
    for record in events:
        key = record.get("key")
        if not key or not str(record.get("event", "")).startswith("cell."):
            continue
        roll = cells.setdefault(str(key), {
            "claims": 0, "attempts": 0, "finished": False, "failures": 0,
            "poisoned": False,
        })
        for carry in ("workload", "variant"):
            if record.get(carry) is not None:
                roll[carry] = record[carry]
        name = record.get("event")
        if name == "cell.claimed":
            roll["claims"] += 1
        elif name == "cell.started":
            roll["attempts"] = max(
                int(roll["attempts"]), int(record.get("attempt", 1) or 1))
        elif name == "cell.finished":
            roll["finished"] = True
            roll["owner"] = record.get("owner")
            for measure in ("instructions", "cycles", "stall_share",
                            "sim_seconds", "inst_per_second"):
                if record.get(measure) is not None:
                    roll[measure] = record[measure]
        elif name == "cell.failed":
            roll["failures"] += 1
            roll["attempts"] = max(
                int(roll["attempts"]), int(record.get("attempt", 1) or 1))
            roll["last_error"] = record.get("error_type")
        elif name == "cell.poisoned":
            roll["poisoned"] = True
    return {key: cells[key] for key in sorted(cells)}


def _latency(cells: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    timed = [float(roll["sim_seconds"]) for roll in cells.values()
             if roll.get("sim_seconds")]
    if not timed:
        return {"cells_timed": 0}
    return {
        "cells_timed": len(timed),
        "p50_seconds": round(percentile(timed, 0.5), 3),
        "p90_seconds": round(percentile(timed, 0.9), 3),
        "max_seconds": round(max(timed), 3),
    }


def _throughput(events: List[Dict[str, object]],
                buckets: int = 20) -> Dict[str, object]:
    """Instructions finished per wall-clock bucket (the sparkline's data).

    Wall timestamps only exist inside journals, so this is the one roll-up
    that is allowed to depend on them; bucket *contents* are still fully
    determined by the journal files.
    """
    finished = [
        (float(record.get("t_wall", 0.0)),
         int(record.get("instructions", 0) or 0))
        for record in events if record.get("event") == "cell.finished"
    ]
    if not finished:
        return {"buckets": [], "bucket_seconds": 0.0, "total_instructions": 0}
    total = sum(instructions for _t, instructions in finished)
    start = min(t for t, _instructions in finished)
    span = max(t for t, _instructions in finished) - start
    if span <= 0.0:
        return {"buckets": [total], "bucket_seconds": 0.0,
                "total_instructions": total}
    count = max(1, min(buckets, len(finished)))
    width = span / count
    values = [0] * count
    for t, instructions in finished:
        values[min(count - 1, int((t - start) / width))] += instructions
    return {"buckets": values, "bucket_seconds": round(width, 3),
            "total_instructions": total}


def _detect_anomalies(timeline: Dict[str, object],
                      thresholds: AnomalyThresholds) -> List[Dict[str, str]]:
    anomalies: List[Dict[str, str]] = []
    workers: Dict[str, Dict[str, object]] = timeline["workers"]
    cells: Dict[str, Dict[str, object]] = timeline["cells"]
    settled = timeline.get("state") in _SETTLED_STATES

    # -- worker_slow: a worker far below the fleet's median pace ----------
    paced = {owner: float(roll["inst_per_second"])
             for owner, roll in workers.items()
             if float(roll["inst_per_second"]) > 0}
    if len(paced) >= 2:
        fleet_median = median(list(paced.values()))
        for owner, pace in paced.items():
            if pace < thresholds.worker_fraction * fleet_median:
                anomalies.append(_anomaly(
                    "worker_slow", owner,
                    f"{pace:.0f} inst/s vs fleet median "
                    f"{fleet_median:.0f} (< {thresholds.worker_fraction:g}x)",
                ))

    # -- worker_lost: started + claimed, never stopped, campaign settled --
    if settled:
        for owner, roll in workers.items():
            if roll["started"] and roll["claims"] and not roll["stopped"]:
                anomalies.append(_anomaly(
                    "worker_lost", owner,
                    f"claimed {roll['claims']} cell(s) but never wrote "
                    f"worker.stopped — killed mid-run",
                ))

    # -- cell latency / stall-share robust-z outliers ---------------------
    timed = {key: float(roll["sim_seconds"]) for key, roll in cells.items()
             if roll.get("sim_seconds")}
    if len(timed) >= thresholds.min_samples:
        keys = sorted(timed)
        values = [timed[key] for key in keys]
        mid = median(values)
        for key, score in zip(keys, robust_zscores(values)):
            if (score > thresholds.robust_z
                    and timed[key] >= thresholds.latency_factor * mid):
                anomalies.append(_anomaly(
                    "cell_latency_outlier", key,
                    f"{timed[key]:.2f}s vs median {mid:.2f}s "
                    f"(robust z {score:.1f})",
                ))
    stalled = {key: float(roll["stall_share"]) for key, roll in cells.items()
               if roll.get("stall_share") is not None and roll.get("finished")}
    if len(stalled) >= thresholds.min_samples:
        keys = sorted(stalled)
        values = [stalled[key] for key in keys]
        mid = median(values)
        for key, score in zip(keys, robust_zscores(values)):
            if (score > thresholds.robust_z
                    and stalled[key] >= mid + thresholds.stall_margin):
                anomalies.append(_anomaly(
                    "cell_stall_outlier", key,
                    f"stall share {stalled[key]:.2f} vs median {mid:.2f} "
                    f"(robust z {score:.1f})",
                ))

    # -- lease storms and retry hotspots ----------------------------------
    reclaims = int(timeline["lease"]["reclaimed_keys"])
    if reclaims >= thresholds.lease_storm:
        anomalies.append(_anomaly(
            "lease_storm", timeline.get("campaign", ""),
            f"{reclaims} lease(s) reclaimed from dead workers",
        ))
    for key, roll in cells.items():
        if int(roll["attempts"]) >= thresholds.retry_hotspot:
            anomalies.append(_anomaly(
                "retry_hotspot", key,
                f"{roll['attempts']} attempts "
                f"({roll.get('last_error') or 'transient failures'})",
            ))
        if roll["poisoned"]:
            anomalies.append(_anomaly(
                "cell_poisoned", key,
                f"permanently failed after {roll['attempts']} attempt(s): "
                f"{roll.get('last_error') or 'unknown error'}",
            ))

    anomalies.sort(key=lambda a: (a["kind"], a["subject"]))
    return anomalies


def build_timeline(store: CampaignStore,
                   thresholds: Optional[AnomalyThresholds] = None,
                   ) -> Dict[str, object]:
    """The full machine-readable timeline of one campaign.

    A pure function of the store's on-disk state (manifest, leases, failure
    records, result, journals): the same bytes always produce the same
    timeline, anomalies included.
    """
    thresholds = thresholds or AnomalyThresholds()
    status = store.status()
    events = load_events(store.events_path)
    cells = _cell_rollups(events)
    timeline: Dict[str, object] = {
        "campaign": store.name,
        "state": status.get("state"),
        "mode": status.get("mode"),
        "spec_fingerprint": status.get("spec_fingerprint"),
        "cells_planned": status.get("cells_planned", 0),
        "cells_done": status.get("cells_done", 0),
        "cells_failed": status.get("cells_failed", 0),
        "retries": status.get("retries", 0),
        "quarantined": status.get("quarantined", 0),
        "events": len(events),
        "event_counts": event_counts(events),
        "workers": _worker_rollups(events),
        "cells": cells,
        "latency": _latency(cells),
        "throughput": _throughput(events),
        "lease": {
            "renewals": sum(1 for e in events
                            if e.get("event") == "lease.renewed"),
            "reclaims": sum(1 for e in events
                            if e.get("event") == "lease.reclaimed"),
            "reclaimed_keys": sum(int(e.get("count", 0) or 0) for e in events
                                  if e.get("event") == "lease.reclaimed"),
        },
    }
    timeline["anomalies"] = _detect_anomalies(timeline, thresholds)
    return timeline


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def sparkline(values: List[int]) -> str:
    """Plain-ASCII sparkline of non-negative values (empty input -> '')."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return SPARK_LEVELS[0] * len(values)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[min(top, (value * top + peak - 1) // peak)]
        for value in values
    )


def render_summary(timeline: Dict[str, object]) -> str:
    """One-shot ASCII dashboard of a campaign timeline."""
    lines: List[str] = []
    lines.append(
        f"campaign {timeline['campaign']} — {timeline['state']} "
        f"({timeline['cells_done']}/{timeline['cells_planned']} cells done, "
        f"{timeline['cells_failed']} failed, {timeline['retries']} retries, "
        f"{timeline['events']} events)"
    )
    workers: Dict[str, Dict[str, object]] = timeline["workers"]
    if workers:
        lines.append("")
        lines.append(f"{'worker':<36} {'claims':>6} {'done':>5} {'fail':>5} "
                     f"{'inst/s':>10} {'sim_s':>8}  state")
        for owner, roll in workers.items():
            if roll["stopped"]:
                state = "stopped"
            elif roll["started"]:
                state = "running?"
            else:
                state = "-"
            lines.append(
                f"{owner:<36} {roll['claims']:>6} {roll['finished']:>5} "
                f"{roll['failed']:>5} {roll['inst_per_second']:>10.0f} "
                f"{roll['sim_seconds']:>8.2f}  {state}"
            )
    latency = timeline["latency"]
    if latency.get("cells_timed"):
        lines.append("")
        lines.append(
            f"cell latency ({latency['cells_timed']} timed): "
            f"p50 {latency['p50_seconds']:.2f}s  "
            f"p90 {latency['p90_seconds']:.2f}s  "
            f"max {latency['max_seconds']:.2f}s"
        )
    throughput = timeline["throughput"]
    if throughput["buckets"]:
        lines.append(
            f"throughput [{sparkline(list(throughput['buckets']))}] "
            f"({throughput['total_instructions']} instructions, "
            f"{len(throughput['buckets'])} x "
            f"{throughput['bucket_seconds']:.1f}s buckets)"
        )
    lease = timeline["lease"]
    if lease["renewals"] or lease["reclaims"]:
        lines.append(
            f"leases: {lease['renewals']} renewals, "
            f"{lease['reclaimed_keys']} reclaimed"
        )
    anomalies: List[Dict[str, str]] = timeline["anomalies"]
    lines.append("")
    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for anomaly in anomalies:
            lines.append(
                f"  ! {anomaly['kind']}: {anomaly['subject']} — "
                f"{anomaly['detail']}"
            )
    else:
        lines.append("anomalies: none")
    return "\n".join(lines) + "\n"


__all__ = [
    "AnomalyThresholds",
    "build_timeline",
    "render_summary",
    "sparkline",
]
