"""The ``repro`` console entry point.

Subcommands::

    repro list [--tag TAG]               # every runnable campaign
    repro run NAME... [--quick|--full]   # execute campaigns (resumable)
    repro run --smoke                    # the CI-sized smoke campaign
    repro render NAME... [--out DIR]     # stored results -> CSV/MD/JSON
    repro status [NAME...]               # cell-level progress per campaign
    repro clean NAME... | --all          # drop campaign bookkeeping

``run`` is resumable by construction: every simulation persists in the
fingerprint-keyed disk cache the moment it finishes, so a rerun after an
interrupt re-simulates nothing that already completed.  Campaign manifests
and results live under ``.repro_cache/campaigns/``; rendered artifacts are
written under ``artifacts/<campaign>/`` by default.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.registry import get_campaign, list_campaigns, register
from repro.campaign.render import RenderError, render_campaign
from repro.campaign.scheduler import run_campaign
from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import CampaignStore, campaigns_root


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative, resumable campaigns for the R3-DLA "
                    "reproduction (paper figures, tables and custom sweeps).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list runnable campaigns")
    p_list.add_argument("--tag", help="only campaigns carrying this tag")

    p_run = sub.add_parser("run", help="run campaigns (resumable)")
    p_run.add_argument("campaigns", nargs="*", metavar="NAME",
                       help="campaign names (see `repro list`)")
    mode = p_run.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="representative workload subset, short windows "
                           "(default)")
    mode.add_argument("--full", action="store_true",
                      help="every workload, longer windows")
    p_run.add_argument("--smoke", action="store_true",
                       help="run the CI-sized smoke campaign")
    p_run.add_argument("--spec", metavar="FILE",
                       help="also register campaign spec(s) from a JSON file")
    p_run.add_argument("--processes", type=int, default=None,
                       help="parallel worker processes (default: auto)")
    p_run.add_argument("--force", action="store_true",
                       help="reset campaign bookkeeping before running")
    p_run.add_argument("--no-render", action="store_true",
                       help="skip writing artifacts after the run")
    p_run.add_argument("--out", default=None, metavar="DIR",
                       help="artifacts directory (default: artifacts/)")

    p_render = sub.add_parser("render", help="render stored results")
    p_render.add_argument("campaigns", nargs="+", metavar="NAME")
    p_render.add_argument("--out", default=None, metavar="DIR")

    p_status = sub.add_parser("status", help="campaign progress")
    p_status.add_argument("campaigns", nargs="*", metavar="NAME")

    p_clean = sub.add_parser("clean", help="drop campaign bookkeeping "
                                           "(simulation cache is untouched)")
    p_clean.add_argument("campaigns", nargs="*", metavar="NAME")
    p_clean.add_argument("--all", action="store_true", dest="clean_all")
    return parser


# ---------------------------------------------------------------------------
def _cmd_list(args) -> int:
    specs = list_campaigns(tag=args.tag)
    if not specs:
        print("no campaigns registered")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        cells = f"{len(spec.variants)} variants" if spec.variants else "analysis"
        tags = f"  [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"{spec.name.ljust(width)}  {cells:>12}  {spec.title}{tags}")
    return 0


def _load_spec_file(path: str) -> List[CampaignSpec]:
    data = json.loads(Path(path).read_text())
    entries = data if isinstance(data, list) else [data]
    specs = [CampaignSpec.from_dict(entry) for entry in entries]
    for spec in specs:
        register(spec, replace=True)
    return specs


def _cmd_run(args) -> int:
    quick = not args.full
    names = list(args.campaigns)
    if args.spec:
        loaded = _load_spec_file(args.spec)
        if not names:
            names = [spec.name for spec in loaded]
    if args.smoke:
        names.append("smoke")
    if not names:
        print("nothing to run: name at least one campaign, or use --smoke",
              file=sys.stderr)
        return 2
    for name in names:
        spec = get_campaign(name)
        if spec is None:
            print(f"unknown campaign {name!r} (try `repro list`)", file=sys.stderr)
            return 2
        store = CampaignStore(spec.name)
        if args.force:
            store.clear()
        run_campaign(spec, quick=quick, processes=args.processes,
                     store=store, progress=print)
        if not args.no_render:
            for path in render_campaign(spec.name, store=store, out_dir=args.out):
                print(f"[{spec.name}] wrote {path}")
    return 0


def _cmd_render(args) -> int:
    for name in args.campaigns:
        try:
            for path in render_campaign(name, out_dir=args.out):
                print(f"[{name}] wrote {path}")
        except RenderError as error:
            print(str(error), file=sys.stderr)
            return 1
    return 0


def _known_store_names() -> List[str]:
    root = campaigns_root()
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.iterdir() if p.is_dir())


def _cmd_status(args) -> int:
    names = list(args.campaigns) or _known_store_names()
    if not names:
        print("no campaigns have been run yet")
        return 0
    for name in names:
        status = CampaignStore(name).status()
        if status.get("state") == "never run":
            print(f"{name}: never run")
            continue
        print(
            f"{name}: {status['state']} ({status.get('mode')}); "
            f"cells {status.get('cells_cached', 0)}/{status.get('cells_planned', 0)} "
            f"cached; updated {status.get('updated_at')}"
        )
    return 0


def _cmd_clean(args) -> int:
    names = list(args.campaigns)
    if args.clean_all:
        names = _known_store_names()
    if not names:
        print("nothing to clean: name campaigns or pass --all", file=sys.stderr)
        return 2
    for name in names:
        removed = CampaignStore(name).clear()
        print(f"{name}: removed {removed} file(s)")
    return 0


# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "render":
            return _cmd_render(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "clean":
            return _cmd_clean(args)
    except SpecError as error:
        print(f"spec error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted — rerun to resume (finished cells are cached)",
              file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
