"""The ``repro`` console entry point.

Subcommands::

    repro list [--tag TAG]               # every runnable campaign
    repro run NAME... [--quick|--full]   # execute campaigns (resumable)
    repro run --smoke                    # the CI-sized smoke campaign
    repro run NAME --shard I/N           # static shard of the cell matrix
    repro run NAME --worker              # lease-driven dynamic claiming
    repro merge NAME...                  # assemble + render once cells land
    repro render NAME... [--out DIR]     # stored results -> CSV/MD/JSON
    repro status [NAME...] [--json]      # cell-level progress per campaign
    repro monitor NAME [--summary|--json|--follow]   # timeline + anomalies
    repro dispatch NAME --backend B --hosts N [--dry-run]  # fleet execution
    repro sync push|pull --shared TARGET [--campaign NAME] # cache transport
    repro clean NAME... | --all          # drop campaign bookkeeping

``run`` is resumable by construction: every simulation persists in the
fingerprint-keyed disk cache the moment it finishes, so a rerun after an
interrupt re-simulates nothing that already completed.  Campaign manifests
and results live under ``.repro_cache/campaigns/``; rendered artifacts are
written under ``artifacts/<campaign>/`` by default.

Sharded execution splits one campaign across processes or hosts sharing a
cache directory (or syncing it, as the CI matrix does via artifacts):
``--shard i/N`` statically owns a deterministic slice of the cell matrix,
``--worker`` dynamically claims cells through TTL'd store leases (crashed
workers' cells are reclaimed after expiry), and ``merge`` assembles the
final artifacts once every cell is in the cache — bit-identical to a
single-host run.  ``status --json`` gives orchestrators machine-readable
done/leased/pending counts.

``dispatch`` runs one campaign across a fleet: it renders one job script
per host (``--dry-run`` to inspect without submitting), submits them to an
execution backend (``local``, ``process_pool``, or ``slurm``), polls the
shared store until every cell lands, then merges and renders exactly once
— byte-identical to a single-host run.  ``sync`` is the underlying cache
transport: batched, idempotent, checksum-verified push/pull of cache
entries and campaign lease/failure/journal state between a local
``.repro_cache/`` and a shared root (a directory or an rsync-style
remote).  See :mod:`repro.campaign.fabric`.

``monitor`` reads the per-campaign event journals
(:mod:`repro.campaign.telemetry`) and renders the merged timeline —
per-worker roll-ups, cell-latency percentiles, a throughput sparkline and
deterministic anomaly flags (:mod:`repro.campaign.monitor`).  The exit code
is 1 when anomalies are present, so CI can gate on fleet health.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.fabric.backends import BACKEND_NAMES, BackendError
from repro.campaign.fabric.dispatch import (
    CLAIM_MODES, DispatchError, Dispatcher,
)
from repro.campaign.fabric.sync import (
    DEFAULT_BATCH_SIZE, CacheSync, SyncError,
)
from repro.campaign.health import (
    DEFAULT_BACKOFF_BASE, DEFAULT_MAX_ATTEMPTS, RetryPolicy,
)
from repro.campaign.registry import get_campaign, list_campaigns, register
from repro.campaign.render import RenderError, render_campaign
from repro.campaign.scheduler import (
    CampaignIncomplete, CampaignScheduler, ShardedExecutionError, run_campaign,
)
from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import (
    DEFAULT_LEASE_TTL, CampaignStore, campaigns_root,
)
from repro.util import faults
from repro.util.sharding import ShardError, parse_shard


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {text})")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative, resumable campaigns for the R3-DLA "
                    "reproduction (paper figures, tables and custom sweeps).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list runnable campaigns")
    p_list.add_argument("--tag", help="only campaigns carrying this tag")

    p_run = sub.add_parser("run", help="run campaigns (resumable)")
    p_run.add_argument("campaigns", nargs="*", metavar="NAME",
                       help="campaign names (see `repro list`)")
    mode = p_run.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="representative workload subset, short windows "
                           "(default)")
    mode.add_argument("--full", action="store_true",
                      help="every workload, longer windows")
    p_run.add_argument("--smoke", action="store_true",
                       help="run the CI-sized smoke campaign")
    p_run.add_argument("--spec", metavar="FILE",
                       help="also register campaign spec(s) from a JSON file")
    p_run.add_argument("--processes", type=int, default=None,
                       help="parallel worker processes (default: auto)")
    p_run.add_argument("--force", action="store_true",
                       help="reset campaign bookkeeping before running")
    p_run.add_argument("--no-render", action="store_true",
                       help="skip writing artifacts after the run")
    p_run.add_argument("--out", default=None, metavar="DIR",
                       help="artifacts directory (default: artifacts/)")
    shard_mode = p_run.add_mutually_exclusive_group()
    shard_mode.add_argument("--shard", metavar="I/N", default=None,
                            help="simulate only static shard I of N "
                                 "(deterministic partition; finish with "
                                 "`repro merge`)")
    shard_mode.add_argument("--worker", action="store_true",
                            help="lease-driven worker: dynamically claim "
                                 "unfinished cells until the campaign "
                                 "completes")
    p_run.add_argument("--owner", default=None, metavar="ID",
                       help="worker identity for lease stamping "
                            "(default: <host>-<pid>)")
    p_run.add_argument("--ttl", type=float, default=DEFAULT_LEASE_TTL,
                       metavar="SECONDS",
                       help="lease time-to-live; a crashed worker's cells "
                            "are reclaimed after this long "
                            f"(default: {DEFAULT_LEASE_TTL:g})")
    p_run.add_argument("--poll", type=float, default=2.0, metavar="SECONDS",
                       help="worker poll interval while other workers hold "
                            "the remaining leases (default: 2)")
    p_run.add_argument("--batch", type=_positive_int, default=4,
                       metavar="CELLS",
                       help="cells a worker claims per lease batch "
                            "(default: 4)")
    p_run.add_argument("--retries", type=_positive_int,
                       default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                       help="total attempts per failing cell before it is "
                            "poisoned (permanently failed, skipped by all "
                            f"workers; default: {DEFAULT_MAX_ATTEMPTS})")
    p_run.add_argument("--retry-backoff", type=float,
                       default=DEFAULT_BACKOFF_BASE, metavar="SECONDS",
                       help="base delay of the capped exponential retry "
                            "backoff (deterministically jittered; default: "
                            f"{DEFAULT_BACKOFF_BASE:g})")
    p_run.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell wall-clock watchdog: run each worker "
                            "cell in a subprocess and convert overruns into "
                            "retryable failures (default: no watchdog)")
    p_run.add_argument("--faults", default=None, metavar="PLAN",
                       help="fault-injection plan for chaos testing (JSON "
                            "list or compact 'site:kind:k=v,...;...' — see "
                            "repro.util.faults); also exported to "
                            "subprocesses via the environment")

    p_merge = sub.add_parser(
        "merge",
        help="assemble + render artifacts once every cell has landed "
             "(fan-in for sharded runs; simulates nothing)",
    )
    p_merge.add_argument("campaigns", nargs="*", metavar="NAME")
    p_merge.add_argument("--spec", metavar="FILE",
                         help="register campaign spec(s) from a JSON file "
                              "first (required in a fresh process when the "
                              "sharded run used --spec)")
    merge_mode = p_merge.add_mutually_exclusive_group()
    merge_mode.add_argument("--quick", action="store_true",
                            help="merge the quick-mode matrix (default)")
    merge_mode.add_argument("--full", action="store_true",
                            help="merge the full-mode matrix")
    p_merge.add_argument("--out", default=None, metavar="DIR")
    p_merge.add_argument("--no-render", action="store_true",
                         help="assemble the stored result but skip artifacts")

    p_render = sub.add_parser("render", help="render stored results")
    p_render.add_argument("campaigns", nargs="+", metavar="NAME")
    p_render.add_argument("--out", default=None, metavar="DIR")

    p_status = sub.add_parser("status", help="campaign progress")
    p_status.add_argument("campaigns", nargs="*", metavar="NAME")
    p_status.add_argument("--json", action="store_true", dest="as_json",
                          help="machine-readable status (cell counts: "
                               "done/leased/pending) for CI and dispatchers")

    p_monitor = sub.add_parser(
        "monitor",
        help="merged event timeline, per-worker roll-ups and anomaly flags "
             "(exit 1 when anomalies are present)",
    )
    p_monitor.add_argument("campaign", metavar="NAME")
    p_monitor.add_argument("--summary", action="store_true",
                           help="one-shot ASCII dashboard (default unless "
                                "--json is given)")
    p_monitor.add_argument("--json", action="store_true", dest="as_json",
                           help="machine-readable timeline (stdout, or "
                                "--out FILE)")
    p_monitor.add_argument("--follow", action="store_true",
                           help="poll and re-render until the campaign "
                                "completes")
    p_monitor.add_argument("--interval", type=float, default=2.0,
                           metavar="SECONDS",
                           help="poll interval for --follow (default: 2)")
    p_monitor.add_argument("--out", default=None, metavar="FILE",
                           help="write the JSON timeline to FILE "
                                "(with --json)")

    p_dispatch = sub.add_parser(
        "dispatch",
        help="run one campaign across a fleet of hosts: render job "
             "scripts, submit to a backend, poll to convergence, merge",
    )
    p_dispatch.add_argument("campaign", metavar="NAME")
    p_dispatch.add_argument("--backend", default="process_pool",
                            choices=BACKEND_NAMES,
                            help="execution backend (default: process_pool)")
    p_dispatch.add_argument("--hosts", type=_positive_int, default=2,
                            metavar="N",
                            help="fleet size — one job script per host "
                                 "(default: 2; hosts > cells is fine, the "
                                 "surplus hosts converge on empty shards)")
    p_dispatch.add_argument("--claim", default="shard", choices=CLAIM_MODES,
                            help="cell-claiming mode: 'shard' = isolated "
                                 "per-host cache roots synced through the "
                                 "shared root, 'worker' = lease-driven "
                                 "claiming straight on the shared root "
                                 "(default: shard)")
    dispatch_mode = p_dispatch.add_mutually_exclusive_group()
    dispatch_mode.add_argument("--quick", action="store_true",
                               help="quick-mode matrix (default)")
    dispatch_mode.add_argument("--full", action="store_true",
                               help="full-mode matrix")
    p_dispatch.add_argument("--spec", metavar="FILE",
                            help="register campaign spec(s) from a JSON "
                                 "file first; forwarded to every host job")
    p_dispatch.add_argument("--shared", default=None, metavar="DIR",
                            help="shared cache root the fleet syncs "
                                 "through (default: $REPRO_CACHE_DIR or "
                                 ".repro_cache)")
    p_dispatch.add_argument("--dry-run", action="store_true",
                            help="render the job scripts and stop — "
                                 "nothing is submitted")
    p_dispatch.add_argument("--processes", type=_positive_int, default=None,
                            help="worker processes per host job "
                                 "(default: 1)")
    p_dispatch.add_argument("--poll", type=float, default=1.0,
                            metavar="SECONDS",
                            help="fleet status poll interval (default: 1)")
    p_dispatch.add_argument("--ttl", type=float, default=DEFAULT_LEASE_TTL,
                            metavar="SECONDS",
                            help="lease TTL for worker-claim hosts "
                                 f"(default: {DEFAULT_LEASE_TTL:g})")
    p_dispatch.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="abort the dispatch if the fleet has not "
                                 "converged after this long (default: "
                                 "wait forever)")
    p_dispatch.add_argument("--out", default=None, metavar="DIR",
                            help="artifacts directory (default: artifacts/)")
    p_dispatch.add_argument("--no-render", action="store_true",
                            help="merge the stored result but skip "
                                 "artifacts")
    p_dispatch.add_argument("--json", action="store_true", dest="as_json",
                            help="print the dispatch plan as JSON "
                                 "(machine-readable; pairs with --dry-run)")

    p_sync = sub.add_parser(
        "sync",
        help="push/pull cache cells + campaign state between a local "
             "cache root and a shared target (batched, idempotent, "
             "checksum-verified)",
    )
    p_sync.add_argument("direction", choices=("push", "pull"),
                        help="push = local -> shared, pull = shared -> local")
    p_sync.add_argument("--shared", required=True, metavar="TARGET",
                        help="shared root: a directory, or an rsync-style "
                             "remote (host:/path)")
    p_sync.add_argument("--local", default=None, metavar="DIR",
                        help="local cache root (default: $REPRO_CACHE_DIR "
                             "or .repro_cache)")
    p_sync.add_argument("--campaign", default=None, metavar="NAME",
                        help="restrict cell entries to this campaign's "
                             "manifest and sync its lease/failure/journal "
                             "state alongside")
    p_sync.add_argument("--batch", type=_positive_int,
                        default=DEFAULT_BATCH_SIZE, metavar="N",
                        help="cell entries per transfer batch "
                             f"(default: {DEFAULT_BATCH_SIZE})")
    p_sync.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable transfer report")

    p_clean = sub.add_parser("clean", help="drop campaign bookkeeping "
                                           "(simulation cache is untouched)")
    p_clean.add_argument("campaigns", nargs="*", metavar="NAME")
    p_clean.add_argument("--all", action="store_true", dest="clean_all")
    return parser


# ---------------------------------------------------------------------------
def _cmd_list(args) -> int:
    specs = list_campaigns(tag=args.tag)
    if not specs:
        print("no campaigns registered")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        cells = f"{len(spec.variants)} variants" if spec.variants else "analysis"
        tags = f"  [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"{spec.name.ljust(width)}  {cells:>12}  {spec.title}{tags}")
    return 0


def _load_spec_file(path: str) -> List[CampaignSpec]:
    data = json.loads(Path(path).read_text())
    entries = data if isinstance(data, list) else [data]
    specs = [CampaignSpec.from_dict(entry) for entry in entries]
    for spec in specs:
        register(spec, replace=True)
    return specs


def _run_names(args) -> Optional[List[str]]:
    names = list(args.campaigns)
    if args.spec:
        loaded = _load_spec_file(args.spec)
        if not names:
            names = [spec.name for spec in loaded]
    if args.smoke:
        names.append("smoke")
    return names


def _activate_faults(plan_text: Optional[str]) -> None:
    """Parse and activate a chaos plan; export it for child processes.

    Pool workers, watchdog subprocesses and any ``repro`` child the
    orchestrator spawns all pick the plan up from the environment, so one
    ``--faults`` flag covers the whole process tree.
    """
    if not plan_text:
        return
    plan = faults.FaultPlan.parse(plan_text)
    faults.activate(plan)
    os.environ[faults.FAULTS_ENV] = plan.to_json()


def _cmd_run(args) -> int:
    quick = not args.full
    names = _run_names(args)
    if not names:
        print("nothing to run: name at least one campaign, or use --smoke",
              file=sys.stderr)
        return 2
    shard = None
    if args.shard is not None:
        shard = parse_shard(args.shard)
    _activate_faults(args.faults)
    policy = RetryPolicy(max_attempts=args.retries,
                         backoff_base=args.retry_backoff)
    exit_code = 0
    for name in names:
        spec = get_campaign(name)
        if spec is None:
            print(f"unknown campaign {name!r} (try `repro list`)", file=sys.stderr)
            return 2
        store = CampaignStore(spec.name)
        if args.force:
            store.clear()
        if shard is not None:
            scheduler = CampaignScheduler(
                spec, quick=quick, processes=args.processes, store=store,
                progress=print, bench_report=False, retry_policy=policy,
                cell_timeout=args.cell_timeout,
            )
            scheduler.run_shard(*shard)
            # No artifacts from a shard run: rendering is `repro merge`'s
            # job once every shard has landed.
            continue
        if args.worker:
            scheduler = CampaignScheduler(
                spec, quick=quick, processes=args.processes, store=store,
                progress=print, bench_report=False, retry_policy=policy,
                cell_timeout=args.cell_timeout,
            )
            summary = scheduler.run_worker(
                owner=args.owner, ttl=args.ttl, batch_size=args.batch,
                poll_seconds=args.poll,
            )
            if summary.get("finalized") and not args.no_render:
                for path in render_campaign(spec.name, store=store,
                                            out_dir=args.out):
                    print(f"[{spec.name}] wrote {path}")
            if summary.get("cells_failed") or summary.get("interrupted"):
                exit_code = 1
            continue
        summary = run_campaign(spec, quick=quick, processes=args.processes,
                               store=store, progress=print,
                               retry_policy=policy,
                               cell_timeout=args.cell_timeout)
        if not args.no_render:
            for path in render_campaign(spec.name, store=store, out_dir=args.out):
                print(f"[{spec.name}] wrote {path}")
        if summary.get("cells_failed"):
            # Artifacts were written (degraded), but CI must see the failure.
            exit_code = 1
    return exit_code


def _cmd_merge(args) -> int:
    quick = not args.full
    exit_code = 0
    names = list(args.campaigns)
    if args.spec:
        loaded = _load_spec_file(args.spec)
        if not names:
            names = [spec.name for spec in loaded]
    if not names:
        print("nothing to merge: name at least one campaign", file=sys.stderr)
        return 2
    for name in names:
        spec = get_campaign(name)
        if spec is None:
            print(f"unknown campaign {name!r} (try `repro list`)", file=sys.stderr)
            return 2
        store = CampaignStore(spec.name)
        scheduler = CampaignScheduler(spec, quick=quick, store=store,
                                      progress=print, bench_report=False)
        try:
            summary = scheduler.finalize()
        except CampaignIncomplete as error:
            print(str(error), file=sys.stderr)
            return 1
        if not args.no_render:
            for path in render_campaign(spec.name, store=store, out_dir=args.out):
                print(f"[{spec.name}] wrote {path}")
        if summary.get("cells_failed"):
            # Degraded merge: artifacts exist but carry a health section.
            exit_code = 1
    return exit_code


def _cmd_render(args) -> int:
    for name in args.campaigns:
        try:
            for path in render_campaign(name, out_dir=args.out):
                print(f"[{name}] wrote {path}")
        except RenderError as error:
            print(str(error), file=sys.stderr)
            return 1
    return 0


def _known_store_names() -> List[str]:
    root = campaigns_root()
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.iterdir() if p.is_dir())


def _cmd_status(args) -> int:
    names = list(args.campaigns) or _known_store_names()
    if not names:
        if args.as_json:
            print("{}")
        else:
            print("no campaigns have been run yet")
        return 0
    statuses = {name: CampaignStore(name).status() for name in names}
    # Non-zero failed cells flip the exit code so CI and dispatchers can
    # gate on campaign health without parsing the output.
    unhealthy = any(status.get("cells_failed") for status in statuses.values())
    if args.as_json:
        print(json.dumps(statuses, indent=2, sort_keys=True))
        return 1 if unhealthy else 0
    for name in names:
        status = statuses[name]
        if status.get("state") == "never run":
            print(f"{name}: never run")
            continue
        leased = status.get("cells_leased", 0)
        lease_note = f", {leased} leased" if leased else ""
        failed = status.get("cells_failed", 0)
        failed_note = f", {failed} FAILED" if failed else ""
        health_bits = []
        if status.get("retries"):
            health_bits.append(f"retries {status['retries']}")
        if status.get("quarantined"):
            health_bits.append(f"quarantined {status['quarantined']}")
        health_note = f" [{', '.join(health_bits)}]" if health_bits else ""
        print(
            f"{name}: {status['state']} ({status.get('mode')}); "
            f"cells {status.get('cells_done', 0)}/{status.get('cells_planned', 0)} "
            f"done{lease_note}, {status.get('cells_pending', 0)} "
            f"pending{failed_note}{health_note}; "
            f"updated {status.get('updated_at')}"
        )
    return 1 if unhealthy else 0


def _cmd_monitor(args) -> int:
    import time as _time

    from repro.campaign.monitor import build_timeline, render_summary

    store = CampaignStore(args.campaign)
    while True:
        timeline = build_timeline(store)
        show_summary = args.summary or args.follow or not args.as_json
        if show_summary:
            print(render_summary(timeline), end="")
        if not args.follow or timeline.get("state") in (
                "complete", "degraded"):
            break
        _time.sleep(args.interval)
        print("-" * 72)
    if args.as_json:
        text = json.dumps(timeline, indent=2, sort_keys=True) + "\n"
        if args.out:
            Path(args.out).write_text(text)
            print(f"[{args.campaign}] wrote {args.out}")
        else:
            print(text, end="")
    return 1 if timeline.get("anomalies") else 0


def _cmd_dispatch(args) -> int:
    if args.shared:
        # The shared root is env-derived everywhere (dispatcher, store,
        # status, merge), so --shared is exactly an env override.
        from repro.experiments.cache import CACHE_DIR_ENV
        os.environ[CACHE_DIR_ENV] = str(Path(args.shared).resolve())
    if args.spec:
        _load_spec_file(args.spec)
    spec = get_campaign(args.campaign)
    if spec is None:
        print(f"unknown campaign {args.campaign!r} (try `repro list`)",
              file=sys.stderr)
        return 2
    dispatcher = Dispatcher(
        spec, backend=args.backend, hosts=args.hosts, claim=args.claim,
        quick=not args.full, spec_file=args.spec, processes=args.processes,
        poll_seconds=args.poll, ttl=args.ttl, timeout=args.timeout,
    )
    plan = dispatcher.dispatch(dry_run=args.dry_run,
                               no_render=args.no_render, out_dir=args.out)
    if args.as_json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_sync(args) -> int:
    sync = CacheSync(local_root=args.local, target=args.shared,
                     batch_size=args.batch)
    if args.direction == "push":
        report = sync.push(campaign=args.campaign)
    else:
        report = sync.pull(campaign=args.campaign)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0


def _cmd_clean(args) -> int:
    names = list(args.campaigns)
    if args.clean_all:
        names = _known_store_names()
    if not names:
        print("nothing to clean: name campaigns or pass --all", file=sys.stderr)
        return 2
    for name in names:
        removed = CampaignStore(name).clear()
        print(f"{name}: removed {removed} file(s)")
    return 0


# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "render":
            return _cmd_render(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "monitor":
            return _cmd_monitor(args)
        if args.command == "dispatch":
            return _cmd_dispatch(args)
        if args.command == "sync":
            return _cmd_sync(args)
        if args.command == "clean":
            return _cmd_clean(args)
    except (SpecError, ShardError) as error:
        print(f"spec error: {error}", file=sys.stderr)
        return 2
    except ShardedExecutionError as error:
        print(str(error), file=sys.stderr)
        return 2
    except CampaignIncomplete as error:
        print(str(error), file=sys.stderr)
        return 1
    except (BackendError, DispatchError, SyncError) as error:
        print(f"dispatch error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\ninterrupted — rerun to resume (finished cells are cached)",
              file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
