"""Campaign scheduling: flatten a spec into cells and drive them.

The scheduler materialises a :class:`~repro.campaign.spec.CampaignSpec`
against a :class:`~repro.experiments.parallel.ParallelExperimentRunner`:

1. the spec's (workload x variant) matrix becomes a list of *cells*
   (:class:`~repro.experiments.parallel.SimRequest`), each identified by the
   same content fingerprint the figure modules use;
2. pending cells (not in the in-memory or on-disk result cache) are
   pre-computed through the parallel runner — fan-out over worker processes
   when available, inline otherwise;
3. the campaign's experiment module assembles the artefact from the warmed
   caches (``module.run(runner)``), and its structured tables plus rendered
   text are persisted in the campaign store;
4. throughput numbers are merged into ``BENCH_sim_throughput.json`` under
   ``campaign_<name>``.

Because every cell is keyed by content fingerprint and persisted in the
shared disk cache the moment it finishes, a campaign killed mid-run resumes
exactly where it stopped: the next run screens finished cells as cache hits
and re-simulates nothing.
"""

from __future__ import annotations

import importlib
import time
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import CampaignStore
from repro.experiments.parallel import ParallelExperimentRunner, SimRequest

Progress = Callable[[str], None]


def _silent(_message: str) -> None:
    return None


class CampaignScheduler:
    """Plans and executes one campaign against one runner."""

    def __init__(
        self,
        spec: CampaignSpec,
        quick: bool = True,
        processes: Optional[int] = None,
        store: Optional[CampaignStore] = None,
        runner: Optional[ParallelExperimentRunner] = None,
        progress: Optional[Progress] = None,
        bench_report: bool = True,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.quick = quick
        self.store = store or CampaignStore(spec.name)
        self.progress = progress or _silent
        self.bench_report = bench_report
        self.runner = runner or ParallelExperimentRunner(
            quick=quick,
            workload_names=spec.resolve_workloads(),
            warmup_instructions=spec.warmup_instructions,
            timed_instructions=spec.timed_instructions,
            processes=processes,
        )

    # ------------------------------------------------------------------
    def cell_workloads(self) -> List[str]:
        """Workloads that get matrix cells (may sub-sample in quick mode)."""
        names = list(self.runner.workload_names)
        limit = self.spec.max_cell_workloads_quick
        if self.quick and limit is not None:
            names = names[:limit]
        return names

    def cells(self) -> List[SimRequest]:
        """The flattened (workload, variant) simulation matrix."""
        base = self.runner.system_config
        requests: List[SimRequest] = []
        for workload in self.cell_workloads():
            for variant in self.spec.variants:
                requests.append(
                    SimRequest(
                        workload=workload,
                        kind=variant.kind,
                        label=variant.name,
                        system_config=variant.system_config(base),
                        dla_config=variant.dla_config(),
                        dynamic=variant.dynamic,
                    )
                )
        return requests

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, object]:
        """Execute the campaign; returns the run summary (also persisted)."""
        mode = "quick" if self.quick else "full"
        manifest = self.store.begin(self.spec, mode)
        requests = self.cells()
        started = time.perf_counter()
        stats_before = self.runner.stats.copy()

        self.progress(
            f"[{self.spec.name}] {len(requests)} cells across "
            f"{len(self.cell_workloads())} workloads ({mode} mode)"
        )
        executed = self.runner.warm(requests) if requests else 0
        cell_stats = self.runner.stats.since(stats_before)
        self._record_cells(manifest, requests)
        if requests:
            self.progress(
                f"[{self.spec.name}] cells done: {executed} simulated, "
                f"{len(requests) - executed} from cache "
                f"({cell_stats.simulation_seconds:.1f}s simulating)"
            )

        module = importlib.import_module(self.spec.experiment)
        result = module.run(self.runner)
        tables = self._tables(module, result)
        text = result.render()
        run_stats = self.runner.stats.since(stats_before)
        wall = time.perf_counter() - started

        summary: Dict[str, object] = {
            "mode": mode,
            "cells_total": len(requests),
            "cells_simulated": executed,
            "cells_from_cache": len(requests) - executed,
            "wall_seconds": round(wall, 2),
        }
        summary.update(run_stats.as_dict())
        self.store.record_run(manifest, summary)
        self.store.save_result(
            {
                "campaign": self.spec.name,
                "title": self.spec.title,
                "description": self.spec.description,
                "experiment": self.spec.experiment,
                "spec_fingerprint": self.spec.fingerprint(),
                "mode": mode,
                "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "tables": tables,
                "text": text,
                "run": summary,
            }
        )

        if self.bench_report:
            from repro.experiments.bench import update_bench_report

            try:
                update_bench_report(f"campaign_{self.spec.name}", summary)
            except OSError:
                pass   # read-only checkout: trajectory is best-effort
        self.progress(
            f"[{self.spec.name}] assembled in {wall:.1f}s "
            f"({run_stats.simulations} simulations, "
            f"{run_stats.memory_hits + run_stats.disk_hits} cache hits)"
        )
        return summary

    # ------------------------------------------------------------------
    def _record_cells(self, manifest: Dict[str, object],
                      requests: List[SimRequest]) -> None:
        records: Dict[str, Dict[str, object]] = {}
        for request in requests:
            key = self.runner.request_key(request)
            records[key] = {
                "workload": request.workload,
                "variant": request.label,
                "kind": request.kind,
                "status": "done",
            }
        self.store.record_cells(manifest, records)

    @staticmethod
    def _tables(module, result) -> Dict[str, List[Dict[str, object]]]:
        hook = getattr(module, "artifact_tables", None)
        if hook is None:
            return {}
        return {name: list(rows) for name, rows in hook(result).items()}


def run_campaign(
    campaign: Union[str, CampaignSpec],
    quick: bool = True,
    processes: Optional[int] = None,
    store: Optional[CampaignStore] = None,
    runner: Optional[ParallelExperimentRunner] = None,
    progress: Optional[Progress] = None,
    bench_report: bool = True,
) -> Dict[str, object]:
    """Resolve ``campaign`` (name or spec) and execute it."""
    if isinstance(campaign, str):
        from repro.campaign.registry import get_campaign

        spec = get_campaign(campaign)
        if spec is None:
            raise SpecError(f"unknown campaign {campaign!r} (try `repro list`)")
    else:
        spec = campaign
    scheduler = CampaignScheduler(
        spec, quick=quick, processes=processes, store=store,
        runner=runner, progress=progress, bench_report=bench_report,
    )
    return scheduler.run()
