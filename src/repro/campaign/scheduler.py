"""Campaign scheduling: flatten a spec into cells and drive them.

The scheduler materialises a :class:`~repro.campaign.spec.CampaignSpec`
against a :class:`~repro.experiments.parallel.ParallelExperimentRunner`:

1. the spec's (workload x variant) matrix becomes a list of *cells*
   (:class:`~repro.experiments.parallel.SimRequest`), each identified by the
   same content fingerprint the figure modules use;
2. pending cells (not in the in-memory or on-disk result cache) are
   pre-computed through the parallel runner — fan-out over worker processes
   when available, inline otherwise;
3. the campaign's experiment module assembles the artefact from the warmed
   caches (``module.run(runner)``), and its structured tables plus rendered
   text are persisted in the campaign store;
4. throughput numbers are merged into ``BENCH_sim_throughput.json`` under
   ``campaign_<name>``.

Because every cell is keyed by content fingerprint and persisted in the
shared disk cache the moment it finishes, a campaign killed mid-run resumes
exactly where it stopped: the next run screens finished cells as cache hits
and re-simulates nothing.

Beyond the single-host :meth:`CampaignScheduler.run`, the same cell matrix
drives two sharded execution modes (each a thin loop over the same
primitives, so all three are bit-identical by construction):

:meth:`run_shard`
    Deterministic *static* partitioning: shard ``i`` of ``N`` owns a fixed
    round-robin slice of the sorted cell keys
    (:func:`repro.util.sharding.partition`) — disjoint and exhaustive across
    shards with no coordination at all.  Made for CI matrices and
    orchestrators that already know the worker count.

:meth:`run_worker`
    *Dynamic* claiming through store-level cell leases: each worker
    repeatedly claims a batch of unfinished cells
    (:meth:`~repro.campaign.store.CampaignStore.claim_cells`), simulates
    them, and releases the leases as results land in the shared disk cache.
    Crash recovery is lease expiry — a worker killed mid-cell loses its
    lease after the TTL and a survivor reclaims the cell.

:meth:`finalize` (CLI: ``repro merge``)
    Assembles the final artefact from the caches once every cell is done —
    any worker or a separate fan-in job can run it; it simulates nothing.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.health import (
    CellCrashed, CellTimeout, RetryPolicy, WorkerShutdown, exception_info,
    make_failure_record, record_poisoned, record_retry_ready,
)
from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import CampaignStore, DEFAULT_LEASE_TTL
from repro.campaign.telemetry import EventJournal, outcome_measures
from repro.experiments.parallel import ParallelExperimentRunner, SimRequest
from repro.util import faults
from repro.util.sharding import partition

Progress = Callable[[str], None]


def _silent(_message: str) -> None:
    return None


def default_owner() -> str:
    """A worker identity unique enough for lease stamping: host + pid."""
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


def _watchdog_cell_main(ctor_kwargs: dict, request: SimRequest, key: str,
                        prior_attempts: int, report_path: str) -> None:
    """Watchdog subprocess entry: run one cell isolated, report failures.

    The successful result travels through the shared disk cache (the child
    runner persists it the moment the simulation finishes) — only failure
    payloads come back through ``report_path``, so the parent can tell
    "crashed" from "succeeded" without unpickling outcomes across the
    process boundary.
    """
    from repro.experiments.parallel import _run_group

    _workload, results, _stats, _warm = _run_group(
        (ctor_kwargs, request.workload, [request],
         {"isolate": True, "attempts": {key: prior_attempts}})
    )
    failures = {k: info for kind, k, info in results if kind == "failed"}
    Path(report_path).write_text(json.dumps(failures))


class CampaignIncomplete(RuntimeError):
    """Finalisation was requested while cells are still unsimulated."""


class ShardedExecutionError(RuntimeError):
    """Sharded execution was requested without a way to coordinate.

    Shards and workers communicate *through the shared disk cache* — a cell
    is done exactly when its result is on disk.  With the cache disabled
    (``REPRO_DISK_CACHE=0``) workers cannot see each other's results:
    they would re-simulate every cell (breaking exactly-once) and a
    separate-process merge could never find the cells.  Refuse loudly
    instead.
    """


class CampaignScheduler:
    """Plans and executes one campaign against one runner."""

    def __init__(
        self,
        spec: CampaignSpec,
        quick: bool = True,
        processes: Optional[int] = None,
        store: Optional[CampaignStore] = None,
        runner: Optional[ParallelExperimentRunner] = None,
        progress: Optional[Progress] = None,
        bench_report: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        cell_timeout: Optional[float] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.quick = quick
        self.store = store or CampaignStore(spec.name)
        self.progress = progress or _silent
        self.bench_report = bench_report
        #: Bounded-retry policy for failing cells (see campaign.health).
        self.retry_policy = retry_policy or RetryPolicy()
        #: Per-cell wall-clock budget; ``None`` disables the subprocess
        #: watchdog (cells then run inline in the worker, hangs and all).
        self.cell_timeout = cell_timeout
        self.runner = runner or ParallelExperimentRunner(
            quick=quick,
            workload_names=spec.resolve_workloads(),
            warmup_instructions=spec.warmup_instructions,
            timed_instructions=spec.timed_instructions,
            processes=processes,
        )
        #: Lazy keyed-cell matrix — spec and runner are fixed for this
        #: scheduler's lifetime, so the (key, request) list is computed once.
        self._keyed_cells: Optional[List[Tuple[str, SimRequest]]] = None
        #: Per-owner event journal (campaign telemetry).  ``None`` until an
        #: execution entry point opens one, so every ``_emit`` is a no-op
        #: outside campaign runs — telemetry is inert by default and only
        #: ever fires at cell granularity, never on the simulator hot path.
        self.journal: Optional[EventJournal] = None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _open_journal(self, owner: str) -> None:
        """Open this scheduler's event journal (idempotent; first owner
        wins — a worker that finalises keeps journaling as itself)."""
        if self.journal is None:
            self.journal = EventJournal(self.store.events_path, owner)

    def _emit(self, event: str, key: Optional[str] = None,
              **fields: object) -> None:
        if self.journal is not None:
            self.journal.emit(event, key=key, **fields)

    def _cell_measures(self, key: str,
                       stats_delta=None) -> Dict[str, object]:
        """Per-cell measures for a ``cell.finished`` event.

        Content-determined parts (instructions, cycles, stall share) come
        from the cached outcome; volatile parts (sim wall seconds, inst/s)
        from the runner-stats delta around the cell — only present when
        this process actually simulated (a cache-served cell has no
        meaningful wall time).
        """
        measures: Dict[str, object] = {}
        outcome = self.runner.cached_outcome(key)
        if outcome is not None:
            measures.update(outcome_measures(outcome))
        if stats_delta is not None and stats_delta.simulations > 0:
            measures["sim_seconds"] = round(
                stats_delta.simulation_seconds, 3)
            measures["inst_per_second"] = round(
                stats_delta.instructions_per_second, 1)
        return measures

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "quick" if self.quick else "full"

    def cell_workloads(self) -> List[str]:
        """Workloads that get matrix cells (may sub-sample in quick mode)."""
        names = list(self.runner.workload_names)
        limit = self.spec.max_cell_workloads_quick
        if self.quick and limit is not None:
            names = names[:limit]
        return names

    def cells(self) -> List[SimRequest]:
        """The flattened (workload, variant) simulation matrix."""
        base = self.runner.system_config
        requests: List[SimRequest] = []
        for workload in self.cell_workloads():
            for variant in self.spec.variants:
                requests.append(
                    SimRequest(
                        workload=workload,
                        kind=variant.kind,
                        label=variant.name,
                        system_config=variant.system_config(base),
                        dla_config=variant.dla_config(),
                        dynamic=variant.dynamic,
                    )
                )
        return requests

    def keyed_cells(self) -> List[Tuple[str, SimRequest]]:
        """(content key, request) per cell, de-duplicated by key.

        Two variants that materialise to the same configuration share one
        content key — and one cache slot — so they are one unit of sharded
        work; the first spelling wins.
        """
        if self._keyed_cells is None:
            keyed: Dict[str, SimRequest] = {}
            for request in self.cells():
                keyed.setdefault(self.runner.request_key(request), request)
            self._keyed_cells = list(keyed.items())
        return list(self._keyed_cells)

    def shard_cells(self, index: int, count: int) -> List[Tuple[str, SimRequest]]:
        """The keyed cells owned by shard ``index`` of ``count``.

        Round-robin over the *sorted* content keys: every shard computes the
        same partition independently, and across ``0..count-1`` the slices
        are disjoint and exhaustive.
        """
        keyed = dict(self.keyed_cells())
        members = partition(keyed.keys(), index, count)
        return [(key, keyed[key]) for key in members]

    def prepare(self) -> Dict[str, object]:
        """Open the manifest and seed the full planned-cell set, running
        nothing.

        The fabric dispatcher calls this in the shared root before any host
        job starts, so ``repro status``/``repro monitor`` report meaningful
        done/leased/pending counts while the fleet is still warming up, and
        so ``repro sync --campaign`` can resolve the campaign's cell keys
        from the shared manifest alone.
        """
        manifest = self.store.begin(self.spec, self.mode)
        self._seed_cells(manifest)
        return manifest

    # ------------------------------------------------------------------
    # single-host execution (simulate everything, then assemble)
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, object]:
        """Execute the campaign; returns the run summary (also persisted).

        Cells run under failure isolation with bounded retries: a raising
        cell is retried (capped exponential backoff, deterministic jitter)
        up to ``retry_policy.max_attempts`` total attempts, then poisoned —
        recorded as a durable failure, skipped, and surfaced through a
        ``health`` section in the assembled result instead of aborting the
        whole campaign.
        """
        manifest = self.prepare()
        requests = self.cells()
        started = time.perf_counter()
        stats_before = self.runner.stats.copy()

        self._open_journal(f"run-{default_owner()}")
        self._emit("worker.started", mode="run", run_mode=self.mode,
                   cells=len(self.keyed_cells()))
        self.progress(
            f"[{self.spec.name}] {len(requests)} cells across "
            f"{len(self.cell_workloads())} workloads ({self.mode} mode)"
        )
        executed, failures = (
            self._drive_cells(requests) if requests else (0, {})
        )
        cell_stats = self.runner.stats.since(stats_before)
        succeeded = [
            request for request in requests
            if self.runner.request_key(request) not in failures
        ]
        self._record_cells(manifest, succeeded)
        if failures:
            self._record_failed_cells(manifest, failures)
            self.progress(
                f"[{self.spec.name}] WARNING: {len(failures)} cell(s) "
                f"poisoned after {self.retry_policy.max_attempts} attempts "
                f"— assembling a degraded artefact"
            )
        if requests:
            self.progress(
                f"[{self.spec.name}] cells done: {executed} simulated, "
                f"{len(succeeded) - executed} from cache "
                f"({cell_stats.simulation_seconds:.1f}s simulating)"
            )
        summary = self._assemble(manifest, started, stats_before,
                                 cells_total=len(requests), executed=executed,
                                 failures=failures or None)
        self._emit("worker.stopped", mode="run",
                   **self.runner.stats.since(stats_before).as_dict())
        return summary

    def _drive_cells(
        self, requests: List[SimRequest], processes: Optional[int] = None,
    ) -> Tuple[int, Dict[str, Dict[str, object]]]:
        """Simulate ``requests`` with isolation + bounded, backed-off retries.

        Returns ``(executed, poisoned)``: the number of simulations actually
        run, and the final failure record of every cell that exhausted its
        retry budget.  Successes land in the caches exactly as with
        :meth:`ParallelExperimentRunner.warm`.
        """
        policy = self.retry_policy
        attempts: Dict[str, int] = {
            key: int(record.get("attempts", 0))
            for key, record in self.store.failures().items()
        }
        owner = default_owner()
        executed_total = 0
        dead: Dict[str, Dict[str, object]] = {}
        pending: List[Tuple[SimRequest, str]] = []
        for request in requests:
            key = self.runner.request_key(request)
            if policy.poisoned(attempts.get(key, 0)):
                # Poisoned by an earlier run; don't burn attempts re-proving it.
                dead[key] = self.store.read_failure(key) or {
                    "key": key, "attempts": attempts.get(key, 0),
                    "poisoned": True,
                }
            else:
                pending.append((request, key))
        while pending:
            for request, key in pending:
                prior = attempts.get(key, 0)
                self._emit("cell.started", key=key, attempt=prior + 1,
                           workload=request.workload, variant=request.label)
                if prior > 0:
                    self._emit("cell.retried", key=key, attempt=prior + 1)
            executed, failures = self.runner.warm_isolated(
                [request for request, _key in pending],
                processes=processes,
                attempts={key: attempts.get(key, 0) for _request, key in pending},
            )
            executed_total += executed
            retrying: List[Tuple[SimRequest, str]] = []
            for request, key in pending:
                info = failures.get(key)
                if info is None:
                    self._emit("cell.finished", key=key,
                               workload=request.workload,
                               variant=request.label,
                               **self._cell_measures(key))
                    continue
                count = attempts.get(key, 0) + 1
                attempts[key] = count
                record = make_failure_record(
                    key, info, count, policy, owner=owner,
                    workload=request.workload, variant=request.label,
                )
                self.store.record_failure(key, record)
                poisoned_now = record_poisoned(record)
                self._emit("cell.failed", key=key, attempt=count,
                           workload=request.workload, variant=request.label,
                           error_type=info.get("error_type"),
                           message=info.get("message"),
                           poisoned=poisoned_now)
                if info.get("error_type") == "CellTimeout":
                    self._emit("watchdog.timeout", key=key, attempt=count)
                if poisoned_now:
                    self._emit("cell.poisoned", key=key, attempts=count)
                    dead[key] = record
                else:
                    retrying.append((request, key))
            pending = retrying
            if pending:
                # One deterministic-jitter backoff per round — the shortest
                # pending delay, so no cell waits longer than its own budget.
                time.sleep(min(
                    policy.backoff_seconds(key, attempts[key])
                    for _request, key in pending
                ))
        return executed_total, dead

    # ------------------------------------------------------------------
    # sharded execution
    # ------------------------------------------------------------------
    def run_shard(self, index: int, count: int) -> Dict[str, object]:
        """Simulate the static shard ``index``/``count`` of the cell matrix.

        Artefact assembly is deliberately *not* part of a shard run — once
        every shard has landed its cells in the shared disk cache, any
        process renders the final artefacts with :meth:`finalize`
        (``repro merge``).
        """
        self._require_disk_cache(f"--shard {index}/{count}")
        manifest = self.prepare()
        keyed = self.shard_cells(index, count)
        requests = [request for _key, request in keyed]
        total = len(self.keyed_cells())
        started = time.perf_counter()
        stats_before = self.runner.stats.copy()

        self._open_journal(f"shard-{index}-of-{count}-{default_owner()}")
        self._emit("worker.started", mode="shard", shard=f"{index}/{count}",
                   run_mode=self.mode, cells=len(requests),
                   cells_total=total)
        self.progress(
            f"[{self.spec.name}] shard {index}/{count}: {len(requests)} of "
            f"{total} cells ({self.mode} mode)"
        )
        for key, request in keyed:
            # Static assignment is this mode's "claim": the partition is the
            # lease, computed identically by every shard.
            self._emit("cell.claimed", key=key, static=True,
                       workload=request.workload, variant=request.label)
        executed = self.runner.warm(requests) if requests else 0
        for key, request in keyed:
            self._emit("cell.finished", key=key, workload=request.workload,
                       variant=request.label, **self._cell_measures(key))
        self._record_cells(manifest, requests, owner=f"shard-{index}/{count}")
        run_stats = self.runner.stats.since(stats_before)

        summary: Dict[str, object] = {
            "mode": self.mode,
            "shard": f"{index}/{count}",
            "cells_total": total,
            "cells_in_shard": len(requests),
            "cells_simulated": executed,
            "cells_from_cache": len(requests) - executed,
            "wall_seconds": round(time.perf_counter() - started, 2),
        }
        summary.update(run_stats.as_dict())
        self.store.record_run(manifest, summary)
        self._emit("worker.stopped", mode="shard", shard=f"{index}/{count}",
                   **run_stats.as_dict())
        self.progress(
            f"[{self.spec.name}] shard {index}/{count} done: {executed} "
            f"simulated, {len(requests) - executed} from cache"
        )
        return summary

    def run_worker(
        self,
        owner: Optional[str] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        batch_size: int = 4,
        poll_seconds: float = 2.0,
        max_cells: Optional[int] = None,
        finalize: bool = True,
    ) -> Dict[str, object]:
        """Lease-driven worker loop: claim, simulate, release, repeat.

        The loop ends when every cell of the campaign is in the shared disk
        cache (no matter who computed it).  While other live workers hold
        leases on the remaining cells, this worker polls every
        ``poll_seconds``; leases of crashed workers expire after ``ttl``
        seconds and are reclaimed here.  Within a claimed batch, cells are
        simulated one at a time and the not-yet-started leases renewed after
        each, so ``ttl`` only needs to outlast a single cell.

        ``max_cells`` bounds how many cells this worker may claim (testing /
        budgeted orchestrators); the loop then exits without waiting for the
        campaign to complete.  When the campaign does complete and
        ``finalize`` is set, the final artefact is assembled right here —
        any worker can do it, the result is deterministic and the write
        atomic, so concurrent finalisers are harmless.
        """
        if batch_size < 1:
            # claim_cells(limit=0) returns [] which the loop would misread
            # as "everything is leased elsewhere" and poll forever.
            raise ValueError(f"batch_size must be >= 1 (got {batch_size})")
        self._require_disk_cache("--worker")
        owner = owner or default_owner()
        policy = self.retry_policy
        manifest = self.prepare()
        keyed = self.keyed_cells()
        requests_by_key = dict(keyed)
        all_requests = [request for _key, request in keyed]
        started = time.perf_counter()
        stats_before = self.runner.stats.copy()
        claimed_total = 0
        waiting_logged = False
        interrupted = False

        self._open_journal(owner)
        self._emit("worker.started", mode="worker", run_mode=self.mode,
                   cells=len(keyed), ttl=ttl, batch_size=batch_size)
        self.progress(
            f"[{self.spec.name}] worker {owner}: {len(keyed)} cells "
            f"({self.mode} mode, ttl {ttl:g}s)"
        )
        all_keys = [key for key, _request in keyed]
        screen_logged = False
        previous_handlers = self._install_signal_handlers()
        try:
            while True:
                reclaimed = self.store.reclaim_stale()
                if reclaimed:
                    self._emit("lease.reclaimed", count=len(reclaimed),
                               keys=sorted(reclaimed))
                availability = self.runner.screen(all_requests, keys=all_keys)
                if not screen_logged:
                    # Only the first screen is journaled: the poll loop
                    # re-screens every few seconds and a per-poll event
                    # would bloat the journal without adding information.
                    hits = sum(1 for done in availability.values() if done)
                    self._emit("cache.screen", hits=hits,
                               misses=len(availability) - hits)
                    screen_logged = True
                records = self.store.failures()
                unfinished = [key for key, _request in keyed
                              if not availability[key]]
                # Poisoned cells are permanently failed: no worker touches
                # them again; the campaign converges around them (degraded).
                open_cells = [key for key in unfinished
                              if not record_poisoned(records.get(key))]
                if not open_cells:
                    break
                if max_cells is not None and claimed_total >= max_cells:
                    break
                # Back-off gate: a cell that just failed is only claimable
                # again once its (deterministically jittered) retry_at
                # passes — shared through the store, so *no* worker claims
                # it early.
                ready = [key for key in open_cells
                         if record_retry_ready(records.get(key))]
                limit = batch_size
                if max_cells is not None:
                    limit = min(limit, max_cells - claimed_total)
                claimed = (
                    self.store.claim_cells(ready, owner, ttl=ttl, limit=limit)
                    if ready else []
                )
                if not claimed:
                    # Every open cell is leased to another live worker or
                    # waiting out a retry backoff: poll until claimable.
                    if not waiting_logged:
                        self.progress(
                            f"[{self.spec.name}] worker {owner}: waiting on "
                            f"{len(open_cells)} leased/backing-off cell(s)"
                        )
                        waiting_logged = True
                    time.sleep(poll_seconds)
                    continue
                waiting_logged = False
                claimed_total += len(claimed)
                remaining = list(claimed)
                for key in claimed:
                    claimed_request = requests_by_key[key]
                    self._emit("cell.claimed", key=key,
                               workload=claimed_request.workload,
                               variant=claimed_request.label)
                try:
                    for key in claimed:
                        # Chaos site: a seeded kill fault drops the whole
                        # worker process right here — holding leases, like a
                        # real OOM kill.  Survivors reclaim after the TTL.
                        faults.probe(faults.SITE_WORKER_KILL, key=key)
                        request = requests_by_key[key]
                        prior = int((records.get(key) or {}).get("attempts", 0))
                        self._emit("cell.started", key=key, attempt=prior + 1,
                                   workload=request.workload,
                                   variant=request.label)
                        if prior > 0:
                            self._emit("cell.retried", key=key,
                                       attempt=prior + 1)
                        cell_stats_before = self.runner.stats.copy()
                        # Inline execution (one cell = one workload group, so
                        # a pool adds overhead without parallelism) — or a
                        # watchdog subprocess when --cell-timeout is set.
                        info = self._run_cell_guarded(request, key, prior)
                        cell_stats = self.runner.stats.since(cell_stats_before)
                        remaining.remove(key)
                        if info is None:
                            self._emit("cell.finished", key=key,
                                       workload=request.workload,
                                       variant=request.label,
                                       **self._cell_measures(key, cell_stats))
                            self._record_cells(manifest, [request], owner=owner)
                            self.store.release_leases([key], owner)
                            self.progress(
                                f"[{self.spec.name}] worker {owner}: cell "
                                f"{request.workload}/"
                                f"{request.label or request.kind} done"
                            )
                        else:
                            count = prior + 1
                            record = make_failure_record(
                                key, info, count, policy, owner=owner,
                                workload=request.workload,
                                variant=request.label,
                            )
                            self.store.record_failure(key, record)
                            records[key] = record
                            self._emit("cell.failed", key=key, attempt=count,
                                       workload=request.workload,
                                       variant=request.label,
                                       error_type=info.get("error_type"),
                                       message=info.get("message"),
                                       poisoned=record_poisoned(record))
                            if info.get("error_type") == "CellTimeout":
                                self._emit("watchdog.timeout", key=key,
                                           attempt=count)
                            if record_poisoned(record):
                                self._emit("cell.poisoned", key=key,
                                           attempts=count)
                                self._record_failed_cells(
                                    manifest, {key: record})
                            self.store.release_leases([key], owner)
                            state = ("poisoned" if record_poisoned(record)
                                     else "will retry")
                            self.progress(
                                f"[{self.spec.name}] worker {owner}: cell "
                                f"{request.workload}/"
                                f"{request.label or request.kind} FAILED "
                                f"(attempt {count}/{policy.max_attempts}, "
                                f"{info.get('error_type')}: "
                                f"{info.get('message')}) — {state}"
                            )
                        if remaining:
                            renewed = self.store.renew_leases(
                                remaining, owner, ttl=ttl)
                            self._emit("lease.renewed", count=renewed,
                                       held=len(remaining))
                finally:
                    # On an exception, signal or Ctrl-C mid-batch, hand the
                    # unfinished claims straight back instead of making
                    # everyone (including our own restart, which gets a
                    # fresh pid-based owner) wait out the TTL.
                    if remaining:
                        self.store.release_leases(remaining, owner)
        except WorkerShutdown as shutdown:
            interrupted = True
            self._emit("worker.signal", reason=str(shutdown))
            self.progress(
                f"[{self.spec.name}] worker {owner}: {shutdown} — leases "
                f"released, exiting cleanly (rerun to resume)"
            )
        finally:
            self._restore_signal_handlers(previous_handlers)

        run_stats = self.runner.stats.since(stats_before)
        unfinished = self.unfinished_cells()
        failure_records = self.store.failures()
        poisoned = {key: failure_records[key] for key in unfinished
                    if record_poisoned(failure_records.get(key))}
        complete = not unfinished
        # Converged: nothing left to run — every cell is either done or
        # permanently failed.  That is finalisable (degraded when poisoned
        # cells exist); an interrupted worker never finalises.
        converged = (not interrupted
                     and all(key in poisoned for key in unfinished))
        summary: Dict[str, object] = {
            "mode": self.mode,
            "worker": owner,
            "cells_total": len(keyed),
            "cells_claimed": claimed_total,
            "cells_simulated": run_stats.simulations,
            "cells_failed": len(poisoned),
            "wall_seconds": round(time.perf_counter() - started, 2),
        }
        if interrupted:
            summary["interrupted"] = True
        summary.update(run_stats.as_dict())
        self.store.record_run(manifest, summary)
        summary["complete"] = complete
        if (self.runner.disk_cache is not None
                and self.runner.disk_cache.quarantine_count() > 0):
            self._emit("cache.quarantine",
                       count=self.runner.disk_cache.quarantine_count())
        self._emit("worker.stopped", mode="worker",
                   cells_claimed=claimed_total, interrupted=interrupted,
                   complete=complete, **run_stats.as_dict())
        if converged and finalize:
            summary["finalized"] = True
            self.finalize(manifest=manifest)
        return summary

    # ------------------------------------------------------------------
    def _install_signal_handlers(self) -> Dict[int, object]:
        """Route SIGTERM/SIGINT into :class:`WorkerShutdown` (main thread
        only — worker loops driven from helper threads keep the process
        defaults, and tests do exactly that)."""
        import signal
        import threading

        if threading.current_thread() is not threading.main_thread():
            return {}
        previous: Dict[int, object] = {}

        def _handler(signum: int, _frame) -> None:
            raise WorkerShutdown(f"received signal {signum}")

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):   # non-main interpreter quirks
                pass
        return previous

    def _restore_signal_handlers(self, previous: Dict[int, object]) -> None:
        import signal

        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError, TypeError):
                pass

    # ------------------------------------------------------------------
    def _run_cell_guarded(self, request: SimRequest, key: str,
                          prior_attempts: int) -> Optional[Dict[str, object]]:
        """Execute one cell; returns its failure payload, or None on success.

        Without a ``cell_timeout`` the cell runs inline under isolation;
        with one, it runs in a watchdog subprocess whose result lands in the
        shared disk cache — exceeding the wall-clock budget terminates the
        subprocess and reports a retryable :class:`CellTimeout`.
        """
        if self.cell_timeout is None:
            _executed, failures = self.runner.warm_isolated(
                [request], processes=1, attempts={key: prior_attempts})
            return failures.get(key)
        return self._run_cell_watchdog(request, key, prior_attempts)

    def _run_cell_watchdog(self, request: SimRequest, key: str,
                           prior_attempts: int) -> Optional[Dict[str, object]]:
        import multiprocessing
        import tempfile

        self._require_disk_cache("--cell-timeout")
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        fd, report_name = tempfile.mkstemp(prefix="repro-watchdog-",
                                           suffix=".json")
        os.close(fd)
        report = Path(report_name)
        started = time.monotonic()
        process = ctx.Process(
            target=_watchdog_cell_main,
            args=(self.runner._ctor_kwargs(), request, key, prior_attempts,
                  report_name),
        )

        def _payload(error: BaseException) -> Dict[str, object]:
            info = exception_info(error, time.monotonic() - started)
            info.update({"workload": request.workload, "kind": request.kind,
                         "label": request.label})
            return info

        try:
            process.start()
            process.join(self.cell_timeout)
            if process.is_alive():
                process.terminate()
                process.join(5.0)
                if process.is_alive():
                    process.kill()
                    process.join(5.0)
                return _payload(CellTimeout(
                    f"cell exceeded --cell-timeout "
                    f"{self.cell_timeout:g}s wall clock"
                ))
            if process.exitcode == 0:
                try:
                    reported = json.loads(report.read_text())
                except (OSError, ValueError):
                    reported = {}
                if key in reported:
                    return reported[key]
                # Success: the child persisted the outcome to the shared
                # disk cache; pull it into this runner's memory caches.
                self.runner.screen([request], keys=[key])
                return None
            return _payload(CellCrashed(
                f"watchdog subprocess died with exit code {process.exitcode}"
            ))
        finally:
            try:
                report.unlink()
            except OSError:
                pass
            if process.is_alive():   # belt and braces on unexpected exits
                process.kill()

    def unfinished_cells(self) -> List[str]:
        """Content keys of cells whose results are not in any cache yet."""
        keyed = self.keyed_cells()
        availability = self.runner.screen(
            [request for _key, request in keyed],
            keys=[key for key, _request in keyed],
        )
        return [key for key, _request in keyed if not availability[key]]

    def finalize(self, manifest: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Assemble and persist the final artefact from cached cells.

        Raises :class:`CampaignIncomplete` when cells are still missing —
        finalisation never simulates matrix cells, so shard/worker runs must
        land first.  *Poisoned* cells (permanently failed after exhausting
        their retry budget) do not block finalisation: the artefact is
        assembled around them, carrying an explicit ``health`` section, so a
        partly-failed campaign yields partial artifacts instead of nothing.

        Deterministic by construction: the assembled tables and text depend
        only on the cached outcomes, so a merge after sharded execution is
        bit-identical to a single-host :meth:`run`.
        """
        if manifest is None:
            manifest = self.store.begin(self.spec, self.mode)
        self._open_journal(f"merge-{default_owner()}")
        keyed = self.keyed_cells()
        availability = self.runner.screen(
            [request for _key, request in keyed],
            keys=[key for key, _request in keyed],
        )
        missing = [key for key, _request in keyed if not availability[key]]
        failures: Optional[Dict[str, Dict[str, object]]] = None
        if missing:
            records = self.store.failures()
            poisoned = {key: records[key] for key in missing
                        if record_poisoned(records.get(key))}
            unaccounted = [key for key in missing if key not in poisoned]
            if unaccounted:
                hint = (
                    " (note: the disk cache is disabled in this process, so "
                    "results computed elsewhere are invisible — unset "
                    "REPRO_DISK_CACHE=0)"
                    if self.runner.disk_cache is None else ""
                )
                raise CampaignIncomplete(
                    f"campaign {self.spec.name!r}: {len(unaccounted)} of "
                    f"{len(keyed)} cells not simulated yet — run the "
                    f"remaining shards/workers before merging{hint}"
                )
            failures = poisoned
            self._record_failed_cells(manifest, poisoned)
        started = time.perf_counter()
        stats_before = self.runner.stats.copy()
        return self._assemble(manifest, started, stats_before,
                              cells_total=len(keyed), executed=0,
                              failures=failures)

    # ------------------------------------------------------------------
    def _assemble(self, manifest: Dict[str, object], started: float,
                  stats_before, cells_total: int, executed: int,
                  failures: Optional[Dict[str, Dict[str, object]]] = None,
                  ) -> Dict[str, object]:
        """Run the experiment module over the warmed caches and persist.

        ``failures`` (poisoned-cell records) switches degraded assembly on:
        the result gains a deterministic ``health`` section, and an
        exception from the experiment module — which may legitimately hit
        the same crash the poisoned cell did, since modules re-simulate
        missing cells — degrades to a stub artefact instead of propagating.
        The key is *absent* on clean runs, keeping fault-free artifacts
        byte-identical to earlier releases.
        """
        module = importlib.import_module(self.spec.experiment)
        try:
            result = module.run(self.runner)
            tables = self._tables(module, result)
            text = result.render()
        except Exception as error:
            if not failures:
                raise
            tables = {}
            text = (
                f"DEGRADED: artefact assembly failed over "
                f"{len(failures)} poisoned cell(s): "
                f"{type(error).__name__}: {error}"
            )
        run_stats = self.runner.stats.since(stats_before)
        wall = time.perf_counter() - started

        summary: Dict[str, object] = {
            "mode": self.mode,
            "cells_total": cells_total,
            "cells_simulated": executed,
            "cells_from_cache": cells_total - executed,
            "wall_seconds": round(wall, 2),
        }
        if failures:
            summary["cells_failed"] = len(failures)
        summary.update(run_stats.as_dict())
        self.store.record_run(manifest, summary)
        payload: Dict[str, object] = {
            "campaign": self.spec.name,
            "title": self.spec.title,
            "description": self.spec.description,
            "experiment": self.spec.experiment,
            "spec_fingerprint": self.spec.fingerprint(),
            "mode": self.mode,
            # Deterministic planned-cell count (deduped by content key);
            # the volatile per-run counters live under "run".
            "cells": len(self.keyed_cells()),
        }
        if failures:
            payload["health"] = self._health_section(failures)
        payload.update(
            {
                "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "tables": tables,
                "text": text,
                "run": summary,
            }
        )
        self.store.save_result(payload)

        self._emit("campaign.assembled",
                   health="degraded" if failures else "ok",
                   cells_total=cells_total,
                   cells_failed=len(failures) if failures else 0,
                   wall_seconds=round(wall, 2))
        # A fully cache-served assembly ran zero simulations, so its
        # instructions-per-second is 0.0 by construction — recording it
        # would poison the throughput trajectory with cache-hit noise.
        if self.bench_report and summary.get("simulations"):
            from repro.experiments.bench import update_bench_report

            try:
                update_bench_report(f"campaign_{self.spec.name}", summary)
            except OSError:
                pass   # read-only checkout: trajectory is best-effort
        self.progress(
            f"[{self.spec.name}] assembled in {wall:.1f}s "
            f"({run_stats.simulations} simulations, "
            f"{run_stats.memory_hits + run_stats.disk_hits} cache hits)"
        )
        return summary

    # ------------------------------------------------------------------
    def _require_disk_cache(self, what: str) -> None:
        if self.runner.disk_cache is None:
            raise ShardedExecutionError(
                f"{what} needs the shared disk cache to coordinate between "
                f"processes, but it is disabled (REPRO_DISK_CACHE=0) — "
                f"enable it, or run without sharding"
            )

    def _seed_cells(self, manifest: Dict[str, object]) -> None:
        """Register every planned cell as ``status: planned`` (idempotent).

        Seeding the full key set up front is what makes ``repro status``
        meaningful mid-campaign (done/leased/pending partition the whole
        matrix, not just the cells this process touched) and makes the
        lock-free manifest merge safe: counts derive from the seeded key
        set plus disk-cache truth, never from per-worker updates alone.
        """
        records: Dict[str, Dict[str, object]] = {}
        for key, request in self.keyed_cells():
            records[key] = {
                "workload": request.workload,
                "variant": request.label,
                "kind": request.kind,
                "status": "planned",
            }
        self.store.record_cells(manifest, records, overwrite=False)

    def _record_cells(self, manifest: Dict[str, object],
                      requests: List[SimRequest],
                      owner: Optional[str] = None) -> None:
        records: Dict[str, Dict[str, object]] = {}
        for request in requests:
            key = self.runner.request_key(request)
            record: Dict[str, object] = {
                "workload": request.workload,
                "variant": request.label,
                "kind": request.kind,
                "status": "done",
            }
            if owner is not None:
                record["completed_by"] = owner
            records[key] = record
        self.store.record_cells(manifest, records)

    @staticmethod
    def _health_section(
        failures: Dict[str, Dict[str, object]],
    ) -> Dict[str, object]:
        """The deterministic ``health`` block of a degraded result.

        Only content-determined fields (keys, exception identity, attempt
        counts) — no owners, timestamps or durations — so a degraded merge
        stays byte-identical to a degraded single-host run hitting the same
        deterministic failures.
        """
        return {
            "state": "degraded",
            "failed": [
                {
                    "key": key,
                    "workload": record.get("workload"),
                    "variant": record.get("variant"),
                    "error_type": record.get("error_type"),
                    "message": record.get("message"),
                    "traceback_digest": record.get("traceback_digest"),
                    "attempts": record.get("attempts"),
                }
                for key, record in sorted(failures.items())
            ],
        }

    def _record_failed_cells(self, manifest: Dict[str, object],
                             failures: Dict[str, Dict[str, object]]) -> None:
        """Mark poisoned cells ``status: failed`` in the manifest."""
        records: Dict[str, Dict[str, object]] = {}
        for key, record in failures.items():
            records[key] = {
                "workload": record.get("workload"),
                "variant": record.get("variant"),
                "kind": record.get("kind"),
                "status": "failed",
            }
        if records:
            self.store.record_cells(manifest, records)

    @staticmethod
    def _tables(module, result) -> Dict[str, List[Dict[str, object]]]:
        hook = getattr(module, "artifact_tables", None)
        if hook is None:
            return {}
        return {name: list(rows) for name, rows in hook(result).items()}


def _resolve_spec(campaign: Union[str, CampaignSpec]) -> CampaignSpec:
    if isinstance(campaign, str):
        from repro.campaign.registry import get_campaign

        spec = get_campaign(campaign)
        if spec is None:
            raise SpecError(f"unknown campaign {campaign!r} (try `repro list`)")
        return spec
    return campaign


def run_campaign(
    campaign: Union[str, CampaignSpec],
    quick: bool = True,
    processes: Optional[int] = None,
    store: Optional[CampaignStore] = None,
    runner: Optional[ParallelExperimentRunner] = None,
    progress: Optional[Progress] = None,
    bench_report: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Resolve ``campaign`` (name or spec) and execute it."""
    scheduler = CampaignScheduler(
        _resolve_spec(campaign), quick=quick, processes=processes, store=store,
        runner=runner, progress=progress, bench_report=bench_report,
        retry_policy=retry_policy, cell_timeout=cell_timeout,
    )
    return scheduler.run()
