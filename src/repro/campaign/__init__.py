"""repro.campaign — declarative, resumable experiment campaigns.

A *campaign* is a named, declarative description of one evaluation artefact
(a paper figure/table or a custom sweep): which experiment module assembles
it, which workloads it covers, and which (system, DLA) configuration
variants it simulates.  The subsystem around that description provides:

* :mod:`repro.campaign.spec` — the :class:`CampaignSpec`/:class:`ConfigVariant`
  dataclasses with a dict/JSON form, validation, and a content fingerprint;
* :mod:`repro.campaign.registry` — every paper figure/table registered as a
  built-in campaign, plus scenario sweeps beyond the paper's set;
* :mod:`repro.campaign.store` — a resumable result store under
  ``.repro_cache/campaigns/<name>/`` keyed by the same content fingerprints
  as the simulation disk cache, so a killed campaign restarts where it left
  off and re-runs nothing;
* :mod:`repro.campaign.scheduler` — flattens a spec into (workload, config)
  cells and drives them through
  :class:`~repro.experiments.parallel.ParallelExperimentRunner`;
* :mod:`repro.campaign.render` — CSV/JSON/Markdown artifact renderers;
* :mod:`repro.campaign.cli` — the ``repro`` console entry point
  (``list`` / ``run`` / ``render`` / ``status`` / ``clean``).
"""

from repro.campaign.registry import get_campaign, list_campaigns, register
from repro.campaign.scheduler import CampaignScheduler, run_campaign
from repro.campaign.spec import CampaignSpec, ConfigVariant
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStore",
    "ConfigVariant",
    "get_campaign",
    "list_campaigns",
    "register",
    "run_campaign",
]
