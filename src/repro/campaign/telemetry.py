"""Durable per-campaign event journal (the campaign telemetry spine).

Every campaign execution mode (:meth:`~repro.campaign.scheduler.
CampaignScheduler.run`, ``run_shard``, ``run_worker``, ``finalize``) writes
an append-only JSONL journal of what it did:

``.repro_cache/campaigns/<name>/events/<owner>.jsonl``

One file **per worker** (owner), so appends never contend across workers —
the same no-coordination principle as the lease files — and every frame is
fsync'd (:func:`repro.util.durability.append_durable`), so the journal of a
``kill -9``'d worker survives up to its last acknowledged event.  That is
what lets ``repro monitor`` reconstruct *what a dead worker was doing* from
disk truth alone.

Event vocabulary (``event`` field; cell granularity only, never per
instruction, so journaling is overhead-free on the simulator hot path):

=====================  =====================================================
``worker.started``     a run/shard/worker/merge began (mode, cell counts)
``worker.stopped``     …and finished (run-summary measures ride along)
``worker.signal``      SIGTERM/SIGINT converted into a clean shutdown
``cell.claimed``       a cell was claimed (lease) or statically assigned
``cell.started``       its simulation is about to run
``cell.retried``       …and this execution is attempt > 1
``cell.finished``      it landed in the shared cache (per-cell measures)
``cell.failed``        it raised (error identity, attempt count)
``cell.poisoned``      …and exhausted its retry budget
``watchdog.timeout``   the per-cell watchdog killed a hung/overran cell
``lease.renewed``      a worker pushed its batch leases forward
``lease.reclaimed``    stale leases of a dead worker were swept
``cache.screen``       a cache availability screen ran (hit/miss counts)
``cache.quarantine``   corrupt disk-cache entries were quarantined
``campaign.assembled`` the final artefact was assembled (health state)
=====================  =====================================================

Every event carries a monotonic (``t_mono``) and a wall-clock (``t_wall``)
timestamp, the emitting owner, a per-owner sequence number, and — for cell
events — the cell content key plus measures from the ``memsys`` telemetry
spine (instructions simulated, simulation wall seconds, instructions/s,
contention stall share).  Timestamps live **only** here: journals are
operational telemetry, never inputs to rendered campaign artifacts, so the
byte-identity invariant (sharded == single-host) is untouched.

Journals are merged and aggregated by :mod:`repro.campaign.monitor`.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.util.durability import append_durable

#: Directory (under the campaign store) holding one journal per owner.
EVENTS_DIR = "events"

#: Default sweep age for worker journals: older ones are stale debris from
#: long-dead runs and are swept on store open (the aged-orphan sweep's
#: telemetry sibling).  Long-lived fleet campaigns override it with
#: :data:`JOURNAL_TTL_ENV` so a multi-week dispatch does not lose its
#: workers' journals mid-run.
STALE_JOURNAL_AGE = 7 * 24 * 3600.0

#: Environment override for the stale-journal sweep age, in (fractional)
#: days.  Non-numeric or non-positive values fall back to the default —
#: hygiene must never turn a typo into an instant journal wipe.
JOURNAL_TTL_ENV = "REPRO_JOURNAL_TTL_DAYS"


def stale_journal_age() -> float:
    """The effective stale-journal sweep age in seconds.

    ``REPRO_JOURNAL_TTL_DAYS`` (fractional days, must be > 0) overrides the
    :data:`STALE_JOURNAL_AGE` default; invalid values are ignored.
    """
    text = os.environ.get(JOURNAL_TTL_ENV)
    if text:
        try:
            days = float(text)
        except ValueError:
            days = 0.0
        if days > 0.0:
            return days * 24 * 3600.0
    return STALE_JOURNAL_AGE

_OWNER_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def journal_filename(owner: str) -> str:
    """The journal file name for ``owner`` (filesystem-safe, stable)."""
    safe = _OWNER_SAFE.sub("_", owner) or "owner"
    return f"{safe}.jsonl"


class EventJournal:
    """Append-only, fsync'd JSONL journal for one campaign owner.

    Emission is best-effort by design: telemetry must never turn a
    read-only or full filesystem into a failed campaign, so write errors
    disable the journal for the rest of the run instead of raising.
    """

    def __init__(self, events_dir: Path, owner: str,
                 enabled: bool = True) -> None:
        self.owner = owner
        self.path = Path(events_dir) / journal_filename(owner)
        self.enabled = enabled
        self._seq = 0

    def emit(self, event: str, key: Optional[str] = None,
             **fields: object) -> Optional[Dict[str, object]]:
        """Append one event frame; returns the record (None when disabled)."""
        if not self.enabled:
            return None
        record: Dict[str, object] = {
            "event": event,
            "owner": self.owner,
            "seq": self._seq,
            "t_wall": round(time.time(), 6),
            "t_mono": round(time.monotonic(), 6),
        }
        if key is not None:
            record["key"] = key
        for name, value in fields.items():
            if value is not None:
                record[name] = value
        try:
            append_durable(
                self.path,
                (json.dumps(record, sort_keys=True) + "\n").encode("utf-8"),
            )
        except OSError:
            self.enabled = False
            return None
        self._seq += 1
        return record


def read_journal(path: Path) -> List[Dict[str, object]]:
    """Every well-formed event frame of one journal file, in append order.

    Torn tail frames (a writer crashed mid-append) and foreign garbage are
    skipped, never fatal — the journal of a killed worker must still parse.
    """
    events: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "event" in record:
            events.append(record)
    return events


def journal_paths(events_dir: Path) -> List[Path]:
    """Every journal file under ``events_dir``, sorted by name."""
    events_dir = Path(events_dir)
    if not events_dir.is_dir():
        return []
    return sorted(events_dir.glob("*.jsonl"))


def load_events(events_dir: Path) -> List[Dict[str, object]]:
    """Merge every owner journal into one deterministic global timeline.

    Ordering is content-determined: ``(t_wall, owner, seq)`` — wall clock
    first (the only cross-process ordering that exists), then owner name and
    per-owner sequence as total-order tiebreakers.  Re-merging the same
    journal files always yields the same sequence, byte for byte.
    """
    merged: List[Dict[str, object]] = []
    for path in journal_paths(events_dir):
        merged.extend(read_journal(path))
    merged.sort(key=lambda record: (
        record.get("t_wall", 0.0),
        str(record.get("owner", "")),
        record.get("seq", 0),
    ))
    return merged


def event_counts(events: Iterable[Dict[str, object]]) -> Dict[str, int]:
    """Occurrences per event name (the timeline's cheapest roll-up)."""
    counts: Dict[str, int] = {}
    for record in events:
        name = str(record.get("event"))
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


# ---------------------------------------------------------------------------
# per-cell measures (memsys telemetry spine -> journal fields)
# ---------------------------------------------------------------------------
def _stall_cycles(memsys: Optional[Dict]) -> float:
    """Sum of every ``stall_cycles`` leaf in a ``memsys`` telemetry dict."""
    if not memsys:
        return 0.0
    total = 0.0
    for key, value in memsys.items():
        if key == "stall_cycles":
            total += value
        elif isinstance(value, dict):
            total += _stall_cycles(value)
    return total


def outcome_measures(outcome: object) -> Dict[str, float]:
    """Content-determined measures of one cached cell outcome.

    Works across the three outcome shapes (baseline
    :class:`~repro.core.system.SimulationOutcome`, DLA
    :class:`~repro.dla.system.DlaOutcome`, and
    :class:`~repro.experiments.runner.SegmentedOutcome`): committed
    instructions, total core cycles (all simulated domains), contention
    stall cycles from the ``memsys`` spine, and the stall *share* (stalls
    over cycles) the anomaly detectors key on.
    """
    inner = getattr(outcome, "outcome", None)
    if inner is not None and hasattr(inner, "memsys"):   # SegmentedOutcome
        outcome = inner
    core = getattr(outcome, "core", None)
    if core is not None:                                  # SimulationOutcome
        committed = core.committed
        cycles = core.cycles
    else:                                                 # DlaOutcome-shaped
        main = getattr(outcome, "main", None)
        lookahead = getattr(outcome, "lookahead", None)
        committed = getattr(main, "committed", 0) + getattr(
            lookahead, "committed", 0)
        cycles = getattr(main, "cycles", 0.0) + getattr(
            lookahead, "cycles", 0.0)
    stall_cycles = _stall_cycles(getattr(outcome, "memsys", None))
    return {
        "instructions": int(committed),
        "cycles": round(float(cycles), 3),
        "stall_cycles": round(float(stall_cycles), 3),
        "stall_share": round(stall_cycles / cycles, 6) if cycles else 0.0,
    }


def sweep_stale_journals(events_dir: Path,
                         max_age_seconds: Optional[float] = None,
                         clear: bool = False) -> List[Path]:
    """Hygiene for the events directory (called from the store open path).

    ``clear`` drops *every* journal — used when the manifest is reset
    because the spec fingerprint or mode changed, making old journals
    describe a campaign shape that no longer exists.  Otherwise only
    journals older than ``max_age_seconds`` (long-dead runs) are swept;
    the ``None`` default resolves through :func:`stale_journal_age`, so
    ``REPRO_JOURNAL_TTL_DAYS`` tunes every sweep site at once.
    """
    from repro.util.durability import sweep_aged_files

    if clear:
        return sweep_aged_files(events_dir, "*.jsonl", -1.0)
    if max_age_seconds is None:
        max_age_seconds = stale_journal_age()
    return sweep_aged_files(events_dir, "*.jsonl", max_age_seconds)


__all__ = [
    "EVENTS_DIR",
    "JOURNAL_TTL_ENV",
    "STALE_JOURNAL_AGE",
    "stale_journal_age",
    "EventJournal",
    "event_counts",
    "journal_filename",
    "journal_paths",
    "load_events",
    "outcome_measures",
    "read_journal",
    "sweep_stale_journals",
]
