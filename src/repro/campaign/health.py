"""Campaign health primitives: failure records, retry policy, watchdogs.

PR 4/5 built a lease–worker–merge stack that assumes every cell simulates
cleanly.  This module is the vocabulary for when they don't:

* :class:`FailureRecord` helpers — structured, durable per-cell failure
  records (exception type, message, traceback digest, attempt count, owner,
  monotonic-clock duration) persisted by the
  :class:`~repro.campaign.store.CampaignStore` so failures are first-class
  data, not log noise;
* :class:`RetryPolicy` — bounded retries with capped exponential backoff
  and *deterministic* jitter (CRC-32 of the cell content key and attempt
  number, never wall-clock randomness), plus the poisoning rule: a cell
  that fails ``max_attempts`` times is marked poisoned and skipped by every
  subsequent worker instead of looping forever;
* :class:`CellTimeout` / :class:`CellCrashed` — what the subprocess
  watchdog converts hung or dying simulations into (both retryable);
* :class:`WorkerShutdown` — raised by the worker loop's SIGTERM/SIGINT
  handlers so a job-scheduler kill releases held leases instead of
  stranding cells for a full lease TTL.

Everything defaults to inert-but-bounded: no faults are injected anywhere,
and the default policy retries a failing cell twice before poisoning it.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.util.faults import stable_fraction

#: Default retry budget: first attempt + two retries, then poisoned.
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 30.0


class CellTimeout(RuntimeError):
    """A cell's watchdog subprocess exceeded the wall-clock timeout."""


class CellCrashed(RuntimeError):
    """A cell's watchdog subprocess died without reporting a result."""


class WorkerShutdown(BaseException):
    """A worker received SIGTERM/SIGINT and is stopping gracefully.

    Deliberately *not* an ``Exception``: the cell-isolation boundaries catch
    ``Exception`` to convert simulation crashes into failure records, and a
    shutdown request must sail through them (like ``KeyboardInterrupt``)
    instead of being recorded as a cell failure.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff + deterministic jitter.

    ``max_attempts`` counts total executions of a cell (first try included);
    a cell whose attempt counter reaches it is *poisoned* — recorded as a
    permanent failure and skipped by subsequent workers, so one
    deterministic crash cannot wedge a campaign.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_cap: float = DEFAULT_BACKOFF_CAP
    jitter: bool = True

    def poisoned(self, attempts: int) -> bool:
        return attempts >= self.max_attempts

    def backoff_seconds(self, key: str, attempts: int) -> float:
        """Delay before retry number ``attempts`` (1-based failure count).

        Exponential in the attempt count, capped, and jittered into
        ``[0.5, 1.5)`` of the nominal delay by a CRC-32 fraction of the
        cell key — deterministic across processes and hosts, so replays
        reproduce and thundering herds still decorrelate.
        """
        attempts = max(1, attempts)
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempts - 1)))
        if self.jitter:
            delay *= 0.5 + stable_fraction("retry-jitter", key, attempts)
        return delay


def traceback_digest(error: BaseException) -> str:
    """A short stable digest of an exception's formatted traceback.

    Two workers hitting the same deterministic crash produce the same
    digest, which is what lets failure records be compared and de-duplicated
    across the fleet without shipping full tracebacks around.
    """
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()[:12]


def exception_info(error: BaseException,
                   duration_seconds: float = 0.0) -> Dict[str, object]:
    """The portable failure payload for one raised exception."""
    return {
        "error_type": type(error).__name__,
        "message": str(error)[:500],
        "traceback_digest": traceback_digest(error),
        "duration_seconds": round(float(duration_seconds), 3),
    }


def make_failure_record(
    key: str,
    info: Mapping[str, object],
    attempts: int,
    policy: RetryPolicy,
    owner: Optional[str] = None,
    workload: Optional[str] = None,
    variant: Optional[str] = None,
    now: Optional[float] = None,
) -> Dict[str, object]:
    """A durable failure record for ``key`` after its ``attempts``-th failure.

    ``retry_at`` (absolute epoch seconds) gates when the cell becomes
    claimable again; ``poisoned`` marks it permanently failed.  ``info`` is
    an :func:`exception_info`-shaped payload from wherever the failure was
    observed (inline, pool worker, watchdog subprocess).
    """
    if now is None:
        now = time.time()
    poisoned = policy.poisoned(attempts)
    record: Dict[str, object] = {
        "key": key,
        "attempts": int(attempts),
        "poisoned": poisoned,
        "retry_at": None if poisoned else now + policy.backoff_seconds(key, attempts),
        "owner": owner,
        "workload": workload,
        "variant": variant,
    }
    record.update(dict(info))
    return record


def record_poisoned(record: Optional[Mapping[str, object]]) -> bool:
    return bool(record and record.get("poisoned"))


def record_retry_ready(record: Optional[Mapping[str, object]],
                       now: Optional[float] = None) -> bool:
    """Whether a failed cell's backoff window has passed (poisoned: never)."""
    if record is None:
        return True
    if record.get("poisoned"):
        return False
    retry_at = record.get("retry_at")
    if not isinstance(retry_at, (int, float)):
        return True
    if now is None:
        now = time.time()
    return now >= retry_at


def summarize_failures(
    records: Mapping[str, Mapping[str, object]],
    done_keys: Optional[set] = None,
) -> Dict[str, int]:
    """Roll failure records up into the counters ``repro status`` reports.

    ``failed`` counts poisoned cells that never (subsequently) completed;
    ``retries`` is the total number of recorded failed attempts — a cell
    that failed twice and then succeeded contributes 2 and does not count
    as failed.
    """
    done_keys = done_keys or set()
    failed = sum(
        1 for key, record in records.items()
        if record.get("poisoned") and key not in done_keys
    )
    retries = sum(int(record.get("attempts", 0)) for record in records.values())
    return {"failed": failed, "retries": retries}
