"""Resumable campaign result store.

One directory per campaign under ``.repro_cache/campaigns/<name>/`` holding:

``manifest.json``
    The spec (dict form), its content fingerprint, the run mode, and one
    record per (workload, variant) cell: content key, status and timing of
    the last run that touched it.

``result.json``
    The assembled artefact: structured tables (JSON rows), the experiment
    module's rendered text (verbatim), and run metadata.

Resumability does **not** depend on the manifest: ground truth for "has this
cell been simulated" is the fingerprint-keyed simulation disk cache (shared
with the figure modules and the benchmark suite).  The manifest records what
the campaign *planned* and what each run *observed*, so ``repro status`` can
report progress without simulating anything, and a spec change (different
fingerprint) visibly resets the bookkeeping while stale simulation results
remain impossible by construction (code-salted cache keys).

Writes are atomic (temp file + ``os.replace``), matching the disk cache's
concurrency contract.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

MANIFEST_NAME = "manifest.json"
RESULT_NAME = "result.json"


def campaigns_root(root: Optional[os.PathLike] = None) -> Path:
    """The campaigns directory (inside the simulation cache directory)."""
    if root is not None:
        return Path(root)
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)) / "campaigns"


def _atomic_write_json(path: Path, payload: object, sort_keys: bool = True) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n")
    os.replace(tmp, path)


class CampaignStore:
    """Manifest + result persistence for one campaign."""

    def __init__(self, name: str, root: Optional[os.PathLike] = None) -> None:
        self.name = name
        self.directory = campaigns_root(root) / name

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def result_path(self) -> Path:
        return self.directory / RESULT_NAME

    def load_manifest(self) -> Optional[Dict[str, object]]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def save_manifest(self, manifest: Mapping[str, object]) -> None:
        payload = dict(manifest)
        payload["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        _atomic_write_json(self.manifest_path, payload)

    # ------------------------------------------------------------------
    def begin(self, spec: CampaignSpec, mode: str) -> Dict[str, object]:
        """Open (or reset) the manifest for a run of ``spec``.

        An existing manifest written for a different spec fingerprint or
        mode is reset — its cell bookkeeping describes a different campaign
        shape.  Simulation results are unaffected (they live in the shared
        disk cache under content keys).
        """
        fingerprint = spec.fingerprint()
        manifest = self.load_manifest()
        if (
            manifest is None
            or manifest.get("spec_fingerprint") != fingerprint
            or manifest.get("mode") != mode
        ):
            manifest = {
                "campaign": self.name,
                "spec": spec.to_dict(),
                "spec_fingerprint": fingerprint,
                "mode": mode,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "cells": {},
            }
        self.save_manifest(manifest)
        return manifest

    def record_cells(self, manifest: Dict[str, object],
                     records: Mapping[str, Mapping[str, object]]) -> None:
        """Merge per-cell records (key -> info) and persist the manifest."""
        cells = manifest.setdefault("cells", {})
        for key, info in records.items():
            cells[key] = dict(info)
        self.save_manifest(manifest)

    def record_run(self, manifest: Dict[str, object],
                   summary: Mapping[str, object]) -> None:
        manifest["last_run"] = dict(summary)
        self.save_manifest(manifest)

    # ------------------------------------------------------------------
    def save_result(self, payload: Mapping[str, object]) -> Path:
        # Insertion order is meaningful here: table rows keep the column
        # order their experiment module emitted.
        _atomic_write_json(self.result_path, dict(payload), sort_keys=False)
        return self.result_path

    def load_result(self) -> Optional[Dict[str, object]]:
        try:
            result = json.loads(self.result_path.read_text())
        except (OSError, ValueError):
            return None
        return result if isinstance(result, dict) else None

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Live progress summary: manifest bookkeeping + disk-cache truth."""
        manifest = self.load_manifest()
        if manifest is None:
            return {"campaign": self.name, "state": "never run"}
        from repro.experiments.cache import (
            ResultDiskCache, disk_cache_enabled, salted_key,
        )

        cells = manifest.get("cells", {})
        cached = 0
        if disk_cache_enabled():
            disk = ResultDiskCache()
            cached = sum(1 for key in cells if disk.contains(salted_key(key)))
        # A result only counts as complete if it was assembled for the
        # manifest's current spec/mode; a mode or spec change leaves the old
        # result.json behind until the new run finishes.
        result = self.load_result()
        complete = (
            result is not None
            and result.get("spec_fingerprint") == manifest.get("spec_fingerprint")
            and result.get("mode") == manifest.get("mode")
        )
        return {
            "campaign": self.name,
            "state": "complete" if complete else "partial",
            "mode": manifest.get("mode"),
            "cells_planned": len(cells),
            "cells_cached": cached,
            "has_result": self.result_path.exists(),
            "updated_at": manifest.get("updated_at"),
            "last_run": manifest.get("last_run"),
        }

    def clear(self) -> int:
        """Delete this campaign's manifest/result files; returns count."""
        removed = 0
        for path in (self.manifest_path, self.result_path):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.directory.rmdir()
        except OSError:
            pass
        return removed
