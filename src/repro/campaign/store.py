"""Resumable campaign result store, with cell leasing for sharded execution.

One directory per campaign under ``.repro_cache/campaigns/<name>/`` holding:

``manifest.json``
    The spec (dict form), its content fingerprint, the run mode, the manifest
    schema version, and one record per (workload, variant) cell: content key,
    status, and which worker completed it.

``result.json``
    The assembled artefact: structured tables (JSON rows), the experiment
    module's rendered text (verbatim), and run metadata.

``leases/``
    One JSON file per *leased* cell, named by the cell's content key and
    stamped with owner + expiry.  Leases are advisory work-claims for
    multi-worker execution: a worker atomically creates ``leases/<key>.json``
    before simulating the cell and removes it after the result lands in the
    shared disk cache.  A worker that dies mid-cell leaves its lease behind;
    once the TTL passes, any other worker reclaims it and finishes the cell.
    Creation uses ``os.link`` (atomic publish-with-content), so two workers
    racing for one cell cannot both win.

``events/``
    One append-only JSONL event journal per owner (worker/shard/run/merge)
    — the campaign telemetry spine (:mod:`repro.campaign.telemetry`),
    merged and aggregated by ``repro monitor``.  Operational only: journals
    never feed rendered artifacts, so they carry no determinism burden.

Resumability does **not** depend on the manifest or the leases: ground truth
for "has this cell been simulated" is the fingerprint-keyed simulation disk
cache (shared with the figure modules and the benchmark suite).  The
manifest records what the campaign *planned* and what each run *observed*,
so ``repro status`` can report progress without simulating anything, and a
spec change (different fingerprint) visibly resets the bookkeeping while
stale simulation results remain impossible by construction (code-salted
cache keys).  Losing a lease race or a manifest update is therefore never a
correctness problem — at worst a cell is simulated twice, and deterministic
simulation makes the duplicate byte-identical.

Writes are atomic (temp file + ``os.replace`` / ``os.link``), matching the
disk cache's concurrency contract.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.util.durability import atomic_write_text, sweep_orphan_tmps

MANIFEST_NAME = "manifest.json"
RESULT_NAME = "result.json"
LEASES_DIR = "leases"
#: One JSON file per *failed* cell (structured failure records: exception
#: type, traceback digest, attempt count, owner, retry/poison state).
#: Records persist after a later success so retry counts stay auditable.
FAILURES_DIR = "failures"
#: One append-only JSONL event journal per campaign owner (see
#: :mod:`repro.campaign.telemetry`).  Operational telemetry only — never an
#: input to rendered artifacts.
EVENTS_DIR = "events"

#: Fault-injection fire-ledger markers (``<cache>/faults/``, see
#: :mod:`repro.util.faults`) older than this are debris from finished chaos
#: runs; swept from the store open path alongside orphan temp files.
FAULT_LEDGER_AGE = 24 * 3600.0

#: Manifest layout version.  v2 added per-cell completion records
#: (``status``/``completed_by``) and the ``leases/`` directory; a v1 manifest
#: is reset on ``begin`` (cheap — cell results live in the shared cache).
MANIFEST_SCHEMA = 2

#: Default lease time-to-live.  Must comfortably exceed the wall time of one
#: cell batch; workers renew between cells, so the TTL only matters when a
#: worker dies (it bounds how long its claimed cells stay unavailable).
DEFAULT_LEASE_TTL = 600.0

#: Time-to-live of a *steal lock* — the tiny marker file serialising the
#: removal of one expired lease (read-check-unlink is not atomic; without
#: the lock, two reclaimers could each observe the stale lease and one of
#: them unlink the other's freshly published replacement).  Stealing is a
#: few syscalls, so this only bounds how long a reclaimer crashed mid-steal
#: can block that one cell.
STEAL_TTL = 30.0


def campaigns_root(root: Optional[os.PathLike] = None) -> Path:
    """The campaigns directory (inside the simulation cache directory)."""
    if root is not None:
        return Path(root)
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)) / "campaigns"


def _tmp_name(path: Path) -> Path:
    """A collision-free sibling temp path (unique per process *and* thread —
    in-process worker threads share the pid)."""
    import threading

    return path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
    )


def _atomic_write_json(path: Path, payload: object, sort_keys: bool = True) -> None:
    # Fsync-before-rename (see repro.util.durability): a crash mid-write can
    # leave old content or new content under the final name, never garbage.
    atomic_write_text(
        path,
        json.dumps(payload, indent=2, sort_keys=sort_keys) + "\n",
        tmp=_tmp_name(path),
    )


class CampaignStore:
    """Manifest + result persistence and cell leasing for one campaign."""

    def __init__(self, name: str, root: Optional[os.PathLike] = None) -> None:
        self.name = name
        self.directory = campaigns_root(root) / name

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def result_path(self) -> Path:
        return self.directory / RESULT_NAME

    @property
    def leases_path(self) -> Path:
        return self.directory / LEASES_DIR

    @property
    def failures_path(self) -> Path:
        return self.directory / FAILURES_DIR

    @property
    def events_path(self) -> Path:
        return self.directory / EVENTS_DIR

    def load_manifest(self) -> Optional[Dict[str, object]]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def save_manifest(self, manifest: Mapping[str, object]) -> None:
        payload = dict(manifest)
        payload["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        _atomic_write_json(self.manifest_path, payload)

    # ------------------------------------------------------------------
    def begin(self, spec: CampaignSpec, mode: str) -> Dict[str, object]:
        """Open (or reset) the manifest for a run of ``spec``.

        An existing manifest written for a different spec fingerprint, mode
        or schema version is reset — its cell bookkeeping describes a
        different campaign shape.  Simulation results are unaffected (they
        live in the shared disk cache under content keys).
        """
        fingerprint = spec.fingerprint()
        manifest = self.load_manifest()
        had_manifest = manifest is not None
        reset = (
            manifest is None
            or manifest.get("spec_fingerprint") != fingerprint
            or manifest.get("mode") != mode
            or manifest.get("schema") != MANIFEST_SCHEMA
        )
        if reset:
            manifest = {
                "schema": MANIFEST_SCHEMA,
                "campaign": self.name,
                "spec": spec.to_dict(),
                "spec_fingerprint": fingerprint,
                "mode": mode,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "cells": {},
            }
        # Hygiene on open: writers killed mid-write leave `*.tmp.*` debris
        # next to the manifest, leases and failure records; sweep aged ones
        # (age-gated, so live concurrent writers are never raced).
        for directory in (self.directory, self.leases_path, self.failures_path):
            sweep_orphan_tmps(directory)
        self._sweep_telemetry(clear_events=reset and had_manifest)
        self.save_manifest(manifest)
        return manifest

    def _sweep_telemetry(self, clear_events: bool = False) -> None:
        """Age-gated hygiene for accumulating per-run debris.

        Covers the two sources the orphan-temp sweep does not: event
        journals of long-dead owners (or *all* journals when the manifest
        was just reset — they describe a campaign shape that no longer
        exists), and fault-injection fire-ledger markers left behind by
        finished chaos runs.  The journal sweep age defaults to seven days
        and is tuned with ``REPRO_JOURNAL_TTL_DAYS`` (see
        :func:`repro.campaign.telemetry.stale_journal_age`) so long-lived
        fleet campaigns keep their worker journals for the whole run.
        """
        from repro.campaign.telemetry import sweep_stale_journals
        from repro.util.durability import sweep_aged_files
        from repro.util.faults import default_ledger_dir

        sweep_stale_journals(self.events_path, clear=clear_events)
        sweep_aged_files(default_ledger_dir(), "*", FAULT_LEDGER_AGE)

    def record_cells(self, manifest: Dict[str, object],
                     records: Mapping[str, Mapping[str, object]],
                     overwrite: bool = True) -> None:
        """Merge per-cell records (key -> info) and persist the manifest.

        Concurrent workers each hold their own manifest dict; to keep their
        updates from clobbering each other, the on-disk manifest is re-read
        and merged under the same fingerprint/mode before writing.  A lost
        update under that (lock-free) merge can only cost per-cell
        bookkeeping detail (``completed_by``) — cell *counts* stay correct
        because every run seeds the full planned-cell set up front
        (``overwrite=False``) and ``status()`` derives done-ness from the
        disk cache, never from these records.
        """
        disk = self.load_manifest()
        if (
            disk is not None
            and disk.get("spec_fingerprint") == manifest.get("spec_fingerprint")
            and disk.get("mode") == manifest.get("mode")
        ):
            # Take the disk copy as the base and lay our records over it —
            # except never demote another worker's "done" record with our
            # not-yet-done copy of the same cell.
            merged = dict(disk.get("cells", {}))
            for key, info in manifest.get("cells", {}).items():
                current = merged.get(key)
                if (
                    current is None
                    or current.get("status") != "done"
                    or info.get("status") == "done"
                ):
                    merged[key] = info
            manifest["cells"] = merged
        cells = manifest.setdefault("cells", {})
        for key, info in records.items():
            if overwrite or key not in cells:
                cells[key] = dict(info)
        self.save_manifest(manifest)

    def record_run(self, manifest: Dict[str, object],
                   summary: Mapping[str, object]) -> None:
        manifest["last_run"] = dict(summary)
        self.save_manifest(manifest)

    # ------------------------------------------------------------------
    # failure records
    # ------------------------------------------------------------------
    def _failure_path(self, key: str) -> Path:
        return self.failures_path / f"{key}.json"

    def read_failure(self, key: str) -> Optional[Dict[str, object]]:
        """The durable failure record for ``key`` (``None`` if it never
        failed, or the record is unreadable)."""
        try:
            record = json.loads(self._failure_path(key).read_text())
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def record_failure(self, key: str, record: Mapping[str, object]) -> None:
        """Persist (overwrite) the failure record for one cell.

        One file per cell, so concurrent workers failing *different* cells
        never contend; two workers failing the *same* cell is already
        prevented by its lease, so last-writer-wins is safe here.
        """
        _atomic_write_json(self._failure_path(key), dict(record))

    def clear_failure(self, key: str) -> None:
        """Forget a cell's failure record (used by tests/manual resets; a
        successful retry deliberately keeps the record for audit)."""
        try:
            self._failure_path(key).unlink()
        except OSError:
            pass

    def failures(self) -> Dict[str, Dict[str, object]]:
        """Every cell failure record, keyed by cell content key."""
        records: Dict[str, Dict[str, object]] = {}
        if not self.failures_path.is_dir():
            return records
        for path in sorted(self.failures_path.glob("*.json")):
            key = path.name[: -len(".json")]
            record = self.read_failure(key)
            if record is not None:
                records[key] = record
        return records

    # ------------------------------------------------------------------
    # cell leasing
    # ------------------------------------------------------------------
    def _lease_path(self, key: str) -> Path:
        return self.leases_path / f"{key}.json"

    def read_lease(self, key: str) -> Optional[Dict[str, object]]:
        """The lease record for ``key`` (``None`` if absent or unreadable)."""
        try:
            lease = json.loads(self._lease_path(key).read_text())
        except (OSError, ValueError):
            return None
        return lease if isinstance(lease, dict) else None

    def _lease_live(self, lease: Optional[Dict[str, object]],
                    now: float) -> bool:
        if lease is None:
            return False
        expires = lease.get("expires_at")
        return isinstance(expires, (int, float)) and now < expires

    def _publish_lease(self, key: str, payload: Dict[str, object]) -> bool:
        """Atomically create ``leases/<key>.json``; False if it exists.

        ``os.link`` publishes the fully-written temp file under the lease
        name in one step, so a concurrent reader can never observe a
        partially-written lease and two racing claimers cannot both win.
        """
        self.leases_path.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(key)
        tmp = _tmp_name(path)
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    def _steal_path(self, key: str) -> Path:
        # ``.json.steal`` so the ``*.json`` lease globs never see it.
        path = self._lease_path(key)
        return path.with_name(path.name + ".steal")

    def _acquire_steal(self, key: str, owner: str) -> bool:
        """Serialise the removal of one stale lease (see :data:`STEAL_TTL`).

        Atomic create-with-content, exactly like leases; an aged steal lock
        (crashed reclaimer) is swept and the acquisition retried once.
        """
        path = self._steal_path(key)
        payload = {"key": key, "owner": owner, "created_at": time.time()}
        for _attempt in (0, 1):
            tmp = _tmp_name(path)
            tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
            try:
                os.link(tmp, path)
                return True
            except FileExistsError:
                pass
            finally:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            try:
                held = json.loads(path.read_text())
                created = held.get("created_at", 0.0)
            except (OSError, ValueError):
                created = 0.0
            if time.time() - created < STEAL_TTL:
                return False
            try:
                path.unlink()
            except OSError:
                pass
        return False

    def _release_steal(self, key: str) -> None:
        try:
            self._steal_path(key).unlink()
        except OSError:
            pass

    def _reclaim_one(self, key: str, owner: str,
                     publish: Optional[Dict[str, object]] = None) -> bool:
        """Remove ``key``'s stale lease under the steal lock; optionally
        publish ``publish`` as the replacement lease in the same critical
        section.  Returns True when the caller won (lease removed, and the
        replacement — if requested — published)."""
        if not self._acquire_steal(key, owner):
            return False
        try:
            # Re-check under the lock: the lease may have been renewed or
            # replaced since the caller observed it stale.
            if self._lease_live(self.read_lease(key), time.time()):
                return False
            try:
                self._lease_path(key).unlink()
            except OSError:
                pass
            if publish is not None:
                return self._publish_lease(key, publish)
            return True
        finally:
            self._release_steal(key)

    def claim_cells(self, keys: Iterable[str], owner: str,
                    ttl: float = DEFAULT_LEASE_TTL,
                    limit: Optional[int] = None) -> List[str]:
        """Atomically claim up to ``limit`` unleased cells for ``owner``.

        A cell with a live lease held by anyone (including ``owner``) is
        skipped; a stale (expired) or corrupt lease is removed — serialised
        by a per-cell steal lock, so racing reclaimers cannot unlink each
        other's fresh replacement — and the claim retried, so crashed
        workers' cells flow back automatically.  Returns the keys actually
        claimed, in input order.
        """
        now = time.time()
        claimed: List[str] = []
        for key in keys:
            if limit is not None and len(claimed) >= limit:
                break
            payload = {
                "key": key,
                "owner": owner,
                "created_at": now,
                "expires_at": now + ttl,
            }
            if self._publish_lease(key, payload):
                claimed.append(key)
                continue
            if self._lease_live(self.read_lease(key), now):
                continue
            if self._reclaim_one(key, owner, publish=payload):
                claimed.append(key)
        return claimed

    def renew_leases(self, keys: Iterable[str], owner: str,
                     ttl: float = DEFAULT_LEASE_TTL) -> int:
        """Push the expiry of ``owner``'s *live* leases forward; returns count.

        Leases held by someone else, already reclaimed, or already expired
        are left alone — an expired lease is lost (a reclaimer may be
        removing it right now), and resurrecting it could duplicate a cell.
        The renewing worker should treat unrenewed cells as lost.

        Renewal happens under the same per-cell steal lock as reclaiming:
        read-check-rewrite is not atomic, so without the lock a reclaimer
        could observe the lease expired, steal it, and then have this renew
        resurrect the stolen lease — two owners for one cell.  Under the
        lock, either the reclaimer wins (renew sees the lease gone/expired
        and reports it lost) or the renew wins (the reclaimer's re-check
        sees the pushed-forward expiry and backs off).
        """
        renewed = 0
        for key in keys:
            lease = self.read_lease(key)
            if lease is None or lease.get("owner") != owner:
                continue
            if not self._lease_live(lease, time.time()):
                continue
            if not self._acquire_steal(key, owner):
                # A reclaimer holds the lock right now; skip rather than
                # block — the worker renews again between cells, and an
                # unrenewed live lease is still live.
                continue
            try:
                lease = self.read_lease(key)
                if (
                    lease is None
                    or lease.get("owner") != owner
                    or not self._lease_live(lease, time.time())
                ):
                    continue
                lease["expires_at"] = time.time() + ttl
                _atomic_write_json(self._lease_path(key), lease)
                renewed += 1
            finally:
                self._release_steal(key)
        return renewed

    def release_leases(self, keys: Iterable[str], owner: str) -> int:
        """Drop ``owner``'s leases on ``keys``; returns the number released."""
        released = 0
        for key in keys:
            lease = self.read_lease(key)
            if lease is None or lease.get("owner") != owner:
                continue
            try:
                self._lease_path(key).unlink()
                released += 1
            except OSError:
                pass
        return released

    def reclaim_stale(self, now: Optional[float] = None) -> List[str]:
        """Remove every expired or unreadable lease; returns their keys.

        Removal goes through the same per-cell steal lock as
        :meth:`claim_cells`, so a sweeper can never unlink a lease that a
        racing claimer just republished.
        """
        if now is None:
            now = time.time()
        reclaimed: List[str] = []
        if not self.leases_path.is_dir():
            return reclaimed
        sweeper = f"reclaim-{os.getpid()}"
        for path in sorted(self.leases_path.glob("*.json")):
            key = path.name[: -len(".json")]
            if self._lease_live(self.read_lease(key), now):
                continue
            if self._reclaim_one(key, sweeper):
                reclaimed.append(key)
        return reclaimed

    def leases(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """Every *live* lease, keyed by cell key."""
        if now is None:
            now = time.time()
        live: Dict[str, Dict[str, object]] = {}
        if not self.leases_path.is_dir():
            return live
        for path in sorted(self.leases_path.glob("*.json")):
            key = path.name[: -len(".json")]
            lease = self.read_lease(key)
            if self._lease_live(lease, now):
                live[key] = lease
        return live

    # ------------------------------------------------------------------
    def save_result(self, payload: Mapping[str, object]) -> Path:
        # Insertion order is meaningful here: table rows keep the column
        # order their experiment module emitted.
        _atomic_write_json(self.result_path, dict(payload), sort_keys=False)
        return self.result_path

    def load_result(self) -> Optional[Dict[str, object]]:
        try:
            result = json.loads(self.result_path.read_text())
        except (OSError, ValueError):
            return None
        return result if isinstance(result, dict) else None

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Live progress summary: manifest bookkeeping + disk-cache truth.

        Cell counts partition ``cells_planned``: ``cells_done`` (result in
        the shared disk cache), ``cells_leased`` (not done, live lease held
        by some worker) and ``cells_pending`` (neither).  ``cells_cached``
        is kept as an alias of ``cells_done`` for older tooling.

        Health counters ride along: ``cells_failed`` (poisoned cells with no
        result), ``retries`` (total recorded failed attempts, including ones
        that later succeeded) and ``quarantined`` (corrupt disk-cache entries
        moved aside).  A campaign whose result was assembled around poisoned
        cells reports state ``degraded`` rather than ``complete``.

        Single-pass by contract: every store source (manifest, leases,
        failure records, result, event journals) is read exactly once per
        call — monitors polling this in a ``--follow`` loop must not
        multiply I/O per counter group.  The payload carries the
        ``spec_fingerprint`` so a monitor can detect spec drift between
        polls, and ``telemetry`` roll-up counters (journal event totals,
        owners seen) from :mod:`repro.campaign.telemetry`.
        """
        manifest = self.load_manifest()
        if manifest is None:
            return {"campaign": self.name, "state": "never run"}
        from repro.campaign.health import summarize_failures
        from repro.campaign.telemetry import event_counts, load_events
        from repro.experiments.cache import (
            ResultDiskCache, disk_cache_enabled, salted_key,
        )

        cells = manifest.get("cells", {})
        done_keys = set()
        quarantined = 0
        if disk_cache_enabled():
            disk = ResultDiskCache()
            done_keys = {key for key in cells if disk.contains(salted_key(key))}
            quarantined = disk.quarantine_count()
        live = self.leases()
        done = len(done_keys)
        leased = sum(1 for key in cells if key in live and key not in done_keys)
        health = summarize_failures(self.failures(), done_keys=done_keys)
        # A result only counts as complete if it was assembled for the
        # manifest's current spec/mode; a mode or spec change leaves the old
        # result.json behind until the new run finishes.  ``has_result``
        # derives from this same read — no second filesystem probe.
        result = self.load_result()
        assembled = (
            result is not None
            and result.get("spec_fingerprint") == manifest.get("spec_fingerprint")
            and result.get("mode") == manifest.get("mode")
        )
        if assembled:
            state = "degraded" if health["failed"] else "complete"
        else:
            state = "partial"
        events = load_events(self.events_path)
        return {
            "campaign": self.name,
            "state": state,
            "mode": manifest.get("mode"),
            "spec_fingerprint": manifest.get("spec_fingerprint"),
            "cells_planned": len(cells),
            "cells_done": done,
            "cells_cached": done,
            "cells_leased": leased,
            "cells_pending": max(
                0, len(cells) - done - leased - health["failed"]
            ),
            "cells_failed": health["failed"],
            "retries": health["retries"],
            "quarantined": quarantined,
            "has_result": result is not None,
            "telemetry": {
                "events": len(events),
                "owners": len({e.get("owner") for e in events}),
                "event_counts": event_counts(events),
            },
            "updated_at": manifest.get("updated_at"),
            "last_run": manifest.get("last_run"),
        }

    def clear(self) -> int:
        """Delete this campaign's manifest/result/lease files; returns count."""
        removed = 0
        for path in (self.manifest_path, self.result_path):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.leases_path.is_dir():
            for path in self.leases_path.glob("*.json*"):   # leases + steal locks
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                self.leases_path.rmdir()
            except OSError:
                pass
        if self.failures_path.is_dir():
            for path in self.failures_path.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                self.failures_path.rmdir()
            except OSError:
                pass
        if self.events_path.is_dir():
            for path in self.events_path.glob("*.jsonl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                self.events_path.rmdir()
            except OSError:
                pass
        try:
            self.directory.rmdir()
        except OSError:
            pass
        return removed
