"""Campaign registry: every paper artefact plus scenario sweeps, by name.

Built-in campaigns come from two places:

* every experiment module under :mod:`repro.experiments` ships a
  ``CAMPAIGN`` spec (imported lazily here, so importing an experiment module
  never recursively triggers the registry);
* this module defines campaigns *beyond* the paper's set — named scenario
  sweeps over the behavioural workload groupings of
  :data:`repro.workloads.suites.SCENARIOS` and a tiny ``smoke`` campaign for
  CI.

``register()`` accepts user-defined specs at run time (e.g. loaded from a
JSON file by the CLI).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.spec import CampaignSpec, SpecError

#: Experiment modules whose ``CAMPAIGN`` attribute is auto-registered.
BUILTIN_EXPERIMENT_MODULES = (
    "repro.experiments.fig01_ilp",
    "repro.experiments.fig05_fetch_model",
    "repro.experiments.fig09_speedup",
    "repro.experiments.fig10_energy",
    "repro.experiments.fig11_smt",
    "repro.experiments.fig12_t1",
    "repro.experiments.fig13_breakdown",
    "repro.experiments.fig14_queue_validation",
    "repro.experiments.fig15_recycle_dist",
    "repro.experiments.memsys_sweep",
    "repro.experiments.mshr_sweep",
    "repro.experiments.wb_sweep",
    "repro.experiments.dramq_sweep",
    "repro.experiments.table02_activity",
    "repro.experiments.table03_mpki",
)

#: Figures the CI smoke campaign rotates through, one per CI day (keyed on
#: day-of-year), so a week of CI runs covers the whole set at the cost of a
#: single pinned figure.  Every entry must run end-to-end with two workloads
#: and 1.5k+1.5k windows.
SMOKE_ROTATION = ("fig09", "fig10", "fig13", "table02", "table03", "memsys")

#: Environment override pinning the smoke figure (useful locally and in
#: tests); must name an entry of :data:`SMOKE_ROTATION`.
SMOKE_FIGURE_ENV = "REPRO_SMOKE_FIGURE"

_REGISTRY: Dict[str, CampaignSpec] = {}
_BUILTINS_LOADED = False
#: Whether the registered "smoke" spec is the builtin rotating one (only
#: builtin smoke specs are re-materialised by the daily figure rotation; a
#: user-registered replacement must never be silently clobbered).
_SMOKE_IS_BUILTIN = False


def register(spec: CampaignSpec, replace: bool = False) -> CampaignSpec:
    """Add ``spec`` to the registry (raises on duplicate unless ``replace``)."""
    spec.validate()
    if not replace and spec.name in _REGISTRY:
        raise SpecError(f"campaign {spec.name!r} is already registered")
    if spec.name == "smoke":
        global _SMOKE_IS_BUILTIN
        _SMOKE_IS_BUILTIN = False
    _REGISTRY[spec.name] = spec
    return spec


def _scenario_sweeps() -> List[CampaignSpec]:
    """Scenario-sweep campaigns beyond the paper's figure/table set."""
    from repro.experiments.fig09_speedup import CAMPAIGN as FIG09
    from repro.workloads.suites import SCENARIOS

    matrix = FIG09.variants
    sweeps = [
        CampaignSpec(
            name=f"sweep-{scenario}",
            title=f"Scenario sweep — {scenario} workloads",
            experiment="repro.experiments.fig09_speedup",
            description=(
                f"The headline {{BL, DLA, R3-DLA}} comparison restricted to "
                f"the '{scenario}' behavioural scenario: "
                + ", ".join(SCENARIOS[scenario]) + "."
            ),
            workloads=(f"scenario:{scenario}",),
            variants=matrix,
            tags=("sweep", "scenario"),
        )
        for scenario in SCENARIOS
    ]
    from repro.experiments.fig13_breakdown import CAMPAIGN as FIG13

    sweeps.append(
        CampaignSpec(
            name="sweep-fetch-buffer",
            title="Design sweep — fetch-buffer capacity on BL vs DLA",
            experiment="repro.experiments.fig13_breakdown",
            description="Fig. 13's ablation matrix over the branchy scenario, "
                        "where the fetch buffer matters most.",
            workloads=("scenario:branchy",),
            variants=FIG13.variants,
            tags=("sweep", "frontend"),
        )
    )
    return sweeps


def _mshr_sweeps() -> List[CampaignSpec]:
    """Per-scenario MSHR (MLP sensitivity) campaigns: ``mshr:<scenario>``."""
    from repro.experiments.mshr_sweep import CAMPAIGN as MSHR
    from repro.workloads.suites import SCENARIOS

    return [
        CampaignSpec(
            name=f"mshr:{scenario}",
            title=f"MSHR sweep — {scenario} workloads",
            experiment="repro.experiments.mshr_sweep",
            description=(
                "Per-level MSHR files of 4/8/16/32/unbounded entries on the "
                f"'{scenario}' behavioural scenario: "
                + ", ".join(SCENARIOS[scenario]) + "."
            ),
            workloads=(f"scenario:{scenario}",),
            variants=MSHR.variants,
            tags=("sweep", "mshr", "scenario"),
        )
        for scenario in SCENARIOS
    ]


def _memsys_sweeps() -> List[CampaignSpec]:
    """Per-scenario memory-backend campaigns: ``memsys:<scenario>``.

    The cross product of the behavioural scenarios with the named machine
    points of ``memsys-sweep`` — a whole sweepable axis of contention
    studies riding on the sharded-campaign machinery.
    """
    from repro.experiments.memsys_sweep import CAMPAIGN as MEMSYS
    from repro.workloads.suites import SCENARIOS

    return [
        CampaignSpec(
            name=f"memsys:{scenario}",
            title=f"Memory-backend machines — {scenario} workloads",
            experiment="repro.experiments.memsys_sweep",
            description=(
                "Named memory-backend machine points (uncontended, default, "
                "tight/banked MSHRs, write buffers, bounded DRAM queues, "
                f"fully contended) on the '{scenario}' behavioural scenario: "
                + ", ".join(SCENARIOS[scenario]) + "."
            ),
            workloads=(f"scenario:{scenario}",),
            variants=MEMSYS.variants,
            tags=("sweep", "memsys", "scenario"),
        )
        for scenario in SCENARIOS
    ]


def smoke_figure(day_of_year: Optional[int] = None) -> str:
    """The figure the smoke campaign exercises today.

    Rotates through :data:`SMOKE_ROTATION` keyed on day-of-year (so CI
    coverage widens over a week at constant per-run cost); the
    ``REPRO_SMOKE_FIGURE`` environment variable pins it explicitly.
    """
    import datetime
    import os

    pinned = os.environ.get(SMOKE_FIGURE_ENV)
    if pinned:
        if pinned not in SMOKE_ROTATION:
            raise SpecError(
                f"{SMOKE_FIGURE_ENV}={pinned!r} is not in the smoke rotation "
                f"{SMOKE_ROTATION}"
            )
        return pinned
    if day_of_year is None:
        day_of_year = datetime.date.today().timetuple().tm_yday
    return SMOKE_ROTATION[day_of_year % len(SMOKE_ROTATION)]


def _smoke_campaign() -> CampaignSpec:
    """A CI-sized end-to-end campaign: two workloads, short windows.

    The exercised figure rotates daily (see :func:`smoke_figure`); the
    variant matrix is the rotated figure's own, so the cells the scheduler
    warms are exactly the ones the figure assembles from.
    """
    import importlib

    figure = smoke_figure()
    module_path = f"repro.experiments.{_SMOKE_MODULES[figure]}"
    figure_spec = getattr(importlib.import_module(module_path), "CAMPAIGN")
    return CampaignSpec(
        name="smoke",
        title=f"Smoke — minimal end-to-end campaign for CI ({figure})",
        experiment=module_path,
        description=f"Today's rotated figure ({figure}) on two representative "
                    "workloads with 1.5k+1.5k windows through the full "
                    "spec -> cells -> store -> render path.",
        workloads=("libquantum", "mcf"),
        variants=figure_spec.variants,
        warmup_instructions=1500,
        timed_instructions=1500,
        tags=("ci",),
    )


#: Experiment module (under ``repro.experiments``) for each rotated figure.
_SMOKE_MODULES = {
    "fig09": "fig09_speedup",
    "fig10": "fig10_energy",
    "fig13": "fig13_breakdown",
    "table02": "table02_activity",
    "table03": "table03_mpki",
    "memsys": "memsys_sweep",
}


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import importlib

    for module_path in BUILTIN_EXPERIMENT_MODULES:
        module = importlib.import_module(module_path)
        spec = getattr(module, "CAMPAIGN", None)
        if spec is not None and spec.name not in _REGISTRY:
            register(spec)
    for spec in _scenario_sweeps():
        if spec.name not in _REGISTRY:
            register(spec)
    for spec in _mshr_sweeps():
        if spec.name not in _REGISTRY:
            register(spec)
    for spec in _memsys_sweeps():
        if spec.name not in _REGISTRY:
            register(spec)
    if "smoke" not in _REGISTRY:
        global _SMOKE_IS_BUILTIN
        spec = _smoke_campaign()
        spec.validate()
        _REGISTRY["smoke"] = spec
        _SMOKE_IS_BUILTIN = True
    _BUILTINS_LOADED = True


def _refresh_smoke() -> None:
    """Re-materialise the builtin smoke spec when the rotated figure changed
    (daily rotation or the ``REPRO_SMOKE_FIGURE`` override) so long-lived
    processes stay current.  A user-registered replacement spec is left
    untouched, and an unchanged figure keeps the existing spec object."""
    if not _SMOKE_IS_BUILTIN:
        return
    current = _REGISTRY.get("smoke")
    expected = f"repro.experiments.{_SMOKE_MODULES[smoke_figure()]}"
    if current is None or current.experiment != expected:
        spec = _smoke_campaign()
        spec.validate()
        _REGISTRY["smoke"] = spec


def get_campaign(name: str) -> Optional[CampaignSpec]:
    """The registered spec for ``name`` (``None`` if unknown)."""
    _ensure_builtins()
    if name == "smoke":
        _refresh_smoke()
    return _REGISTRY.get(name)


def list_campaigns(tag: Optional[str] = None) -> List[CampaignSpec]:
    """Every registered campaign, sorted by name (optionally tag-filtered)."""
    _ensure_builtins()
    _refresh_smoke()
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs
