"""Campaign registry: every paper artefact plus scenario sweeps, by name.

Built-in campaigns come from two places:

* every experiment module under :mod:`repro.experiments` ships a
  ``CAMPAIGN`` spec (imported lazily here, so importing an experiment module
  never recursively triggers the registry);
* this module defines campaigns *beyond* the paper's set — named scenario
  sweeps over the behavioural workload groupings of
  :data:`repro.workloads.suites.SCENARIOS` and a tiny ``smoke`` campaign for
  CI.

``register()`` accepts user-defined specs at run time (e.g. loaded from a
JSON file by the CLI).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.spec import CampaignSpec, SpecError, variants

#: Experiment modules whose ``CAMPAIGN`` attribute is auto-registered.
BUILTIN_EXPERIMENT_MODULES = (
    "repro.experiments.fig01_ilp",
    "repro.experiments.fig05_fetch_model",
    "repro.experiments.fig09_speedup",
    "repro.experiments.fig10_energy",
    "repro.experiments.fig11_smt",
    "repro.experiments.fig12_t1",
    "repro.experiments.fig13_breakdown",
    "repro.experiments.fig14_queue_validation",
    "repro.experiments.fig15_recycle_dist",
    "repro.experiments.table02_activity",
    "repro.experiments.table03_mpki",
)

_REGISTRY: Dict[str, CampaignSpec] = {}
_BUILTINS_LOADED = False


def register(spec: CampaignSpec, replace: bool = False) -> CampaignSpec:
    """Add ``spec`` to the registry (raises on duplicate unless ``replace``)."""
    spec.validate()
    if not replace and spec.name in _REGISTRY:
        raise SpecError(f"campaign {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _scenario_sweeps() -> List[CampaignSpec]:
    """Scenario-sweep campaigns beyond the paper's figure/table set."""
    from repro.experiments.fig09_speedup import CAMPAIGN as FIG09
    from repro.workloads.suites import SCENARIOS

    matrix = FIG09.variants
    sweeps = [
        CampaignSpec(
            name=f"sweep-{scenario}",
            title=f"Scenario sweep — {scenario} workloads",
            experiment="repro.experiments.fig09_speedup",
            description=(
                f"The headline {{BL, DLA, R3-DLA}} comparison restricted to "
                f"the '{scenario}' behavioural scenario: "
                + ", ".join(SCENARIOS[scenario]) + "."
            ),
            workloads=(f"scenario:{scenario}",),
            variants=matrix,
            tags=("sweep", "scenario"),
        )
        for scenario in SCENARIOS
    ]
    from repro.experiments.fig13_breakdown import CAMPAIGN as FIG13

    sweeps.append(
        CampaignSpec(
            name="sweep-fetch-buffer",
            title="Design sweep — fetch-buffer capacity on BL vs DLA",
            experiment="repro.experiments.fig13_breakdown",
            description="Fig. 13's ablation matrix over the branchy scenario, "
                        "where the fetch buffer matters most.",
            workloads=("scenario:branchy",),
            variants=FIG13.variants,
            tags=("sweep", "frontend"),
        )
    )
    return sweeps


def _smoke_campaign() -> CampaignSpec:
    """A CI-sized end-to-end campaign: two workloads, short windows."""
    return CampaignSpec(
        name="smoke",
        title="Smoke — minimal end-to-end campaign for CI",
        experiment="repro.experiments.fig09_speedup",
        description="Two representative workloads with 1.5k+1.5k windows "
                    "through the full spec -> cells -> store -> render path.",
        workloads=("libquantum", "mcf"),
        variants=variants(
            dict(name="bl", kind="baseline"),
            dict(name="bl-nopf", kind="baseline", prefetch="none"),
            dict(name="dla", kind="dla", dla_preset="dla"),
            dict(name="dla-nopf", kind="dla", dla_preset="dla", prefetch="none"),
            dict(name="r3", kind="dla", dla_preset="r3"),
            dict(name="r3-nopf", kind="dla", dla_preset="r3", prefetch="none"),
        ),
        warmup_instructions=1500,
        timed_instructions=1500,
        tags=("ci",),
    )


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import importlib

    for module_path in BUILTIN_EXPERIMENT_MODULES:
        module = importlib.import_module(module_path)
        spec = getattr(module, "CAMPAIGN", None)
        if spec is not None and spec.name not in _REGISTRY:
            register(spec)
    for spec in _scenario_sweeps():
        if spec.name not in _REGISTRY:
            register(spec)
    if "smoke" not in _REGISTRY:
        register(_smoke_campaign())
    _BUILTINS_LOADED = True


def get_campaign(name: str) -> Optional[CampaignSpec]:
    """The registered spec for ``name`` (``None`` if unknown)."""
    _ensure_builtins()
    return _REGISTRY.get(name)


def list_campaigns(tag: Optional[str] = None) -> List[CampaignSpec]:
    """Every registered campaign, sorted by name (optionally tag-filtered)."""
    _ensure_builtins()
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs
