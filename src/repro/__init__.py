"""repro — a reproduction of R3-DLA (HPCA 2019) in pure Python.

The package implements a decoupled look-ahead (DLA) architecture simulator
together with the four R3 optimizations described in the paper (T1 strided
prefetch offloading, value reuse, BOQ-driven fetch buffering, and skeleton
recycling), the substrates they need (a small ISA and functional emulator,
synthetic workload suites, a cache/DRAM hierarchy, branch predictors,
hardware prefetchers, an out-of-order core timing model, an energy model),
and the related-work comparators used in the paper's evaluation.

Typical usage::

    from repro.workloads import get_workload
    from repro.core import simulate_baseline
    from repro.dla import DlaSystem, DlaConfig, profile_workload

    workload = get_workload("mcf")
    program = workload.build_program()
    trace = workload.trace(30_000)
    profile = profile_workload(program, trace)

    baseline = simulate_baseline(trace)
    r3 = DlaSystem(program, dla_config=DlaConfig().r3(), profile=profile)
    outcome = r3.simulate(trace)
    print(baseline.cycles / outcome.cycles)       # speedup of R3-DLA
"""

from repro.core.config import CoreConfig, SystemConfig
from repro.core.system import SimulationOutcome, simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.system import DlaOutcome, DlaSystem
from repro.dla.profiling import profile_workload
from repro.workloads.suites import all_workloads, get_workload, suite_workloads

__version__ = "1.1.0"

__all__ = [
    "CoreConfig",
    "SystemConfig",
    "SimulationOutcome",
    "simulate_baseline",
    "DlaConfig",
    "DlaSystem",
    "DlaOutcome",
    "profile_workload",
    "get_workload",
    "all_workloads",
    "suite_workloads",
    "__version__",
]
