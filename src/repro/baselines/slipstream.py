"""SlipStream processor model.

SlipStream runs a shortened *A-stream* (advance stream) ahead of the complete
*R-stream* (redundant stream).  The A-stream is built by removing
ineffectual instructions — predicted-dead writes and highly biased branches
together with the computation feeding only them — and forwards its outcomes
to the R-stream as predictions.  It is therefore an ancestor of DLA with two
key differences the paper highlights: the A-stream reduction is driven by
dead-code/bias detection rather than by a back-slice from misses and
branches, and the communication is value/outcome-centric rather than a
purpose-built prefetch/branch-hint channel.

The model reuses the DLA co-simulation machinery with a SlipStream-flavoured
"skeleton": only biased branches and dead code are removed (no miss-driven
seeding), and no T1/value-reuse/fetch-buffer support exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Set

from repro.core.config import SystemConfig
from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile
from repro.dla.skeleton import Skeleton, SkeletonBuilder, SkeletonOptions
from repro.dla.system import DlaOutcome, DlaSystem
from repro.emulator.trace import DynamicInst, Trace
from repro.isa.program import Program


@dataclass
class SlipstreamConfig:
    """Parameters of the A-stream construction."""

    #: Branches at least this biased are removed from the A-stream.
    bias_threshold: float = 0.92
    #: The ineffectual-instruction detector removes stores (and their
    #: exclusive backward slices) whose values are never loaded again within
    #: this many dynamic instructions.
    dead_store_window: int = 2000
    #: A-stream outcome errors are costlier to recover than DLA reboots
    #: because the R-stream must also resynchronise its memory image.
    recovery_penalty: int = 96


def _slipstream_skeleton(builder: SkeletonBuilder, config: SlipstreamConfig) -> Skeleton:
    """An A-stream style skeleton: bias-pruned control slice only."""
    options = SkeletonOptions(
        name="slipstream-a-stream",
        # No miss-driven memory seeding: SlipStream does not profile misses.
        l1_miss_threshold=None,
        l2_miss_threshold=0.05,
        include_value_targets=False,
        keep_t1_targets=True,
        biased_branch_threshold=config.bias_threshold,
        max_store_load_distance=config.dead_store_window,
    )
    return builder.build(options, enable_t1=False)


def simulate_slipstream(
    program: Program,
    entries: Sequence[DynamicInst] | Trace,
    profile: ProgramProfile,
    config: Optional[SystemConfig] = None,
    slipstream: Optional[SlipstreamConfig] = None,
    warmup_entries: Optional[Sequence[DynamicInst]] = None,
) -> DlaOutcome:
    """Simulate a SlipStream-style two-stream machine."""
    config = config or SystemConfig()
    slipstream = slipstream or SlipstreamConfig()
    dla_config = DlaConfig().baseline_dla()
    # The A-stream's bias-based pruning makes its control redirections more
    # frequent than DLA's slice-complete skeleton, and each one costs more.
    dla_config = replace(
        dla_config,
        reboot_penalty=slipstream.recovery_penalty,
        risky_branch_error_rate=0.01,
    )
    system = DlaSystem(program, config, dla_config, profile=profile)
    skeleton = _slipstream_skeleton(system.builder, slipstream)
    trace = entries if not isinstance(entries, Trace) else entries.entries
    return system.simulate(trace, skeleton=skeleton, warmup_entries=warmup_entries)
