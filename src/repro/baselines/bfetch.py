"""B-Fetch: branch-prediction-directed prefetching.

B-Fetch walks the *predicted* future control flow a configurable number of
basic blocks ahead of the fetch unit and prefetches data for loads whose
addresses can be formed from values that are already architecturally stable
(global pointers, stack slots, loop induction variables a known stride away).
Its reach is therefore limited by branch prediction accuracy and by how many
load addresses are predictable without executing the program — the two
restrictions the decoupled look-ahead approach removes.

The model: a shadow walker runs ``lookahead_blocks`` basic blocks ahead of
the committed stream.  At each block boundary it consults the same branch
predictor type as the core (trained on the architectural outcomes seen so
far); if any predicted branch on the path was wrong, the walk is aborted for
that window (mirroring how wrong-path prefetches stop helping).  Along a
correctly-predicted path, loads whose last observed stride is stable are
prefetched ``distance`` iterations ahead into L1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.branch.predictors import make_predictor
from repro.core.config import SystemConfig
from repro.core.pipeline import CoreHooks
from repro.core.system import SimulationOutcome, build_single_core, warm_memory_system
from repro.core.energy import EnergyModel
from repro.emulator.trace import DynamicInst, Trace


@dataclass
class BFetchConfig:
    """Tuning of the B-Fetch shadow walker."""

    #: How many future branches the walker may run ahead of fetch.
    lookahead_branches: int = 8
    #: Prefetch distance (in dynamic occurrences of the same load).
    distance: int = 4
    #: Predictor used by the walker (same family as the core's).
    predictor: str = "tage"
    block_bytes: int = 64


def simulate_bfetch(
    entries: Sequence[DynamicInst] | Trace,
    config: Optional[SystemConfig] = None,
    bfetch: Optional[BFetchConfig] = None,
    warmup_entries: Optional[Sequence[DynamicInst]] = None,
) -> SimulationOutcome:
    """Simulate the baseline core augmented with B-Fetch."""
    config = config or SystemConfig()
    bfetch = bfetch or BFetchConfig()
    if isinstance(entries, Trace):
        entries = entries.entries
    entries = list(entries)

    shared, private, core = build_single_core(config)
    if warmup_entries:
        warm_memory_system(private, warmup_entries)

    walker_predictor = make_predictor(bfetch.predictor)
    last_address: Dict[int, int] = {}
    last_stride: Dict[int, int] = {}
    #: Number of future branches currently predicted correctly in a row.
    state = {"confidence": 0}

    def on_fetch(entry: DynamicInst, cycle: float) -> None:
        static = entry.static
        if static.is_branch:
            predicted = walker_predictor.predict(static.pc)
            walker_predictor.update(static.pc, bool(entry.taken))
            if predicted == bool(entry.taken):
                state["confidence"] = min(
                    bfetch.lookahead_branches, state["confidence"] + 1
                )
            else:
                state["confidence"] = 0
        if not static.is_load:
            return
        address = entry.effective_address
        previous = last_address.get(static.pc)
        if previous is not None:
            stride = address - previous
            if stride != 0 and stride == last_stride.get(static.pc):
                # Along a confidently predicted path, prefetch down the
                # stride proportionally to how far ahead the walker may run.
                if state["confidence"] >= 2:
                    reach = min(bfetch.distance, 1 + state["confidence"] // 2)
                    for step in range(1, reach + 1):
                        private.prefetch(address + step * stride, int(cycle), level="l1")
            last_stride[static.pc] = stride
        last_address[static.pc] = address

    result = core.run(entries, hooks=CoreHooks(on_fetch=on_fetch))
    energy = EnergyModel().evaluate(result)
    return SimulationOutcome(
        core=result,
        energy=energy,
        memory_traffic=shared.traffic,
        dram_energy=shared.dram.energy(int(result.cycles)),
        shared=shared,
        private=private,
    )
