"""Continuous Runahead Engine (CRE) model.

CRE (Hashemi, Mutlu & Patt, MICRO 2016) extracts the dependence chains that
lead to off-chip (last-level-cache-missing) loads, filters them down to a
small recurring set, and executes those chains *continuously* on a tiny
in-order engine located at the memory controller, prefetching for the core.
Unlike DLA there is no second full thread context: only the miss-producing
slices run ahead, and nothing else (branch outcomes, values) is communicated
back.  Following the paper's methodology, the engine prefetches into L1,
which they found performed better than filling only the LLC.

Model: the profiler identifies "delinquent" loads (high L2/L3 miss rate) and
their backward slices.  During the main-core simulation, a virtual engine
runs those slices ahead of the core: for every delinquent load, a prefetch is
issued ``lead`` dynamic occurrences before the core reaches it, provided the
slice is short enough to fit the engine's issue budget (32 micro-ops in the
original design).  Address-generation chains that depend on other delinquent
loads (pointer chasing) advance only one hop per occurrence, mirroring the
engine's serial execution of dependent chains.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.energy import EnergyModel
from repro.core.pipeline import CoreHooks
from repro.core.system import SimulationOutcome, build_single_core, warm_memory_system
from repro.dla.profiling import ProgramProfile
from repro.emulator.trace import DynamicInst, Trace
from repro.isa.analysis import StaticAnalysis, backward_slice
from repro.isa.program import Program


@dataclass
class ContinuousRunaheadConfig:
    """CRE parameters (following the MICRO 2016 design point)."""

    #: Maximum micro-ops in a runahead chain the engine will accept.
    max_chain_length: int = 32
    #: L2 miss probability above which a load is considered delinquent.
    delinquency_threshold: float = 0.02
    #: How many dynamic occurrences ahead of the core the engine runs.
    lead_occurrences: int = 12
    #: Dependent (pointer-chasing) chains advance only this many hops ahead.
    dependent_lead: int = 1


def simulate_cre(
    program: Program,
    entries: Sequence[DynamicInst] | Trace,
    profile: ProgramProfile,
    config: Optional[SystemConfig] = None,
    cre: Optional[ContinuousRunaheadConfig] = None,
    warmup_entries: Optional[Sequence[DynamicInst]] = None,
) -> SimulationOutcome:
    """Simulate the baseline core assisted by a Continuous Runahead Engine."""
    config = config or SystemConfig()
    cre = cre or ContinuousRunaheadConfig()
    if isinstance(entries, Trace):
        entries = entries.entries
    entries = list(entries)

    analysis = StaticAnalysis.analyze(program)
    delinquent: List[int] = [
        pc for pc, stats in profile.memory.items()
        if program[pc].is_load and stats.l2_miss_rate >= cre.delinquency_threshold
    ]
    #: Chains short enough for the engine; longer ones are dropped, as in CRE.
    eligible: Dict[int, bool] = {}
    dependent_chain: Dict[int, bool] = {}
    for pc in delinquent:
        chain = backward_slice(program, [pc], analysis.chains)
        eligible[pc] = len(chain) <= cre.max_chain_length
        # A chain containing another delinquent load means the address itself
        # depends on an off-chip access (pointer chasing).
        dependent_chain[pc] = any(
            other != pc and other in chain for other in delinquent
        )

    # Pre-compute, per delinquent PC, the future addresses of its occurrences
    # so the engine can run ahead by occurrence count.
    occurrences: Dict[int, List[int]] = defaultdict(list)
    for entry in entries:
        if entry.is_load and entry.pc in eligible:
            occurrences[entry.pc].append(entry.effective_address)

    shared, private, core = build_single_core(config)
    if warmup_entries:
        warm_memory_system(private, warmup_entries)

    seen_count: Dict[int, int] = defaultdict(int)

    def on_memory_access(entry: DynamicInst, access, cycle: float) -> None:
        pc = entry.pc
        if not entry.is_load or pc not in eligible or not eligible[pc]:
            return
        index = seen_count[pc]
        seen_count[pc] = index + 1
        lead = cre.dependent_lead if dependent_chain[pc] else cre.lead_occurrences
        future = occurrences[pc]
        target_index = index + lead
        if target_index < len(future):
            private.prefetch(future[target_index], int(cycle), level="l1")

    result = core.run(entries, hooks=CoreHooks(on_memory_access=on_memory_access))
    energy = EnergyModel().evaluate(result)
    return SimulationOutcome(
        core=result,
        energy=energy,
        memory_traffic=shared.traffic,
        dram_energy=shared.dram.energy(int(result.cycles)),
        shared=shared,
        private=private,
    )
