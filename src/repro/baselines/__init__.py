"""Related-work comparators used in Fig. 9-b of the paper.

Three prior approaches are modelled on the same timing substrate as DLA:

* **B-Fetch** (Kadjo et al., MICRO 2014) — branch-prediction-directed
  prefetching: the front end speculatively walks the predicted control flow
  ahead of execution and prefetches the data that straight-forwardly
  addressable loads along that path will touch.
* **SlipStream** (Purser et al., ASPLOS 2000) — a leading "A-stream" from
  which predicted-dead instructions and biased branches have been removed
  runs ahead of the trailing "R-stream" and passes outcomes forward.
* **CRE — Continuous Runahead Engine** (Hashemi et al., MICRO 2016) — slices
  of the dependence chains leading to off-chip loads are executed
  continuously on a small engine at the memory controller, prefetching for
  the core (modified, as in the paper, to prefetch into L1).

Each model reuses the out-of-order core, cache hierarchy and (where relevant)
the skeleton/backward-slice machinery, so the comparison isolates the
*mechanism* differences rather than simulator differences.
"""

from repro.baselines.bfetch import BFetchConfig, simulate_bfetch
from repro.baselines.slipstream import SlipstreamConfig, simulate_slipstream
from repro.baselines.runahead import ContinuousRunaheadConfig, simulate_cre

__all__ = [
    "BFetchConfig",
    "simulate_bfetch",
    "SlipstreamConfig",
    "simulate_slipstream",
    "ContinuousRunaheadConfig",
    "simulate_cre",
]
