"""SimPoint-style interval sampling of dynamic traces.

The paper uses the SimPoint methodology to pick five representative
10M-instruction intervals per benchmark.  Our workloads are small enough to
simulate end to end, but the experiments still sample intervals so that (a)
warm-up effects are handled uniformly and (b) the per-experiment cost stays
bounded when many configurations are swept.  The sampler clusters intervals
by their basic-block vector (the frequency of static PCs executed in the
interval), exactly the SimPoint feature vector, using a small k-medoids
search — a faithful, dependency-free stand-in for the original tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.emulator.trace import Trace
from repro.util.rng import DeterministicRng


@dataclass
class SampledInterval:
    """One selected interval of the dynamic trace."""

    start: int
    length: int
    weight: float

    def slice_trace(self, trace: Trace) -> Trace:
        return trace.window(self.start, self.length)


def _interval_vectors(trace: Trace, interval_length: int) -> List[Dict[int, float]]:
    """Basic-block-vector (PC-frequency) signature of each interval."""
    vectors: List[Dict[int, float]] = []
    for start in range(0, len(trace), interval_length):
        counts: Dict[int, int] = {}
        window = trace.entries[start : start + interval_length]
        if not window:
            continue
        for entry in window:
            counts[entry.pc] = counts.get(entry.pc, 0) + 1
        total = float(len(window))
        vectors.append({pc: c / total for pc, c in counts.items()})
    return vectors


def _distance(a: Dict[int, float], b: Dict[int, float]) -> float:
    keys = set(a) | set(b)
    return math.sqrt(sum((a.get(k, 0.0) - b.get(k, 0.0)) ** 2 for k in keys))


class SimPointSampler:
    """Pick ``num_points`` representative intervals from a trace."""

    def __init__(self, interval_length: int = 10_000, num_points: int = 5,
                 seed: int = 42) -> None:
        if interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        self.interval_length = interval_length
        self.num_points = num_points
        self._rng = DeterministicRng(seed)

    def select(self, trace: Trace) -> List[SampledInterval]:
        """Cluster intervals by BBV and return one medoid per cluster.

        The weight of each selected interval is the fraction of intervals
        assigned to its cluster, so weighted metrics reconstruct the whole
        execution.
        """
        vectors = _interval_vectors(trace, self.interval_length)
        num_intervals = len(vectors)
        if num_intervals == 0:
            return []
        k = min(self.num_points, num_intervals)
        if k == num_intervals:
            return [
                SampledInterval(i * self.interval_length, self.interval_length, 1.0 / k)
                for i in range(k)
            ]

        # k-medoids with a greedy farthest-point initialisation.
        medoids = [0]
        while len(medoids) < k:
            best_idx, best_dist = None, -1.0
            for idx in range(num_intervals):
                if idx in medoids:
                    continue
                dist = min(_distance(vectors[idx], vectors[m]) for m in medoids)
                if dist > best_dist:
                    best_idx, best_dist = idx, dist
            medoids.append(best_idx)

        assignments = self._assign(vectors, medoids)
        for _ in range(4):  # a few refinement sweeps are plenty at this scale
            new_medoids = []
            for cluster_id in range(k):
                members = [i for i, a in enumerate(assignments) if a == cluster_id]
                if not members:
                    new_medoids.append(medoids[cluster_id])
                    continue
                best_member, best_cost = members[0], float("inf")
                for candidate in members:
                    cost = sum(
                        _distance(vectors[candidate], vectors[other]) for other in members
                    )
                    if cost < best_cost:
                        best_member, best_cost = candidate, cost
                new_medoids.append(best_member)
            if new_medoids == medoids:
                break
            medoids = new_medoids
            assignments = self._assign(vectors, medoids)

        intervals = []
        for cluster_id, medoid in enumerate(medoids):
            members = sum(1 for a in assignments if a == cluster_id)
            intervals.append(
                SampledInterval(
                    start=medoid * self.interval_length,
                    length=self.interval_length,
                    weight=members / num_intervals,
                )
            )
        return intervals

    @staticmethod
    def _assign(vectors: Sequence[Dict[int, float]], medoids: Sequence[int]) -> List[int]:
        assignments = []
        for vector in vectors:
            best_cluster, best_dist = 0, float("inf")
            for cluster_id, medoid in enumerate(medoids):
                dist = _distance(vector, vectors[medoid])
                if dist < best_dist:
                    best_cluster, best_dist = cluster_id, dist
            assignments.append(best_cluster)
        return assignments


def sample_trace(trace: Trace, interval_length: int = 10_000,
                 num_points: int = 5) -> List[SampledInterval]:
    """Convenience wrapper around :class:`SimPointSampler`."""
    return SimPointSampler(interval_length, num_points).select(trace)
