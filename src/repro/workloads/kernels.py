"""Synthetic kernel builders.

Every kernel builder takes a size parameter plus a
:class:`~repro.util.rng.DeterministicRng` and returns a
:class:`~repro.isa.program.Program`.  The kernels are written so that their
*memory and control behaviour* — not their output — matches the application
class they stand in for, because the DLA mechanisms under study only interact
with addresses, branch outcomes and dependence chains.

Register conventions used below (general-purpose r1..r29):

===========  ==================================================
r1 - r9      loop counters, bounds, temporaries
r10 - r19    base addresses of arrays / structures
r20 - r29    accumulators and computed values
===========  ==================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.isa.builder import WORD_BYTES, ProgramBuilder
from repro.isa.program import Program
from repro.util.rng import DeterministicRng

#: Registry of kernel name -> builder populated by :func:`_register`.
KERNEL_BUILDERS: Dict[str, Callable[..., Program]] = {}


def _register(name: str):
    def decorator(fn):
        KERNEL_BUILDERS[name] = fn
        return fn

    return decorator


def build_kernel(kernel: str, **kwargs) -> Program:
    """Build the kernel registered under ``kernel`` with ``kwargs``."""
    if kernel not in KERNEL_BUILDERS:
        raise KeyError(f"unknown kernel {kernel!r}; known: {sorted(KERNEL_BUILDERS)}")
    return KERNEL_BUILDERS[kernel](**kwargs)


def _payload_work(b: ProgramBuilder, value_reg: int, acc_reg: int, ops: int,
                  scratch: int = 25, scratch2: int = 26) -> None:
    """Emit ``ops`` instructions of pure payload computation.

    Real applications interleave their control/address computation with a
    substantial amount of data processing that feeds neither branches nor
    addresses — exactly the work a DLA skeleton strips from the look-ahead
    thread (the paper's skeletons retain only ~36% of dynamic instructions).
    The emitted chain consumes ``value_reg`` and accumulates into ``acc_reg``
    using registers that are never used for control or addressing, so the
    skeleton generator can prune all of it.
    """
    if ops <= 0:
        return
    patterns = ("mul", "add", "xor", "fadd", "sub", "fmul", "or", "addi")
    b.addi(scratch, value_reg, 3)
    emitted = 1
    index = 0
    while emitted < ops:
        kind = patterns[index % len(patterns)]
        if kind == "mul":
            b.mul(scratch2, scratch, value_reg)
        elif kind == "add":
            b.add(scratch, scratch, scratch2)
        elif kind == "xor":
            b.xor(scratch2, scratch2, value_reg)
        elif kind == "fadd":
            b.fadd(acc_reg, acc_reg, scratch)
        elif kind == "sub":
            b.sub(scratch2, scratch2, scratch)
        elif kind == "fmul":
            b.fmul(scratch, scratch, scratch)
        elif kind == "or":
            b.or_(scratch2, scratch2, scratch)
        else:
            b.addi(scratch, scratch, 11)
        emitted += 1
        index += 1
    b.add(acc_reg, acc_reg, scratch2)


# ---------------------------------------------------------------------------
# Streaming / strided kernels (libquantum, STREAM, NPB FT/MG style)
# ---------------------------------------------------------------------------
@_register("stream_sum")
def stream_sum(elements: int = 2048, stride: int = 1, passes: int = 2, payload: int = 6,
               rng: DeterministicRng = None, name: str = "stream_sum") -> Program:
    """Strided read-reduce over a large array.

    The inner loop is a textbook strided stream: one load whose address grows
    by a constant every iteration, a dependent add, and a loop branch — the
    exact pattern the T1 offload engine targets.
    """
    rng = rng or DeterministicRng(1)
    b = ProgramBuilder(name)
    data = b.alloc_words(elements, [rng.randint(0, 1000) for _ in range(elements)])
    step = stride * WORD_BYTES

    b.li(1, passes)               # r1 = remaining passes
    b.label("pass_loop")
    b.li(10, data)                # r10 = cursor
    b.li(2, elements // max(stride, 1))  # r2 = remaining iterations
    b.li(20, 0)                   # r20 = accumulator
    b.label("inner")
    b.annotate("strided_load")
    b.load(21, 10, 0)             # r21 = *cursor
    b.add(20, 20, 21)             # accumulate
    _payload_work(b, 21, 28, payload)
    b.addi(10, 10, step)          # advance cursor by the stride
    b.addi(2, 2, -1)
    b.bnez(2, "inner")
    b.addi(1, 1, -1)
    b.bnez(1, "pass_loop")
    b.halt()
    return b.build()


@_register("stream_triad")
def stream_triad(elements: int = 2048, payload: int = 5, rng: DeterministicRng = None,
                 name: str = "stream_triad") -> Program:
    """STREAM-triad style ``a[i] = b[i] + k * c[i]`` with three strided streams."""
    rng = rng or DeterministicRng(2)
    b = ProgramBuilder(name)
    a = b.alloc_words(elements, 0)
    bb = b.alloc_words(elements, [rng.randint(0, 100) for _ in range(elements)])
    cc = b.alloc_words(elements, [rng.randint(0, 100) for _ in range(elements)])

    b.li(10, a)
    b.li(11, bb)
    b.li(12, cc)
    b.li(1, elements)
    b.li(3, 3)                    # scaling constant k
    b.label("loop")
    b.annotate("strided_load")
    b.load(21, 11, 0)
    b.annotate("strided_load")
    b.load(22, 12, 0)
    b.mul(23, 22, 3)
    b.add(24, 21, 23)
    _payload_work(b, 21, 28, payload)
    b.annotate("strided_store")
    b.store(10, 24, 0)
    b.addi(10, 10, WORD_BYTES)
    b.addi(11, 11, WORD_BYTES)
    b.addi(12, 12, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


@_register("stencil")
def stencil(width: int = 64, height: int = 32, iterations: int = 2, payload: int = 5,
            rng: DeterministicRng = None, name: str = "stencil") -> Program:
    """1-D 3-point Jacobi-style sweep repeated over a grid (NPB MG/SP flavour)."""
    rng = rng or DeterministicRng(3)
    cells = width * height
    b = ProgramBuilder(name)
    src = b.alloc_words(cells, [rng.randint(0, 50) for _ in range(cells)])
    dst = b.alloc_words(cells, 0)

    b.li(1, iterations)
    b.label("iter_loop")
    b.li(10, src + WORD_BYTES)        # cursor into src, starting at index 1
    b.li(11, dst + WORD_BYTES)
    b.li(2, cells - 2)
    b.label("cell_loop")
    b.annotate("stencil_west")
    b.load(20, 10, -WORD_BYTES)
    b.annotate("stencil_center")
    b.load(21, 10, 0)
    b.annotate("stencil_east")
    b.load(22, 10, WORD_BYTES)
    b.add(23, 20, 21)
    b.add(23, 23, 22)
    b.li(24, 3)
    b.div(25, 23, 24)
    _payload_work(b, 21, 28, payload, scratch=26, scratch2=27)
    b.store(11, 25, 0)
    b.addi(10, 10, WORD_BYTES)
    b.addi(11, 11, WORD_BYTES)
    b.addi(2, 2, -1)
    b.bnez(2, "cell_loop")
    b.addi(1, 1, -1)
    b.bnez(1, "iter_loop")
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------
# Pointer chasing / irregular kernels (mcf, omnetpp, xalancbmk style)
# ---------------------------------------------------------------------------
@_register("pointer_chase")
def pointer_chase(nodes: int = 1024, hops: int = 4096, payload_words: int = 3,
                  payload: int = 10, rng: DeterministicRng = None,
                  name: str = "pointer_chase") -> Program:
    """Traverse a randomly-linked list, summing a payload field per node.

    Every load of the ``next`` pointer depends on the previous one, so a
    conventional prefetcher gets no traction; only executing the chain ahead
    of time (as the look-ahead thread does) can hide the misses.
    """
    rng = rng or DeterministicRng(4)
    node_words = 1 + payload_words          # [next, payload...]
    b = ProgramBuilder(name)

    order = rng.permutation(nodes)
    base = b.alloc_words(nodes * node_words, 0)
    addr_of = [base + i * node_words * WORD_BYTES for i in range(nodes)]
    for position, node in enumerate(order):
        next_node = order[(position + 1) % nodes]
        b.poke(addr_of[node], addr_of[next_node])
        for w in range(payload_words):
            b.poke(addr_of[node] + (1 + w) * WORD_BYTES, rng.randint(0, 97))

    b.li(10, addr_of[order[0]])   # r10 = current node pointer
    b.li(1, hops)
    b.li(20, 0)                   # checksum
    b.label("chase")
    b.annotate("payload_load")
    b.load(21, 10, WORD_BYTES)
    b.add(20, 20, 21)
    _payload_work(b, 21, 28, payload)
    b.annotate("pointer_load")
    b.load(10, 10, 0)             # follow next pointer (dependent load)
    b.addi(1, 1, -1)
    b.bnez(1, "chase")
    b.halt()
    return b.build()


@_register("hash_probe")
def hash_probe(table_size: int = 4096, probes: int = 4096, hit_ratio: float = 0.6,
               payload: int = 6, rng: DeterministicRng = None,
               name: str = "hash_probe") -> Program:
    """Open-addressing hash-table probe loop with data-dependent branching.

    Combines irregular loads (random table indices) with hard-to-predict
    branches on the probe outcome — the behaviour of database joins and of
    SPEC's xalancbmk/astar lookups.
    """
    rng = rng or DeterministicRng(5)
    b = ProgramBuilder(name)
    occupancy = [1 if rng.random() < hit_ratio else 0 for _ in range(table_size)]
    table = b.alloc_words(table_size, occupancy)
    keys = b.alloc_words(probes, [rng.randint(0, table_size - 1) for _ in range(probes)])

    b.li(10, table)
    b.li(11, keys)
    b.li(1, probes)
    b.li(20, 0)                   # hits
    b.li(21, 0)                   # misses
    b.li(3, WORD_BYTES)
    b.label("probe")
    b.annotate("key_load")
    b.load(22, 11, 0)             # key = keys[i]
    b.mul(23, 22, 3)              # offset = key * WORD_BYTES
    b.add(24, 10, 23)
    b.annotate("table_load")
    b.load(25, 24, 0)             # slot = table[key]
    _payload_work(b, 25, 28, payload, scratch=26, scratch2=27)
    b.beqz(25, "miss")
    b.addi(20, 20, 1)
    b.jump("next")
    b.label("miss")
    b.addi(21, 21, 1)
    b.label("next")
    b.addi(11, 11, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "probe")
    b.halt()
    return b.build()


@_register("tree_search")
def tree_search(depth: int = 10, searches: int = 1024, payload: int = 5,
                rng: DeterministicRng = None, name: str = "tree_search") -> Program:
    """Repeated root-to-leaf walks of a complete binary search tree.

    Each step loads a key, compares, and branches left or right — dependent
    loads plus data-dependent branches, as in astar / gobmk search code.
    """
    rng = rng or DeterministicRng(6)
    node_words = 3                      # [key, left, right]
    nodes = (1 << depth) - 1
    b = ProgramBuilder(name)
    base = b.alloc_words(nodes * node_words, 0)
    addr_of = [base + i * node_words * WORD_BYTES for i in range(nodes)]
    for i in range(nodes):
        b.poke(addr_of[i], rng.randint(0, 1 << 20))
        left, right = 2 * i + 1, 2 * i + 2
        b.poke(addr_of[i] + WORD_BYTES, addr_of[left] if left < nodes else 0)
        b.poke(addr_of[i] + 2 * WORD_BYTES, addr_of[right] if right < nodes else 0)
    queries = b.alloc_words(searches, [rng.randint(0, 1 << 20) for _ in range(searches)])

    b.li(11, queries)
    b.li(1, searches)
    b.li(20, 0)                        # visited-node counter
    b.label("search")
    b.load(22, 11, 0)                  # query key
    b.li(10, addr_of[0])               # current = root
    b.label("walk")
    b.beqz(10, "done_walk")
    b.annotate("node_key_load")
    b.load(23, 10, 0)
    b.addi(20, 20, 1)
    _payload_work(b, 23, 28, payload)
    b.blt(22, 23, "go_left")
    b.annotate("right_child_load")
    b.load(10, 10, 2 * WORD_BYTES)
    b.jump("walk")
    b.label("go_left")
    b.annotate("left_child_load")
    b.load(10, 10, WORD_BYTES)
    b.jump("walk")
    b.label("done_walk")
    b.addi(11, 11, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "search")
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------
# Graph kernels (CRONO style)
# ---------------------------------------------------------------------------
def _random_csr(rng: DeterministicRng, nodes: int, avg_degree: int):
    """Build a random CSR graph: returns (row_offsets, column_indices)."""
    offsets = [0]
    columns: List[int] = []
    for _ in range(nodes):
        degree = max(1, rng.randint(avg_degree // 2, avg_degree + avg_degree // 2))
        for _ in range(degree):
            columns.append(rng.randint(0, nodes - 1))
        offsets.append(len(columns))
    return offsets, columns


@_register("graph_traverse")
def graph_traverse(nodes: int = 512, avg_degree: int = 4, sweeps: int = 2,
                   payload: int = 5, rng: DeterministicRng = None,
                   name: str = "graph_traverse") -> Program:
    """BFS-flavoured sweep over a CSR graph accumulating neighbour values.

    For every vertex, walk its adjacency list and accumulate the value of
    each neighbour — a gather with two levels of indirection (offsets ->
    columns -> values), the dominant pattern in CRONO's BFS/SSSP/PageRank.
    """
    rng = rng or DeterministicRng(7)
    offsets, columns = _random_csr(rng, nodes, avg_degree)
    b = ProgramBuilder(name)
    off_base = b.alloc_words(len(offsets), offsets)
    col_base = b.alloc_words(len(columns), columns)
    val_base = b.alloc_words(nodes, [rng.randint(0, 31) for _ in range(nodes)])
    out_base = b.alloc_words(nodes, 0)

    b.li(1, sweeps)
    b.label("sweep")
    b.li(2, 0)                          # vertex index v
    b.li(9, nodes)
    b.label("vertex")
    b.li(3, WORD_BYTES)
    b.mul(4, 2, 3)                      # v * WORD_BYTES
    b.li(10, off_base)
    b.add(10, 10, 4)
    b.annotate("offset_load")
    b.load(5, 10, 0)                    # start = offsets[v]
    b.annotate("offset_load")
    b.load(6, 10, WORD_BYTES)           # end = offsets[v + 1]
    b.li(20, 0)                         # per-vertex accumulator
    b.label("edge")
    b.bge(5, 6, "edges_done")
    b.mul(7, 5, 3)
    b.li(11, col_base)
    b.add(11, 11, 7)
    b.annotate("column_load")
    b.load(8, 11, 0)                    # neighbour id
    b.mul(8, 8, 3)
    b.li(12, val_base)
    b.add(12, 12, 8)
    b.annotate("gather_load")
    b.load(21, 12, 0)                   # neighbour value (irregular)
    b.add(20, 20, 21)
    _payload_work(b, 21, 28, payload)
    b.addi(5, 5, 1)
    b.jump("edge")
    b.label("edges_done")
    b.li(13, out_base)
    b.add(13, 13, 4)
    b.store(13, 20, 0)
    b.addi(2, 2, 1)
    b.blt(2, 9, "vertex")
    b.addi(1, 1, -1)
    b.bnez(1, "sweep")
    b.halt()
    return b.build()


@_register("sssp_relax")
def sssp_relax(nodes: int = 384, avg_degree: int = 4, rounds: int = 2,
               payload: int = 4, rng: DeterministicRng = None,
               name: str = "sssp_relax") -> Program:
    """Bellman-Ford style relaxation rounds over a CSR graph (CRONO SSSP)."""
    rng = rng or DeterministicRng(8)
    offsets, columns = _random_csr(rng, nodes, avg_degree)
    weights = [rng.randint(1, 16) for _ in columns]
    b = ProgramBuilder(name)
    off_base = b.alloc_words(len(offsets), offsets)
    col_base = b.alloc_words(len(columns), columns)
    wgt_base = b.alloc_words(len(weights), weights)
    dist_base = b.alloc_words(nodes, [0] + [1 << 20] * (nodes - 1))

    b.li(1, rounds)
    b.label("round")
    b.li(2, 0)
    b.li(9, nodes)
    b.label("vertex")
    b.li(3, WORD_BYTES)
    b.mul(4, 2, 3)
    b.li(10, off_base)
    b.add(10, 10, 4)
    b.load(5, 10, 0)
    b.load(6, 10, WORD_BYTES)
    b.li(14, dist_base)
    b.add(14, 14, 4)
    b.annotate("dist_load")
    b.load(22, 14, 0)                    # dist[v]
    b.label("edge")
    b.bge(5, 6, "edges_done")
    b.mul(7, 5, 3)
    b.li(11, col_base)
    b.add(11, 11, 7)
    b.load(8, 11, 0)                     # neighbour id
    b.li(12, wgt_base)
    b.add(12, 12, 7)
    b.load(23, 12, 0)                    # weight
    _payload_work(b, 23, 28, payload, scratch=26, scratch2=27)
    b.add(24, 22, 23)                    # candidate = dist[v] + w
    b.mul(8, 8, 3)
    b.li(13, dist_base)
    b.add(13, 13, 8)
    b.annotate("dist_gather")
    b.load(25, 13, 0)                    # dist[u]
    b.bge(24, 25, "no_update")
    b.annotate("dist_update")
    b.store(13, 24, 0)
    b.label("no_update")
    b.addi(5, 5, 1)
    b.jump("edge")
    b.label("edges_done")
    b.addi(2, 2, 1)
    b.blt(2, 9, "vertex")
    b.addi(1, 1, -1)
    b.bnez(1, "round")
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------
# Branch-heavy integer kernels (gobmk, sjeng, h264 style)
# ---------------------------------------------------------------------------
@_register("branchy_compute")
def branchy_compute(elements: int = 4096, taken_bias: float = 0.5, payload: int = 5,
                    rng: DeterministicRng = None, name: str = "branchy_compute") -> Program:
    """Scan an array of noisy values taking data-dependent decisions.

    ``taken_bias`` controls how predictable the main branch is: 0.5 gives the
    hardest-to-predict pattern, values near 0 or 1 give biased (easy)
    branches that the skeleton's "biased branch" recycling option can prune.
    """
    rng = rng or DeterministicRng(9)
    b = ProgramBuilder(name)
    values = [1 if rng.random() < taken_bias else 0 for _ in range(elements)]
    data = b.alloc_words(elements, values)
    payload_base = b.alloc_words(elements, [rng.randint(0, 127) for _ in range(elements)])

    b.li(10, data)
    b.li(11, payload_base)
    b.li(1, elements)
    b.li(20, 0)                         # even-path accumulator
    b.li(21, 0)                         # odd-path accumulator
    b.label("loop")
    b.load(22, 10, 0)
    b.load(23, 11, 0)
    b.beqz(22, "path_even")
    b.mul(24, 23, 23)
    b.add(21, 21, 24)
    b.jump("after")
    b.label("path_even")
    b.addi(24, 23, 7)
    b.add(20, 20, 24)
    b.label("after")
    _payload_work(b, 23, 28, payload)
    b.addi(10, 10, WORD_BYTES)
    b.addi(11, 11, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


@_register("state_machine")
def state_machine(steps: int = 4096, states: int = 8, payload: int = 6,
                  rng: DeterministicRng = None, name: str = "state_machine") -> Program:
    """Walk a random transition table — an abstraction of parsers/decoders.

    Each step loads the next state from a table indexed by (state, input),
    giving short dependence chains, frequent indirect-ish control flow and a
    table working set small enough to live in L1/L2.
    """
    rng = rng or DeterministicRng(10)
    b = ProgramBuilder(name)
    transitions = [rng.randint(0, states - 1) for _ in range(states * states)]
    table = b.alloc_words(states * states, transitions)
    inputs = b.alloc_words(steps, [rng.randint(0, states - 1) for _ in range(steps)])

    b.li(10, table)
    b.li(11, inputs)
    b.li(1, steps)
    b.li(2, 0)                          # current state
    b.li(3, WORD_BYTES)
    b.li(4, states)
    b.li(20, 0)                         # visit counter for state 0
    b.label("step")
    b.load(22, 11, 0)                   # input symbol
    _payload_work(b, 22, 28, payload, scratch=25, scratch2=26)
    b.mul(23, 2, 4)                     # state * states
    b.add(23, 23, 22)
    b.mul(23, 23, 3)
    b.add(24, 10, 23)
    b.annotate("transition_load")
    b.load(2, 24, 0)                    # next state
    b.bnez(2, "not_zero")
    b.addi(20, 20, 1)
    b.label("not_zero")
    b.addi(11, 11, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "step")
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------
# Dense / numeric kernels (NPB BT/LU/EP style)
# ---------------------------------------------------------------------------
@_register("dense_mm")
def dense_mm(dim: int = 12, rng: DeterministicRng = None, name: str = "dense_mm") -> Program:
    """Naive dense matrix multiply (compute bound, long mul/div chains)."""
    rng = rng or DeterministicRng(11)
    cells = dim * dim
    b = ProgramBuilder(name)
    a = b.alloc_words(cells, [rng.randint(0, 9) for _ in range(cells)])
    bm = b.alloc_words(cells, [rng.randint(0, 9) for _ in range(cells)])
    c = b.alloc_words(cells, 0)

    b.li(3, WORD_BYTES)
    b.li(9, dim)
    b.li(1, 0)                          # i
    b.label("i_loop")
    b.li(2, 0)                          # j
    b.label("j_loop")
    b.li(20, 0)                         # acc
    b.li(4, 0)                          # k
    b.label("k_loop")
    b.mul(5, 1, 9)                      # i*dim
    b.add(5, 5, 4)                      # + k
    b.mul(5, 5, 3)
    b.li(10, a)
    b.add(10, 10, 5)
    b.load(21, 10, 0)                   # a[i][k]
    b.mul(6, 4, 9)                      # k*dim
    b.add(6, 6, 2)                      # + j
    b.mul(6, 6, 3)
    b.li(11, bm)
    b.add(11, 11, 6)
    b.load(22, 11, 0)                   # b[k][j]
    b.fmul(23, 21, 22)
    b.fadd(20, 20, 23)
    b.addi(4, 4, 1)
    b.blt(4, 9, "k_loop")
    b.mul(7, 1, 9)
    b.add(7, 7, 2)
    b.mul(7, 7, 3)
    b.li(12, c)
    b.add(12, 12, 7)
    b.store(12, 20, 0)
    b.addi(2, 2, 1)
    b.blt(2, 9, "j_loop")
    b.addi(1, 1, 1)
    b.blt(1, 9, "i_loop")
    b.halt()
    return b.build()


@_register("spmv")
def spmv(rows: int = 384, nnz_per_row: int = 5, payload: int = 4,
         rng: DeterministicRng = None, name: str = "spmv") -> Program:
    """CSR sparse matrix-vector multiply (NPB CG inner kernel)."""
    rng = rng or DeterministicRng(12)
    offsets = [0]
    columns: List[int] = []
    values: List[int] = []
    for _ in range(rows):
        nnz = max(1, rng.randint(nnz_per_row - 2, nnz_per_row + 2))
        for _ in range(nnz):
            columns.append(rng.randint(0, rows - 1))
            values.append(rng.randint(1, 9))
        offsets.append(len(columns))
    b = ProgramBuilder(name)
    off_base = b.alloc_words(len(offsets), offsets)
    col_base = b.alloc_words(len(columns), columns)
    val_base = b.alloc_words(len(values), values)
    x_base = b.alloc_words(rows, [rng.randint(0, 9) for _ in range(rows)])
    y_base = b.alloc_words(rows, 0)

    b.li(3, WORD_BYTES)
    b.li(9, rows)
    b.li(1, 0)                          # row index
    b.label("row")
    b.mul(4, 1, 3)
    b.li(10, off_base)
    b.add(10, 10, 4)
    b.load(5, 10, 0)
    b.load(6, 10, WORD_BYTES)
    b.li(20, 0)
    b.label("nz")
    b.bge(5, 6, "row_done")
    b.mul(7, 5, 3)
    b.li(11, col_base)
    b.add(11, 11, 7)
    b.load(8, 11, 0)
    b.li(12, val_base)
    b.add(12, 12, 7)
    b.load(21, 12, 0)
    b.mul(8, 8, 3)
    b.li(13, x_base)
    b.add(13, 13, 8)
    b.annotate("x_gather")
    b.load(22, 13, 0)
    b.fmul(23, 21, 22)
    b.fadd(20, 20, 23)
    _payload_work(b, 22, 28, payload, scratch=25, scratch2=26)
    b.addi(5, 5, 1)
    b.jump("nz")
    b.label("row_done")
    b.li(14, y_base)
    b.add(14, 14, 4)
    b.store(14, 20, 0)
    b.addi(1, 1, 1)
    b.blt(1, 9, "row")
    b.halt()
    return b.build()


@_register("random_compute")
def random_compute(iterations: int = 4096, rng: DeterministicRng = None,
                   name: str = "random_compute") -> Program:
    """Embarrassingly-parallel pseudo-random number crunching (NPB EP).

    Almost no memory traffic; long multiply/divide dependence chains make it
    a value-reuse rather than a prefetching target.
    """
    rng = rng or DeterministicRng(13)
    b = ProgramBuilder(name)
    out = b.alloc_words(16, 0)

    b.li(2, rng.randint(1, 1 << 16))    # LCG state
    b.li(4, 1103515245 & 0x7FFFFFFF)
    b.li(5, 12345)
    b.li(6, 1 << 31)
    b.li(1, iterations)
    b.li(20, 0)
    b.label("loop")
    b.mul(2, 2, 4)
    b.add(2, 2, 5)
    b.mod(2, 2, 6)
    b.fmul(21, 2, 2)
    b.fdiv(22, 21, 6)
    b.add(20, 20, 22)
    b.andi(23, 2, 15 * WORD_BYTES)
    b.li(10, out)
    b.add(10, 10, 23)
    b.store(10, 20, 0)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


# ---------------------------------------------------------------------------
# Mixed kernels (bzip2, h264, STARBENCH media style)
# ---------------------------------------------------------------------------
@_register("histogram")
def histogram(samples: int = 4096, buckets: int = 256, payload: int = 4,
              rng: DeterministicRng = None, name: str = "histogram") -> Program:
    """Scatter increments into a bucket array indexed by random input data."""
    rng = rng or DeterministicRng(14)
    b = ProgramBuilder(name)
    data = b.alloc_words(samples, [rng.randint(0, buckets - 1) for _ in range(samples)])
    hist = b.alloc_words(buckets, 0)

    b.li(10, data)
    b.li(3, WORD_BYTES)
    b.li(1, samples)
    b.label("loop")
    b.load(20, 10, 0)
    b.mul(21, 20, 3)
    b.li(11, hist)
    b.add(11, 11, 21)
    b.annotate("bucket_load")
    b.load(22, 11, 0)
    b.addi(22, 22, 1)
    b.annotate("bucket_store")
    b.store(11, 22, 0)
    _payload_work(b, 22, 28, payload, scratch=25, scratch2=26)
    b.addi(10, 10, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


@_register("run_length")
def run_length(elements: int = 4096, run_bias: float = 0.8,
               rng: DeterministicRng = None, name: str = "run_length") -> Program:
    """Run-length style scan with mostly-biased branches (bzip2 / compression)."""
    rng = rng or DeterministicRng(15)
    b = ProgramBuilder(name)
    values = []
    current = rng.randint(0, 3)
    for _ in range(elements):
        if rng.random() > run_bias:
            current = rng.randint(0, 3)
        values.append(current)
    data = b.alloc_words(elements, values)
    out = b.alloc_words(elements, 0)

    b.li(10, data)
    b.li(11, out)
    b.li(1, elements - 1)
    b.li(20, 0)                          # run counter
    b.load(2, 10, 0)                     # previous value
    b.addi(10, 10, WORD_BYTES)
    b.label("loop")
    b.load(21, 10, 0)
    b.sub(22, 21, 2)
    b.bnez(22, "new_run")
    b.addi(20, 20, 1)
    b.jump("next")
    b.label("new_run")
    b.store(11, 20, 0)
    b.addi(11, 11, WORD_BYTES)
    b.li(20, 0)
    b.mov(2, 21)
    b.label("next")
    b.addi(10, 10, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


@_register("pixel_filter")
def pixel_filter(pixels: int = 4096, payload: int = 4, rng: DeterministicRng = None,
                 name: str = "pixel_filter") -> Program:
    """Streaming pixel transform with a clamp branch (STARBENCH rgbyuv/rotate)."""
    rng = rng or DeterministicRng(16)
    b = ProgramBuilder(name)
    src = b.alloc_words(pixels, [rng.randint(0, 255) for _ in range(pixels)])
    dst = b.alloc_words(pixels, 0)

    b.li(10, src)
    b.li(11, dst)
    b.li(1, pixels)
    b.li(4, 77)                          # filter coefficient
    b.li(5, 200)                         # clamp threshold
    b.li(6, 255)
    b.li(7, 128)
    b.label("loop")
    b.annotate("pixel_load")
    b.load(20, 10, 0)
    b.mul(21, 20, 4)
    b.shr(21, 21, 7)
    b.blt(21, 5, "no_clamp")
    b.mov(21, 6)
    b.label("no_clamp")
    _payload_work(b, 20, 28, payload, scratch=25, scratch2=26)
    b.annotate("pixel_store")
    b.store(11, 21, 0)
    b.addi(10, 10, WORD_BYTES)
    b.addi(11, 11, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


@_register("kmeans_assign")
def kmeans_assign(points: int = 1024, clusters: int = 8, payload: int = 4,
                  rng: DeterministicRng = None, name: str = "kmeans_assign") -> Program:
    """K-means assignment step: distance to each centroid, keep the minimum."""
    rng = rng or DeterministicRng(17)
    b = ProgramBuilder(name)
    pts = b.alloc_words(points, [rng.randint(0, 1023) for _ in range(points)])
    centroids = b.alloc_words(clusters, [rng.randint(0, 1023) for _ in range(clusters)])
    assign = b.alloc_words(points, 0)

    b.li(3, WORD_BYTES)
    b.li(9, clusters)
    b.li(10, pts)
    b.li(12, assign)
    b.li(1, points)
    b.label("point")
    b.load(20, 10, 0)                    # point value
    b.li(21, 1 << 30)                    # best distance
    b.li(22, 0)                          # best cluster
    b.li(2, 0)                           # cluster index
    b.label("cluster")
    b.mul(4, 2, 3)
    b.li(11, centroids)
    b.add(11, 11, 4)
    b.load(23, 11, 0)
    b.sub(24, 20, 23)
    b.mul(24, 24, 24)                    # squared distance
    b.bge(24, 21, "not_better")
    b.mov(21, 24)
    b.mov(22, 2)
    b.label("not_better")
    _payload_work(b, 23, 28, payload, scratch=25, scratch2=26)
    b.addi(2, 2, 1)
    b.blt(2, 9, "cluster")
    b.store(12, 22, 0)
    b.addi(10, 10, WORD_BYTES)
    b.addi(12, 12, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "point")
    b.halt()
    return b.build()


@_register("recursive_calls")
def recursive_calls(depth: int = 9, repeats: int = 24,
                    rng: DeterministicRng = None, name: str = "recursive_calls") -> Program:
    """Fibonacci-style recursion exercising CALL/RET and the return stack.

    The paper's recycling controller treats recursive call sites as loop
    branches; this kernel supplies exactly that execution shape.
    """
    rng = rng or DeterministicRng(18)
    b = ProgramBuilder(name)
    stack = b.alloc_words(4096, 0)
    sink = b.alloc_words(4, 0)

    b.li(30, stack + 2048 * WORD_BYTES)   # stack pointer in the middle
    b.li(1, repeats)
    b.label("repeat")
    b.li(2, depth)                        # argument n
    b.call("fib")
    b.li(10, sink)
    b.store(10, 20, 0)
    b.addi(1, 1, -1)
    b.bnez(1, "repeat")
    b.halt()

    # fib(n): returns n <= 1 ? n : fib(n-1) + fib(n-2) in r20
    b.label("fib")
    b.li(4, 2)
    b.blt(2, 4, "base_case")
    # push ra and n
    b.store(30, 31, 0)
    b.store(30, 2, WORD_BYTES)
    b.addi(30, 30, 3 * WORD_BYTES)
    b.addi(2, 2, -1)
    b.call("fib")
    # stash fib(n-1); restore n
    b.addi(30, 30, -3 * WORD_BYTES)
    b.store(30, 20, 2 * WORD_BYTES)
    b.load(2, 30, WORD_BYTES)
    b.addi(30, 30, 3 * WORD_BYTES)
    b.addi(2, 2, -2)
    b.call("fib")
    b.addi(30, 30, -3 * WORD_BYTES)
    b.load(21, 30, 2 * WORD_BYTES)
    b.add(20, 20, 21)
    b.load(31, 30, 0)
    b.ret()
    b.label("base_case")
    b.mov(20, 2)
    b.ret()
    return b.build()


@_register("sort_scan")
def sort_scan(elements: int = 512, passes: int = 4, rng: DeterministicRng = None,
              name: str = "sort_scan") -> Program:
    """Bubble-sort-style adjacent compare-and-swap passes (branch + memory mix)."""
    rng = rng or DeterministicRng(19)
    b = ProgramBuilder(name)
    data = b.alloc_words(elements, [rng.randint(0, 1 << 16) for _ in range(elements)])

    b.li(1, passes)
    b.label("pass")
    b.li(10, data)
    b.li(2, elements - 1)
    b.label("scan")
    b.load(20, 10, 0)
    b.load(21, 10, WORD_BYTES)
    b.bge(21, 20, "ordered")
    b.store(10, 21, 0)
    b.store(10, 20, WORD_BYTES)
    b.label("ordered")
    b.addi(10, 10, WORD_BYTES)
    b.addi(2, 2, -1)
    b.bnez(2, "scan")
    b.addi(1, 1, -1)
    b.bnez(1, "pass")
    b.halt()
    return b.build()


@_register("string_match")
def string_match(haystack: int = 4096, needle: int = 6,
                 rng: DeterministicRng = None, name: str = "string_match") -> Program:
    """Sliding-window string comparison (STARBENCH / text-processing flavour)."""
    rng = rng or DeterministicRng(20)
    b = ProgramBuilder(name)
    alphabet = 4
    text = [rng.randint(0, alphabet - 1) for _ in range(haystack)]
    pattern = [rng.randint(0, alphabet - 1) for _ in range(needle)]
    text_base = b.alloc_words(haystack, text)
    pat_base = b.alloc_words(needle, pattern)

    b.li(1, haystack - needle)
    b.li(10, text_base)
    b.li(20, 0)                          # match count
    b.li(9, needle)
    b.li(3, WORD_BYTES)
    b.label("window")
    b.li(2, 0)                           # position within the needle
    b.label("compare")
    b.bge(2, 9, "matched")
    b.mul(4, 2, 3)
    b.add(5, 10, 4)
    b.load(21, 5, 0)
    b.li(11, pat_base)
    b.add(11, 11, 4)
    b.load(22, 11, 0)
    b.sub(23, 21, 22)
    b.bnez(23, "mismatch")
    b.addi(2, 2, 1)
    b.jump("compare")
    b.label("matched")
    b.addi(20, 20, 1)
    b.label("mismatch")
    b.addi(10, 10, WORD_BYTES)
    b.addi(1, 1, -1)
    b.bnez(1, "window")
    b.halt()
    return b.build()
