"""Benchmark-suite definitions.

Each entry maps a benchmark name used by the paper's figures (e.g. ``mcf``,
``bfs``, ``cg``) to a synthetic kernel plus parameters whose memory/branch
behaviour mimics the original application class.  Sizes are chosen so that a
single workload commits on the order of tens of thousands of dynamic
instructions — large enough to exhibit steady-state cache and predictor
behaviour in the trace-driven timing models, small enough to keep the full
experiment matrix tractable in pure Python.

Workloads are constructed lazily and cached, because building a program (in
particular laying out linked data structures) is itself non-trivial work.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.emulator.machine import Emulator
from repro.emulator.trace import Trace
from repro.isa.program import Program
from repro.util.rng import DeterministicRng
from repro.workloads.kernels import build_kernel


@dataclass
class Workload:
    """A named benchmark: a kernel plus parameters plus a dynamic-length cap."""

    name: str
    suite: str
    kernel: str
    params: Dict[str, object] = field(default_factory=dict)
    #: Cap on committed dynamic instructions when tracing the workload.
    max_instructions: int = 60_000
    #: Free-text description of the behaviour the workload models.
    description: str = ""

    _program: Optional[Program] = field(default=None, repr=False, compare=False)
    _traces: Dict[int, "Trace"] = field(default_factory=dict, repr=False, compare=False)

    def build_program(self) -> Program:
        """Build (and cache) the static program for this workload.

        The generator seed is derived with CRC-32 rather than ``hash()``:
        Python string hashing is salted per process, which would make every
        process (and every parallel experiment worker) build a *different*
        program for the same workload name.  A content-stable seed is what
        makes fingerprint-keyed result caching and parallel fan-out sound.
        """
        if self._program is None:
            seed = zlib.crc32(self.name.encode("utf-8")) & 0x7FFFFFFF
            rng = DeterministicRng(seed)
            self._program = build_kernel(
                self.kernel, rng=rng, name=self.name, **self.params
            )
        return self._program

    def trace(self, max_instructions: Optional[int] = None) -> Trace:
        """Functionally execute the workload and return its dynamic trace.

        Memoized per instruction cap: emulation is deterministic, every
        consumer treats the trace as read-only, and the workload registry
        hands out shared instances — so repeated requests for the same
        window (every runner in a campaign) emulate exactly once.  Stable
        trace identity is also what lets the decoded-trace and warmed-memory
        memos hit across runners.
        """
        limit = max_instructions if max_instructions is not None else self.max_instructions
        trace = self._traces.get(limit)
        if trace is None:
            while len(self._traces) >= 4:
                del self._traces[next(iter(self._traces))]
            trace = Emulator(self.build_program()).run(max_instructions=limit)
            self._traces[limit] = trace
        return trace


def _w(name, suite, kernel, description="", max_instructions=60_000, **params) -> Workload:
    return Workload(
        name=name,
        suite=suite,
        kernel=kernel,
        params=params,
        max_instructions=max_instructions,
        description=description,
    )


# ---------------------------------------------------------------------------
# SPEC CPU2006 integer analogue (the ten applications of Fig. 1 / Fig. 15)
# ---------------------------------------------------------------------------
_SPEC2K6 = [
    _w("astar", "spec2k6", "tree_search", "path-finding: tree walks with data-dependent branches",
       depth=10, searches=700),
    _w("bzip2", "spec2k6", "run_length", "compression: long biased-branch runs over a byte stream",
       elements=5000, run_bias=0.82),
    _w("gobmk", "spec2k6", "branchy_compute", "game tree evaluation: hard-to-predict branches",
       elements=5000, taken_bias=0.55),
    _w("h264ref", "spec2k6", "pixel_filter", "video encoding: streaming pixel transform with clamps",
       pixels=5000),
    _w("hmmer", "spec2k6", "state_machine", "profile HMM scoring: table-driven state transitions",
       steps=5000, states=12),
    _w("libquantum", "spec2k6", "stream_sum", "quantum register simulation: long strided streams",
       elements=2600, stride=1, passes=2),
    _w("mcf", "spec2k6", "pointer_chase", "network simplex: pointer chasing with poor locality",
       nodes=2048, hops=5000),
    _w("omnetpp", "spec2k6", "hash_probe", "discrete event simulation: irregular heap/table accesses",
       table_size=8192, probes=4200, hit_ratio=0.55),
    _w("sjeng", "spec2k6", "branchy_compute", "chess search: near 50/50 data-dependent branches",
       elements=5000, taken_bias=0.48),
    _w("xalancbmk", "spec2k6", "hash_probe", "XSLT processing: hash lookups and string dispatch",
       table_size=4096, probes=4200, hit_ratio=0.7),
]

# ---------------------------------------------------------------------------
# CRONO graph-suite analogue
# ---------------------------------------------------------------------------
_CRONO = [
    _w("bfs", "crono", "graph_traverse", "breadth-first traversal over a CSR graph",
       nodes=700, avg_degree=4, sweeps=2),
    _w("sssp", "crono", "sssp_relax", "single-source shortest path relaxations",
       nodes=520, avg_degree=4, rounds=2),
    _w("pagerank", "crono", "graph_traverse", "rank propagation: repeated neighbour gathers",
       nodes=600, avg_degree=5, sweeps=2),
    _w("connected_comp", "crono", "sssp_relax", "label propagation for connected components",
       nodes=520, avg_degree=3, rounds=2),
    _w("triangle_count", "crono", "graph_traverse", "triangle counting: two-level adjacency gathers",
       nodes=520, avg_degree=6, sweeps=2),
    _w("community", "crono", "graph_traverse", "community detection sweep over a denser graph",
       nodes=440, avg_degree=7, sweeps=2),
]

# ---------------------------------------------------------------------------
# STARBENCH embedded/media analogue
# ---------------------------------------------------------------------------
_STARBENCH = [
    _w("kmeans", "starbench", "kmeans_assign", "k-means assignment over a point cloud",
       points=900, clusters=8),
    _w("rgbyuv", "starbench", "pixel_filter", "colour-space conversion: streaming with clamps",
       pixels=5000),
    _w("rotate", "starbench", "stream_triad", "image rotation: multiple regular streams",
       elements=2200),
    _w("md5", "starbench", "random_compute", "hashing: long arithmetic dependence chains",
       iterations=3200),
    _w("streamcluster", "starbench", "kmeans_assign", "online clustering of streamed points",
       points=800, clusters=12),
    _w("tinyjpeg", "starbench", "histogram", "entropy coding tables: scatter/gather updates",
       samples=4500, buckets=256),
    _w("bodytrack", "starbench", "sort_scan", "particle weight resampling: compare/swap passes",
       elements=620, passes=5),
    _w("stringsearch", "starbench", "string_match", "dictionary string matching",
       haystack=3600, needle=6),
]

# ---------------------------------------------------------------------------
# NAS Parallel Benchmarks analogue
# ---------------------------------------------------------------------------
_NPB = [
    _w("bt", "npb", "dense_mm", "block tridiagonal solver: dense small-matrix arithmetic",
       dim=13),
    _w("cg", "npb", "spmv", "conjugate gradient: sparse matrix-vector products",
       rows=560, nnz_per_row=5),
    _w("dc", "npb", "hash_probe", "data cube: hashed aggregation over tuples",
       table_size=8192, probes=4200, hit_ratio=0.5),
    _w("ep", "npb", "random_compute", "embarrassingly parallel random number generation",
       iterations=3600),
    _w("ft", "npb", "stream_triad", "FFT butterflies: strided triads over large arrays",
       elements=2200),
    _w("is", "npb", "histogram", "integer sort: counting-sort histogram phase",
       samples=4500, buckets=512),
    _w("lu", "npb", "dense_mm", "LU decomposition: dense inner products",
       dim=12),
    _w("mg", "npb", "stencil", "multigrid: nearest-neighbour stencil sweeps",
       width=70, height=36, iterations=2),
    _w("sp", "npb", "stencil", "scalar pentadiagonal solver: stencil sweeps",
       width=64, height=32, iterations=2),
    _w("ua", "npb", "recursive_calls", "unstructured adaptive meshes: recursive refinement",
       depth=9, repeats=20),
]

#: Suite name -> list of workloads, in the order the paper lists them.
SUITES: Dict[str, List[Workload]] = {
    "spec2k6": _SPEC2K6,
    "crono": _CRONO,
    "starbench": _STARBENCH,
    "npb": _NPB,
}

_BY_NAME: Dict[str, Workload] = {
    workload.name: workload for suite in SUITES.values() for workload in suite
}


#: Named scenario sweeps beyond the paper's suite partitioning: behavioural
#: groupings (shared memory/branch character) that campaigns reference as
#: ``scenario:<name>`` to sweep a configuration across one axis of behaviour
#: without enumerating workloads by hand.
SCENARIOS: Dict[str, List[str]] = {
    # Irregular pointer/heap traversals — latency-bound, prefetch-hostile.
    "pointer-heavy": ["mcf", "omnetpp", "xalancbmk", "dc", "astar"],
    # Long regular streams — bandwidth-bound, prefetch-friendly.
    "streaming": ["libquantum", "rotate", "ft", "rgbyuv", "h264ref"],
    # Hard-to-predict control flow — front-end/branch-bound.
    "branchy": ["sjeng", "gobmk", "bzip2", "bodytrack"],
    # Graph analytics — a mix of gathers and data-dependent branches.
    "graph": ["bfs", "sssp", "pagerank", "triangle_count", "community",
              "connected_comp"],
    # Dense arithmetic with deep dependence chains — core-bound.
    "compute": ["bt", "lu", "ep", "md5", "kmeans"],
    # Scatter/gather table updates — TLB- and L2-sensitive.
    "scatter-gather": ["is", "tinyjpeg", "hmmer", "stringsearch"],
    # Nearest-neighbour sweeps — capacity-sensitive, stencil reuse.
    "stencil": ["mg", "sp", "streamcluster"],
}


def suite_workloads(suite: str) -> List[Workload]:
    """Workloads belonging to ``suite`` (raises ``KeyError`` for unknown suites)."""
    return list(SUITES[suite])


def scenario_workloads(scenario: str) -> List[str]:
    """Workload names of one named scenario (raises ``KeyError`` if unknown)."""
    try:
        return list(SCENARIOS[scenario])
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}"
        ) from None


def all_workloads() -> List[Workload]:
    """Every workload across all suites."""
    return [workload for suite in SUITES.values() for workload in suite]


def get_workload(name: str) -> Workload:
    """Look up one workload by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
