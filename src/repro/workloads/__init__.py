"""Synthetic workloads standing in for SPEC2006 / CRONO / STARBENCH / NPB.

The paper evaluates on four benchmark suites compiled to native binaries.
Those binaries (and their reference inputs) cannot be executed by a pure
Python reproduction, so this package provides synthetic kernels written in
the simulation ISA that exercise the same behavioural axes the paper's
analysis depends on:

* strided streaming (libquantum-, STREAM-, NPB-like) — the target of the T1
  offload engine;
* pointer chasing and irregular graph traversal (mcf-, omnetpp-, CRONO-like)
  — the accesses only a look-ahead thread can prefetch;
* data-dependent branching (gobmk-, sjeng-like) — where the BOQ removes most
  mispredictions;
* dense compute with long-latency operations (NPB-like) — where value reuse
  shortens critical paths.

Each named benchmark (e.g. ``"mcf"``, ``"bfs"``, ``"cg"``) maps to a kernel
with suite-specific parameters; see :mod:`repro.workloads.suites`.
"""

from repro.workloads.kernels import KERNEL_BUILDERS, build_kernel
from repro.workloads.suites import (
    SUITES,
    Workload,
    all_workloads,
    get_workload,
    suite_workloads,
)
from repro.workloads.simpoint import SimPointSampler, sample_trace

__all__ = [
    "KERNEL_BUILDERS",
    "build_kernel",
    "SUITES",
    "Workload",
    "all_workloads",
    "get_workload",
    "suite_workloads",
    "SimPointSampler",
    "sample_trace",
]
