"""Aggregate statistics helpers (geometric mean, normalization, ...).

The paper reports nearly every result as a geometric mean across a benchmark
suite with an I-beam showing the min/max range; these helpers implement those
aggregations once so every experiment reports them consistently.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises ``ValueError`` on an empty input or any non-positive element,
    because silently returning 0/NaN would corrupt downstream speedup
    summaries.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize every value in ``values`` to the entry at ``baseline_key``."""
    if baseline_key not in values:
        raise KeyError(f"baseline key {baseline_key!r} not present")
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {key: value / base for key, value in values.items()}


def value_range(values: Sequence[float]) -> Tuple[float, float]:
    """(min, max) of a non-empty sequence — the paper's I-beam whiskers."""
    if not values:
        raise ValueError("value_range of empty sequence")
    return min(values), max(values)


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Speedup of a configuration over a baseline given cycle counts."""
    if improved_cycles <= 0:
        raise ValueError("improved_cycles must be positive")
    if baseline_cycles <= 0:
        raise ValueError("baseline_cycles must be positive")
    return baseline_cycles / improved_cycles
