"""Aggregate statistics helpers (geometric mean, normalization, ...).

The paper reports nearly every result as a geometric mean across a benchmark
suite with an I-beam showing the min/max range; these helpers implement those
aggregations once so every experiment reports them consistently.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises ``ValueError`` on an empty input or any non-positive element,
    because silently returning 0/NaN would corrupt downstream speedup
    summaries.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize every value in ``values`` to the entry at ``baseline_key``."""
    if baseline_key not in values:
        raise KeyError(f"baseline key {baseline_key!r} not present")
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {key: value / base for key, value in values.items()}


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile (0..1) with linear interpolation.

    Deterministic (pure sort + interpolation, no sampling) so campaign
    telemetry roll-ups are byte-stable across runs over the same journal.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1] (got {fraction})")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def median(values: Sequence[float]) -> float:
    """The 50th percentile (interpolated on even-length input)."""
    return percentile(values, 0.5)


def median_abs_deviation(values: Sequence[float]) -> float:
    """Median absolute deviation from the median (robust spread measure)."""
    mid = median(values)
    return median([abs(value - mid) for value in values])


def robust_zscores(values: Sequence[float]) -> list:
    """Modified z-scores: ``0.6745 * (x - median) / MAD`` per value.

    The classic robust-outlier statistic (Iglewicz–Hoaglin): immune to the
    outliers themselves inflating the spread, which is exactly what a
    fleet-anomaly detector needs.  When the MAD is zero (more than half the
    values identical) every score is reported as 0.0 — the caller cannot
    distinguish outliers robustly in that regime and should not flag any.
    """
    if not values:
        raise ValueError("robust_zscores of empty sequence")
    mid = median(values)
    mad = median_abs_deviation(values)
    if mad == 0.0:
        return [0.0 for _ in values]
    return [0.6745 * (value - mid) / mad for value in values]


def value_range(values: Sequence[float]) -> Tuple[float, float]:
    """(min, max) of a non-empty sequence — the paper's I-beam whiskers."""
    if not values:
        raise ValueError("value_range of empty sequence")
    return min(values), max(values)


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Speedup of a configuration over a baseline given cycle counts."""
    if improved_cycles <= 0:
        raise ValueError("improved_cycles must be positive")
    if baseline_cycles <= 0:
        raise ValueError("baseline_cycles must be positive")
    return baseline_cycles / improved_cycles
