"""A small counting Bloom filter.

The paper's value-reuse optimization stores the PCs of "slow" instructions in
a *Slow Instruction Filter* (SIF), which it describes as a bloom filter that
supports insertion, membership queries and deletion (an entry is removed when
a value prediction turns out to be wrong).  Deletion requires a *counting*
bloom filter, which is what this module provides.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BloomFilter:
    """Counting Bloom filter over integer keys (instruction PCs).

    Parameters
    ----------
    num_bits:
        Number of counters in the filter.
    num_hashes:
        Number of hash functions applied per key.

    Notes
    -----
    Hashing uses a simple multiplicative scheme with distinct odd multipliers
    per hash function, which is adequate for the word-aligned PC values used
    throughout the simulator and keeps the implementation dependency-free and
    deterministic.
    """

    _MULTIPLIERS = (
        0x9E3779B97F4A7C15,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
        0x85EBCA6B2B2AE35D,
    )

    def __init__(self, num_bits: int = 1024, num_hashes: int = 3) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if not 1 <= num_hashes <= len(self._MULTIPLIERS):
            raise ValueError(
                f"num_hashes must be between 1 and {len(self._MULTIPLIERS)}"
            )
        self._counters = [0] * num_bits
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._keys = set()

    # -- hashing ---------------------------------------------------------
    def _indices(self, key: int) -> Iterator[int]:
        for i in range(self._num_hashes):
            mixed = (key * self._MULTIPLIERS[i]) & 0xFFFFFFFFFFFFFFFF
            mixed ^= mixed >> 31
            yield mixed % self._num_bits

    # -- public API ------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert ``key`` into the filter (idempotent per key)."""
        if key in self._keys:
            return
        self._keys.add(key)
        for idx in self._indices(key):
            self._counters[idx] += 1

    def remove(self, key: int) -> bool:
        """Remove ``key`` from the filter.

        Returns ``True`` if the key had been inserted, ``False`` otherwise.
        Removing a key that was never added leaves the filter untouched,
        mirroring how hardware would simply ignore such a request.
        """
        if key not in self._keys:
            return False
        self._keys.discard(key)
        for idx in self._indices(key):
            self._counters[idx] -= 1
        return True

    def __contains__(self, key: int) -> bool:
        return all(self._counters[idx] > 0 for idx in self._indices(key))

    def clear(self) -> None:
        """Reset the filter to the empty state."""
        self._counters = [0] * self._num_bits
        self._keys.clear()

    def update(self, keys: Iterable[int]) -> None:
        """Insert many keys at once."""
        for key in keys:
            self.add(key)

    def __len__(self) -> int:
        """Number of distinct keys inserted (exact, for introspection)."""
        return len(self._keys)

    @property
    def fill_ratio(self) -> float:
        """Fraction of counters that are non-zero."""
        occupied = sum(1 for c in self._counters if c > 0)
        return occupied / self._num_bits
