"""Small shared utilities used across the simulator.

The utilities here are deliberately free of any simulator-specific
dependencies so that every other sub-package can import them without
creating cycles.
"""

from repro.util.bloom import BloomFilter
from repro.util.fifo import BoundedFifo
from repro.util.rng import DeterministicRng
from repro.util.stats_math import geometric_mean, harmonic_mean, normalize

__all__ = [
    "BloomFilter",
    "BoundedFifo",
    "DeterministicRng",
    "geometric_mean",
    "harmonic_mean",
    "normalize",
]
