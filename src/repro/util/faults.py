"""Deterministic fault injection for campaign execution (chaos harness).

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming an
instrumented *site* in the execution stack and a fault *kind* to inject
there.  Code under test calls :func:`probe` at its sites; with no plan
active (the default) a probe is a cheap no-op, so production runs carry
zero injected faults and near-zero overhead.

Sites (the instrumented seams)
------------------------------

``cell.simulate``
    Probed immediately before a campaign cell simulates (inline, in a pool
    worker, and inside the watchdog subprocess).  Kinds: ``raise`` (throw
    :class:`InjectedFault` — a transient, retryable failure), ``hang``
    (sleep ``seconds`` — a stuck simulation for the watchdog to kill).

``cache.write``
    Probed by the disk cache on every result write.  Kind: ``truncate``
    (the entry is written with its tail cut off, so the checksum verify on
    the next read quarantines it — a partial-transfer/crash-mid-write
    simulation).

``worker.kill``
    Probed by the lease-driven worker loop before each claimed cell.
    Kind: ``kill`` (``os._exit(137)`` — an impolite SIGKILL-style death
    that releases nothing; recovery is lease TTL expiry).

Determinism
-----------

Nothing here consults the wall clock or Python's salted ``hash()``:

* *which* probes a spec matches is decided by ``match`` (substring of the
  probe key, normally a cell content key) and/or ``pct`` — a deterministic
  CRC-32 gate over ``(seed, site, key)`` (:func:`stable_fraction`), so the
  same plan selects the same cells on every host and every run;
* *when* a spec stops firing is decided by ``attempts`` (fire only while
  the cell's attempt counter is below it — this is what makes injected
  faults transient, so retries converge) and ``times``, a total fire budget
  accounted in a durable on-disk ledger shared by every process of a
  campaign (a killed-and-restarted worker does not re-fire its kill fault).

Activation: programmatically via :func:`activate`, or through the
``REPRO_FAULTS`` environment variable (inherited by worker subprocesses),
which takes either a JSON list of spec dicts or the compact form
``site:kind[:key=value,...]`` joined with ``;`` — e.g.::

    REPRO_FAULTS='cell.simulate:raise:times=1;cache.write:truncate:times=1'
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional

#: Environment variable carrying the active fault plan.
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable overriding the durable fire-ledger directory
#: (default: ``<cache dir>/faults``).
LEDGER_ENV = "REPRO_FAULTS_LEDGER"

SITE_CELL_SIMULATE = "cell.simulate"
SITE_CACHE_WRITE = "cache.write"
SITE_WORKER_KILL = "worker.kill"

KNOWN_SITES = (SITE_CELL_SIMULATE, SITE_CACHE_WRITE, SITE_WORKER_KILL)
KNOWN_KINDS = ("raise", "hang", "truncate", "kill")


def default_ledger_dir() -> Path:
    """The fire-ledger directory the environment resolves to right now.

    Shared with the campaign store's open-path hygiene sweep, which removes
    aged ledger markers (finished chaos runs) from the same location the
    active plan would write to.
    """
    root = os.environ.get(LEDGER_ENV)
    if root:
        return Path(root)
    cache = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return Path(cache) / "faults"


class FaultPlanError(ValueError):
    """A fault-plan spec string/dict could not be parsed or validated."""


class InjectedFault(RuntimeError):
    """The exception thrown by ``raise``-kind faults (transient by design)."""


def stable_fraction(*parts: object) -> float:
    """A deterministic value in ``[0, 1)`` derived from ``parts`` via CRC-32.

    The project-wide substitute for ``random.random()`` wherever an outcome
    must be reproducible across processes and hosts (fault selection, retry
    jitter): CRC-32 of the joined parts, never the salted ``hash()``.
    """
    text = "|".join(str(part) for part in parts)
    return (zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF) / 2.0 ** 32


@dataclass
class FaultSpec:
    """One injected fault: where (site/match/pct), what (kind), how often."""

    site: str
    kind: str
    #: Total fires allowed across *all* processes (durable ledger);
    #: ``None`` = unlimited.
    times: Optional[int] = 1
    #: Fire only while the probe's attempt counter is below this — attempt
    #: 0 is a cell's first execution, so the default injects on first
    #: attempts only and lets every retry succeed.
    attempts: int = 1
    #: Substring filter on the probe key ("" matches everything).
    match: str = ""
    #: Deterministic percentage gate over (seed, site, key); 100 = always.
    pct: float = 100.0
    seed: int = 0
    #: ``hang`` kind: how long to sleep.
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (known: {KNOWN_KINDS})"
            )
        if not self.site:
            raise FaultPlanError("fault spec needs a site")
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"times must be >= 1 or None (got {self.times})")
        if self.attempts < 1:
            raise FaultPlanError(f"attempts must be >= 1 (got {self.attempts})")

    # ------------------------------------------------------------------
    def matches(self, site: str, key: str, attempt: int) -> bool:
        """Deterministic site/key/attempt selection (no budget accounting)."""
        if site != self.site:
            return False
        if attempt >= self.attempts:
            return False
        if self.match and self.match not in key:
            return False
        if self.pct < 100.0:
            return stable_fraction(self.seed, site, key) * 100.0 < self.pct
        return True

    def ledger_id(self) -> str:
        """Content-stable identity for the durable fire ledger."""
        payload = "|".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self)
        )
        return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _coerce(name: str, value: str) -> object:
    if name in ("times",):
        return None if value.lower() in ("none", "inf") else int(value)
    if name in ("attempts", "seed"):
        return int(value)
    if name in ("pct", "seconds"):
        return float(value)
    return value


def parse_spec(entry: object) -> FaultSpec:
    """One spec from a dict (JSON form) or ``site:kind[:k=v,...]`` string."""
    if isinstance(entry, dict):
        try:
            return FaultSpec(**entry)
        except TypeError as error:
            raise FaultPlanError(f"bad fault spec {entry!r}: {error}") from None
    text = str(entry).strip()
    parts = text.split(":", 2)
    if len(parts) < 2:
        raise FaultPlanError(
            f"bad fault spec {text!r} (want site:kind[:key=value,...])"
        )
    kwargs: Dict[str, object] = {"site": parts[0].strip(), "kind": parts[1].strip()}
    if len(parts) == 3 and parts[2].strip():
        for item in parts[2].split(","):
            name, sep, value = item.partition("=")
            if not sep:
                raise FaultPlanError(f"bad fault option {item!r} in {text!r}")
            name = name.strip()
            try:
                kwargs[name] = _coerce(name, value.strip())
            except ValueError as error:
                raise FaultPlanError(
                    f"bad fault option {item!r} in {text!r}: {error}"
                ) from None
    try:
        return FaultSpec(**kwargs)
    except TypeError as error:
        raise FaultPlanError(f"bad fault spec {text!r}: {error}") from None


class FaultPlan:
    """An ordered set of fault specs plus the durable fire-budget ledger."""

    def __init__(self, specs: List[FaultSpec],
                 ledger_dir: Optional[os.PathLike] = None) -> None:
        self.specs = list(specs)
        self._ledger_dir = Path(ledger_dir) if ledger_dir is not None else None
        #: In-process fallback budget accounting, used only when the durable
        #: ledger directory cannot be created (read-only filesystem).
        self._memory_fires: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str,
              ledger_dir: Optional[os.PathLike] = None) -> "FaultPlan":
        text = text.strip()
        if not text:
            return cls([], ledger_dir=ledger_dir)
        if text.startswith("["):
            try:
                entries = json.loads(text)
            except ValueError as error:
                raise FaultPlanError(f"bad {FAULTS_ENV} JSON: {error}") from None
        else:
            entries = [part for part in text.split(";") if part.strip()]
        return cls([parse_spec(entry) for entry in entries],
                   ledger_dir=ledger_dir)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        environ = os.environ if environ is None else environ
        text = environ.get(FAULTS_ENV, "")
        if not text.strip():
            return None
        return cls.parse(text, ledger_dir=environ.get(LEDGER_ENV) or None)

    def to_json(self) -> str:
        """Canonical JSON form (what the CLI exports into ``REPRO_FAULTS``)."""
        return json.dumps([spec.to_dict() for spec in self.specs])

    # ------------------------------------------------------------------
    def ledger_dir(self) -> Path:
        if self._ledger_dir is not None:
            return self._ledger_dir
        return default_ledger_dir()

    def _acquire_fire(self, spec: FaultSpec) -> bool:
        """Take one fire slot from ``spec``'s budget; False when exhausted.

        Slots are claimed by atomically creating ``<ledger>/<id>.<n>``
        marker files, so the budget holds across every process and host
        sharing the ledger directory (workers, watchdog subprocesses,
        restarted workers).
        """
        if spec.times is None:
            return True
        ledger = self.ledger_dir()
        try:
            ledger.mkdir(parents=True, exist_ok=True)
        except OSError:
            # No durable ledger available: degrade to per-process budgets.
            ident = spec.ledger_id()
            fired = self._memory_fires.get(ident, 0)
            if fired >= spec.times:
                return False
            self._memory_fires[ident] = fired + 1
            return True
        ident = spec.ledger_id()
        for slot in range(spec.times):
            path = ledger / f"{ident}.{slot}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def fired_count(self, spec: FaultSpec) -> int:
        """How many budget slots of ``spec`` have been consumed so far."""
        if spec.times is None:
            return 0
        ident = spec.ledger_id()
        ledger = self.ledger_dir()
        if ledger.is_dir():
            return sum(
                1 for slot in range(spec.times)
                if (ledger / f"{ident}.{slot}").exists()
            )
        return self._memory_fires.get(ident, 0)

    # ------------------------------------------------------------------
    def check(self, site: str, key: str = "",
              attempt: int = 0) -> Optional[FaultSpec]:
        """Evaluate every spec against one probe; act on the first match.

        ``raise``/``hang``/``kill`` kinds act right here; ``truncate`` (and
        any other data-mangling kind) is returned to the caller, which owns
        the bytes being written.
        """
        for spec in self.specs:
            if not spec.matches(site, key, attempt):
                continue
            if not self._acquire_fire(spec):
                continue
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault at {site} (key={key!r}, attempt={attempt})"
                )
            if spec.kind == "hang":
                time.sleep(spec.seconds)
                return spec
            if spec.kind == "kill":
                # An impolite death: no lease release, no cleanup — exactly
                # what a SIGKILL'd or OOM-killed worker looks like.
                os._exit(137)
            return spec
        return None


# ---------------------------------------------------------------------------
# module-level activation (what instrumented sites consult)
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_ENV_LOADED = False


def activate(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide fault plan (None deactivates)."""
    global _PLAN, _ENV_LOADED
    _PLAN = plan
    _ENV_LOADED = True


def reset() -> None:
    """Drop the active plan and re-arm lazy env loading (tests)."""
    global _PLAN, _ENV_LOADED
    _PLAN = None
    _ENV_LOADED = False


def active_plan() -> Optional[FaultPlan]:
    """The process-wide plan: explicit activation, else ``REPRO_FAULTS``."""
    global _PLAN, _ENV_LOADED
    if not _ENV_LOADED:
        _PLAN = FaultPlan.from_env()
        _ENV_LOADED = True
    return _PLAN


def probe(site: str, key: str = "", attempt: int = 0) -> Optional[FaultSpec]:
    """Fault-injection hook: no-op unless a plan is active.

    Returns the fired spec for caller-handled kinds (``truncate``, and
    ``hang`` after its sleep); raises :class:`InjectedFault` for ``raise``;
    never returns for ``kill``.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site, key, attempt)
