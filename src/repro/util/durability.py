"""Crash-consistent file writes and orphaned-temp-file hygiene.

Every durable artifact in this codebase (disk-cache entries, campaign
manifests, failure records) is written with the same two-step contract:
write a sibling temp file, then atomically ``os.replace`` it over the final
name.  That protects *readers* from partial files, but not the files
themselves from a crash: without an ``fsync`` the rename can be durable
while the data is not (a power loss can leave a zero-length or truncated
final file on some filesystems), and a process killed between "write temp"
and "rename" leaves ``*.tmp.*`` debris behind forever.

This module hardens both edges:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` flush and fsync the
  temp file *before* the rename (and best-effort fsync the directory after
  it), so a crash can never promote un-synced data to the final name;
* :func:`append_durable` appends one fully-formed frame to a log file and
  fsyncs before returning, so an append-only journal survives a crash with
  at worst a torn *final* frame (readers must tolerate exactly that);
* :func:`sweep_orphan_tmps` removes aged ``*.tmp.*`` files on store/cache
  open, so debris from a mid-write crash cannot accumulate or trip later
  reads.  The sweep is age-gated (default 10 minutes) so it can never race
  a live writer's in-flight temp file.  :func:`sweep_aged_files` is the
  generic form: any accumulating per-run debris (fault-injection fire
  ledgers, stale worker journals) gets the same age-gated hygiene.

Everything is best-effort on errors: durability hardening must never turn a
read-only or full filesystem into a crash (the caches and stores already
degrade gracefully there).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional

#: Temp files older than this are considered orphaned by a crashed writer.
#: Live writers hold a temp file for milliseconds; ten minutes is paranoid.
ORPHAN_TMP_AGE = 600.0

#: The sweep glob.  Both the disk cache (``<name>.tmp.<pid>``) and the
#: campaign store (``<name>.tmp.<pid>.<tid>``) follow this naming scheme.
ORPHAN_TMP_GLOB = "*.tmp.*"


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (makes a rename itself durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes,
                       tmp: Optional[Path] = None) -> None:
    """Durably write ``data`` to ``path``: temp + fsync + rename + dir fsync.

    ``tmp`` overrides the temp-file path (callers with their own
    process/thread-unique naming scheme pass it in); the default is
    ``<name>.tmp.<pid>``, which :func:`sweep_orphan_tmps` recognises.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if tmp is None:
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)


def atomic_write_text(path: Path, text: str,
                      tmp: Optional[Path] = None) -> None:
    atomic_write_bytes(path, text.encode("utf-8"), tmp=tmp)


def append_durable(path: Path, data: bytes) -> None:
    """Append ``data`` to ``path`` and fsync before returning.

    The event-journal write primitive: each call appends one fully-formed
    frame (a JSONL line) with ``O_APPEND``, so concurrent appenders never
    interleave partial frames, and the fsync guarantees an acknowledged
    frame survives a crash.  A crash *during* the append can leave at most
    one torn frame at the file tail — journal readers skip it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)


def sweep_aged_files(directory: Path, pattern: str,
                     max_age_seconds: float) -> List[Path]:
    """Remove files matching ``pattern`` older than ``max_age_seconds``.

    Only files whose mtime is older than the cutoff are touched, so live
    writers' in-flight files are never raced.  Errors (vanished files,
    permissions) are ignored — hygiene must never break the caller.
    Returns the removed paths.
    """
    import time

    removed: List[Path] = []
    directory = Path(directory)
    if not directory.is_dir():
        return removed
    cutoff = time.time() - max_age_seconds
    try:
        candidates = list(directory.glob(pattern))
    except OSError:
        return removed
    for path in candidates:
        try:
            if not path.is_file() or path.stat().st_mtime >= cutoff:
                continue
            path.unlink()
            removed.append(path)
        except OSError:
            continue
    return removed


def sweep_orphan_tmps(directory: Path,
                      max_age_seconds: float = ORPHAN_TMP_AGE) -> List[Path]:
    """Remove aged ``*.tmp.*`` debris under ``directory``; returns removals.

    A specialisation of :func:`sweep_aged_files` for the atomic-write temp
    naming scheme shared by the disk cache and the campaign store.
    """
    return sweep_aged_files(directory, ORPHAN_TMP_GLOB, max_age_seconds)
