"""Deterministic random number generation for workload synthesis.

Every stochastic decision in the repository (workload data layout, branch
outcome patterns, graph topology, ...) flows through a
:class:`DeterministicRng` seeded explicitly, so that tests, examples and
benchmarks are exactly reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """Thin wrapper over :class:`random.Random` with convenience helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream for a sub-component.

        Forking avoids the classic pitfall where inserting one extra random
        draw in one component perturbs every other component's stream.
        """
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    # -- draws -----------------------------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials until the first success (>= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        count = 1
        while self._rng.random() > p:
            count += 1
        return count

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def permutation(self, n: int) -> List[int]:
        values = list(range(n))
        self._rng.shuffle(values)
        return values
