"""Bounded FIFO queue used for the BOQ and FQ hardware structures."""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Raised when pushing to a full :class:`BoundedFifo`."""


class QueueEmptyError(RuntimeError):
    """Raised when popping from an empty :class:`BoundedFifo`."""


class BoundedFifo(Generic[T]):
    """A FIFO with a hard capacity limit.

    Hardware queues such as the Branch Outcome Queue (BOQ) and the Footnote
    Queue (FQ) have a fixed number of entries; the producing core must stall
    when they are full and the consuming core must stall when they are empty.
    This class models exactly that, and additionally records high-water-mark
    and stall statistics that the experiments use.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._items: deque[T] = deque()
        self.high_water_mark = 0
        self.push_count = 0
        self.pop_count = 0
        self.full_rejections = 0
        self.empty_rejections = 0

    # -- capacity --------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_slots(self) -> int:
        return self._capacity - len(self._items)

    def is_full(self) -> bool:
        return len(self._items) >= self._capacity

    def is_empty(self) -> bool:
        return not self._items

    # -- mutation --------------------------------------------------------
    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`QueueFullError` when full."""
        if self.is_full():
            self.full_rejections += 1
            raise QueueFullError(f"queue full (capacity={self._capacity})")
        self._items.append(item)
        self.push_count += 1
        self.high_water_mark = max(self.high_water_mark, len(self._items))

    def try_push(self, item: T) -> bool:
        """Append ``item`` if space is available; returns success."""
        if self.is_full():
            self.full_rejections += 1
            return False
        self._items.append(item)
        self.push_count += 1
        self.high_water_mark = max(self.high_water_mark, len(self._items))
        return True

    def pop(self) -> T:
        """Remove and return the oldest item; raises when empty."""
        if self.is_empty():
            self.empty_rejections += 1
            raise QueueEmptyError("queue empty")
        self.pop_count += 1
        return self._items.popleft()

    def try_pop(self) -> Optional[T]:
        """Remove and return the oldest item, or ``None`` when empty."""
        if self.is_empty():
            self.empty_rejections += 1
            return None
        self.pop_count += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """Return the oldest item without removing it, or ``None``."""
        return self._items[0] if self._items else None

    def clear(self) -> None:
        """Drop every queued item (used on look-ahead thread reboot)."""
        self._items.clear()

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)
