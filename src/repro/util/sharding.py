"""Deterministic shard partitioning shared by campaigns and the test suite.

One definition of "shard i of N" for the whole project: the CI matrix, the
``repro run --shard i/N`` static campaign partitioning and the pytest
``--shard`` option all call :func:`partition`, so their partitions are
guaranteed disjoint and exhaustive by the same code.

The scheme is round-robin over the *sorted* name list: sorting makes the
partition independent of discovery order (two hosts enumerating cells or
collecting tests in different orders still agree on who owns what), and
round-robin keeps shard sizes balanced to within one element.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


class ShardError(ValueError):
    """An ``i/N`` shard specification failed validation."""


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``"i/N"`` into ``(index, count)``; raises :class:`ShardError`.

    ``index`` is zero-based and must satisfy ``0 <= index < count``.
    """
    text = str(spec).strip()
    parts = text.split("/")
    if len(parts) != 2:
        raise ShardError(f"shard spec {spec!r} is not of the form i/N")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ShardError(f"shard spec {spec!r} is not of the form i/N") from None
    if count <= 0:
        raise ShardError(f"shard spec {spec!r}: N must be positive")
    if not 0 <= index < count:
        raise ShardError(
            f"shard spec {spec!r}: index must be in [0, {count})"
        )
    return index, count


def partition(names: Iterable[str], index: int, count: int) -> List[str]:
    """The members of shard ``index`` of ``count``, in sorted order.

    Round-robin over the sorted input: shard ``i`` owns the i-th, (i+N)-th,
    ... sorted names.  Across ``i = 0..N-1`` the shards are disjoint and
    cover the input exactly (duplicates collapse — inputs are name sets).
    """
    if count <= 0:
        raise ShardError("shard count must be positive")
    if not 0 <= index < count:
        raise ShardError(f"shard index {index} must be in [0, {count})")
    ordered = sorted(set(names))
    return ordered[index::count]


def shard_filter(names: Sequence[str], spec: str) -> List[str]:
    """``partition`` driven by an ``"i/N"`` spec string."""
    index, count = parse_shard(spec)
    return partition(names, index, count)
