"""Set-associative cache with LRU replacement, MSHRs, a victim write buffer
and prefetch timing.

The contention primitives (MSHR files — banked or not — and the write
buffer) are clients of the shared occupancy layer in
:mod:`repro.memory.resources`; this module wires them into the cache's
lookup/fill timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.resources import (
    BankedMshrFile,
    MshrFile,
    OccupancyQueue,
    WriteBufferConfig,
    probe_peak,
)

__all__ = [
    "Cache", "CacheConfig", "CacheStats",
    "BankedMshrFile", "MshrFile", "WriteBufferConfig",
]


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "cache"
    size_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = 64
    #: Access latency in core cycles (hit latency of this level).
    latency: int = 3
    #: Maximum outstanding misses this level can sustain (the MSHR file
    #: capacity).  ``None`` means unbounded: no file is built and the timing
    #: path is bit-identical to a machine with infinite memory-level
    #: parallelism.  A bounded file stalls further misses while full (see
    #: :class:`~repro.memory.resources.MshrFile`) and gates prefetch issue.
    mshr_entries: Optional[int] = 32
    #: Address-interleaved MSHR banking: ``mshr_entries`` split evenly over
    #: this many banks (``bank = block % mshr_banks``).  ``None``/``1`` keeps
    #: the single file; requires ``mshr_entries`` to divide evenly.  Bank
    #: conflict stalls (bank full while others have room) are counted
    #: separately from capacity stalls.
    mshr_banks: Optional[int] = None
    #: Victim write buffer of this level (see
    #: :class:`~repro.memory.resources.WriteBufferConfig`).  ``None`` means
    #: no buffer is modelled: dirty victims drain instantly and fills are
    #: never back-pressured — bit-identical to the pre-model machine.
    write_buffer: Optional[WriteBufferConfig] = None

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity*block"
            )
        if (
            self.mshr_banks is not None
            and self.mshr_banks > 1
            and self.mshr_entries is not None
            and self.mshr_entries % self.mshr_banks
        ):
            raise ValueError(
                f"{self.name}: mshr_entries ({self.mshr_entries}) must divide "
                f"evenly across {self.mshr_banks} banks"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class CacheStats:
    """Counters accumulated by one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0          # demand access served by a prefetched line
    late_prefetch_hits: int = 0     # ...where the prefetch was still in flight
    prefetches_issued: int = 0
    prefetches_useless: int = 0     # prefetched lines evicted before any use
    writebacks: int = 0
    evictions: int = 0
    #: Cycles demand misses spent waiting for a free MSHR entry (fractional:
    #: the core model runs on sub-cycle timestamps).
    mshr_stall_cycles: float = 0.0
    #: Number of demand misses that had to wait for a free MSHR entry.
    mshr_stalls: int = 0
    #: Primary misses that allocated a fresh MSHR entry.
    mshr_allocations: int = 0
    #: Fills that coalesced onto an already in-flight entry (no double entry).
    mshr_coalesced: int = 0
    #: Highest observed number of simultaneously in-flight entries.
    mshr_peak_occupancy: int = 0
    #: Prefetch requests dropped because the MSHR file was full at issue.
    prefetches_dropped: int = 0
    #: Demand-miss MSHR stalls where the miss's bank was full while another
    #: bank still had room (a subset of ``mshr_stalls``; only a banked file
    #: can produce them).
    mshr_bank_conflicts: int = 0
    #: Cycles lost to those bank-conflict stalls (subset of
    #: ``mshr_stall_cycles``).
    mshr_bank_conflict_cycles: float = 0.0
    #: Dirty victims admitted to this level's write buffer.
    wb_enqueued: int = 0
    #: Fills back-pressured because the write buffer was full.
    wb_stalls: int = 0
    #: Cycles fills spent waiting for a free write-buffer slot.
    wb_stall_cycles: float = 0.0
    #: Highest observed number of buffered victim writebacks.
    wb_peak_occupancy: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        for name in vars(other):
            if name.endswith("_peak_occupancy"):
                # Peak occupancies are high-water marks, not flow counters.
                setattr(self, name, max(getattr(self, name), getattr(other, name)))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(slots=True)
class _Line:
    tag: int
    fill_time: int = 0              # cycle when data is available in this level
    last_use: int = 0
    dirty: bool = False
    from_prefetch: bool = False
    prefetch_used: bool = False


class Cache:
    """One level of cache.

    The cache is a timing filter: :meth:`lookup` answers whether a block is
    present and how many cycles this level adds, and :meth:`fill` installs a
    block (from a demand miss or a prefetch), possibly evicting another.  The
    surrounding :class:`~repro.memory.hierarchy.CoreMemorySystem` composes
    levels and propagates misses downward.
    """

    def __init__(self, config: CacheConfig, lookahead_mode: bool = False) -> None:
        self.config = config
        self.stats = CacheStats()
        #: Look-ahead containment: dirty lines are discarded, never written back.
        self.lookahead_mode = lookahead_mode
        # Geometry hoisted to plain attributes: lookup() runs millions of
        # times per simulation and must not chase config properties.
        self._block_bytes = config.block_bytes
        self._num_sets = config.num_sets
        self._latency = config.latency
        self._associativity = config.associativity
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        #: ``None`` when MSHRs are unbounded — the whole model is inert then.
        #: A banked configuration (``mshr_banks >= 2``) interleaves the file
        #: over block-address banks and surfaces bank-conflict stalls.
        self._mshr = self._build_mshr(config)
        #: ``None`` when no write buffer is configured — dirty victims drain
        #: instantly and fills are never back-pressured.
        self._write_buffer: Optional[OccupancyQueue] = (
            OccupancyQueue(config.write_buffer.entries)
            if config.write_buffer is not None else None
        )
        #: MSHR wait charged to the most recent miss returned by lookup();
        #: the hierarchy adds it to the miss's issue time toward the next
        #: level.  Stays 0 forever when the file is unbounded.
        self.last_miss_stall: float = 0.0
        #: Write-buffer wait charged to the most recent fill that evicted a
        #: dirty victim while the buffer was full; the hierarchy adds it to
        #: the access's ready time (back-pressure) and to the victim's drain
        #: start.  Stays 0 forever without a buffer.
        self.last_wb_stall: float = 0.0

    @staticmethod
    def _build_mshr(config: CacheConfig):
        if config.mshr_entries is None:
            return None
        if config.mshr_banks is not None and config.mshr_banks > 1:
            return BankedMshrFile(config.mshr_entries, config.mshr_banks)
        return MshrFile(config.mshr_entries)

    # -- address helpers -------------------------------------------------
    def _index_tag(self, address: int) -> Tuple[int, int]:
        block = address // self._block_bytes
        return block % self._num_sets, block // self._num_sets

    def block_address(self, address: int) -> int:
        return (address // self._block_bytes) * self._block_bytes

    # -- lookups ----------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        block = address // self._block_bytes
        return (block // self._num_sets) in self._sets[block % self._num_sets]

    def lookup(self, address: int, now: int, is_write: bool = False) -> Optional[int]:
        """Demand access.  Returns the cycle the data is available, or ``None``.

        A hit returns ``max(now, line.fill_time) + latency`` so that accesses
        arriving before an in-flight prefetch completes pay the residual
        latency.  A miss returns ``None``; the caller is responsible for
        going to the next level and calling :meth:`fill`.
        """
        stats = self.stats
        stats.accesses += 1
        block = address // self._block_bytes
        line = self._sets[block % self._num_sets].get(block // self._num_sets)
        if line is None:
            stats.misses += 1
            mshr = self._mshr
            if mshr is not None:
                stall = mshr.acquire_delay(block, now)
                self.last_miss_stall = stall
                if stall > 0:
                    stats.mshr_stall_cycles += stall
                    stats.mshr_stalls += 1
                    if mshr.last_conflict:
                        stats.mshr_bank_conflicts += 1
                        stats.mshr_bank_conflict_cycles += stall
            return None
        stats.hits += 1
        line.last_use = now
        if is_write:
            line.dirty = True
        if line.from_prefetch and not line.prefetch_used:
            line.prefetch_used = True
            stats.prefetch_hits += 1
            if line.fill_time > now:
                stats.late_prefetch_hits += 1
        fill_time = line.fill_time
        ready = fill_time if fill_time > now else now
        return ready + self._latency

    # -- fills and evictions ----------------------------------------------
    def fill(self, address: int, fill_time: int, dirty: bool = False,
             from_prefetch: bool = False, allocate_mshr: bool = True,
             now: Optional[float] = None) -> Optional[int]:
        """Install a block; returns the address of a dirty victim needing
        writeback (``None`` otherwise).

        ``allocate_mshr=False`` marks fills that carry no outstanding miss
        (dirty-victim writebacks between levels): they install data that is
        already on chip and must not occupy a miss register.  ``now`` is the
        cycle the triggering miss issued; it lets the peak-occupancy
        telemetry retire completed entries before measuring (without it the
        lazily-pruned map size is used, an upper bound).

        With a write buffer configured, a fill that evicts a dirty victim
        while the buffer is full is *back-pressured*: the wait for a free
        slot lands in :attr:`last_wb_stall` (the hierarchy adds it to the
        access's ready time and the victim's drain start) and the incoming
        line's availability shifts by the same amount.
        """
        if self._write_buffer is not None:
            self.last_wb_stall = 0.0
        block = address // self._block_bytes
        index = block % self._num_sets
        tag = block // self._num_sets
        cache_set = self._sets[index]
        stats = self.stats
        if from_prefetch:
            stats.prefetches_issued += 1
        mshr = self._mshr
        if mshr is not None and allocate_mshr:
            if mshr.allocate(block, fill_time):
                stats.mshr_allocations += 1
                stats.mshr_peak_occupancy = probe_peak(
                    mshr, now, stats.mshr_peak_occupancy
                )
            else:
                stats.mshr_coalesced += 1
        line = cache_set.get(tag)
        if line is not None:
            # Keep the earliest availability time; refresh prefetch marking.
            if fill_time < line.fill_time:
                line.fill_time = fill_time
            line.dirty = line.dirty or dirty
            return None

        victim_writeback: Optional[int] = None
        if len(cache_set) >= self._associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.from_prefetch and not victim.prefetch_used:
                self.stats.prefetches_useless += 1
            if victim.dirty:
                if self.lookahead_mode:
                    # Containment of speculation: discard silently.
                    pass
                else:
                    self.stats.writebacks += 1
                    victim_block = victim_tag * self._num_sets + index
                    victim_writeback = victim_block * self._block_bytes
                    wb = self._write_buffer
                    if wb is not None:
                        # The victim needs a buffer slot at eviction time
                        # (the fill's arrival).  A full buffer stalls the
                        # fill until the earliest drain completes; the freed
                        # slot is consumed by the follow-up writeback_admit.
                        wb_stall = wb.reserve_delay(fill_time)
                        self.last_wb_stall = wb_stall
                        if wb_stall > 0:
                            stats.wb_stalls += 1
                            stats.wb_stall_cycles += wb_stall
                            fill_time += wb_stall

        cache_set[tag] = _Line(
            tag=tag,
            fill_time=fill_time,
            last_use=fill_time,
            dirty=dirty,
            from_prefetch=from_prefetch,
        )
        return victim_writeback

    def invalidate_all(self) -> None:
        """Drop every line (used when rebooting the look-ahead thread core)."""
        self._sets = [dict() for _ in range(self.config.num_sets)]
        if self._mshr is not None:
            self._mshr.drain()
        if self._write_buffer is not None:
            self._write_buffer.drain()

    # -- MSHR / write-buffer helpers ---------------------------------------
    def mshr_available(self, now: float, address: Optional[int] = None) -> bool:
        """Whether a prefetch could allocate an MSHR entry at cycle ``now``.

        Demand misses stall for a free entry; prefetches are speculative and
        are dropped instead (the caller checks this before issuing).  With a
        banked file the question is asked of ``address``'s bank — the slot
        that would actually be allocated.
        """
        mshr = self._mshr
        if mshr is None:
            return True
        if address is None:
            return mshr.available(now)
        return mshr.available(now, address // self._block_bytes)

    def mshr_occupancy(self, now: float) -> int:
        """In-flight misses at cycle ``now`` (0 when unbounded)."""
        return 0 if self._mshr is None else self._mshr.occupancy(now)

    @property
    def has_write_buffer(self) -> bool:
        return self._write_buffer is not None

    def writeback_admit(self, completion: float, at: Optional[float] = None) -> None:
        """Admit one dirty victim into the write buffer (no-op without one).

        ``completion`` is when the victim's write lands at the next level
        down (or DRAM) — the slot is held until then.  ``at`` is the drain
        start time, used to retire completed entries before the peak-
        occupancy telemetry measures.
        """
        wb = self._write_buffer
        if wb is None:
            return
        wb.push(completion)
        stats = self.stats
        stats.wb_enqueued += 1
        stats.wb_peak_occupancy = probe_peak(wb, at, stats.wb_peak_occupancy)

    def wb_occupancy(self, now: float) -> int:
        """Buffered victim writebacks still draining at cycle ``now``."""
        return 0 if self._write_buffer is None else self._write_buffer.occupancy(now)

    def drain_mshrs(self) -> None:
        """Quiesce every occupancy resource of this level: used at
        simulated-clock-domain boundaries (end of cache warmup, look-ahead/
        main-thread pass handoffs) where access timestamps restart and stale
        completion times would otherwise alias into the new time base.  The
        write buffer quiesces alongside the MSHR file for the same reason."""
        if self._mshr is not None:
            self._mshr.drain()
        if self._write_buffer is not None:
            self._write_buffer.drain()
        self.last_miss_stall = 0.0
        self.last_wb_stall = 0.0

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> Tuple[list, dict, Optional[dict], Optional[tuple]]:
        """An immutable-by-convention copy of all mutable cache state.

        Used by the warmed-memory memo (:mod:`repro.core.system`): the state
        captured after replaying a warmup window once can be restored into a
        freshly-built cache of the same geometry instead of replaying again.
        """
        sets = [
            {tag: (line.tag, line.fill_time, line.last_use, line.dirty,
                   line.from_prefetch, line.prefetch_used)
             for tag, line in cache_set.items()}
            for cache_set in self._sets
        ]
        mshr = self._mshr.snapshot_state() if self._mshr is not None else None
        wb = (
            self._write_buffer.snapshot_state()
            if self._write_buffer is not None else None
        )
        return sets, dict(vars(self.stats)), mshr, wb

    def restore_state(self, snapshot) -> None:
        """Restore state captured by :meth:`snapshot_state` (same geometry)."""
        sets, stats, mshr, wb = snapshot
        self._sets = [
            {tag: _Line(*fields) for tag, fields in cache_set.items()}
            for cache_set in sets
        ]
        for name, value in stats.items():
            setattr(self.stats, name, value)
        if self._mshr is not None:
            self._mshr.restore_state(mshr if mshr is not None else {})
        if self._write_buffer is not None:
            self._write_buffer.restore_state(
                wb if wb is not None else ({}, 0)
            )

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)
