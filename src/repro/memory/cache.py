"""Set-associative cache with LRU replacement, MSHRs and prefetch timing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "cache"
    size_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = 64
    #: Access latency in core cycles (hit latency of this level).
    latency: int = 3
    #: Maximum outstanding misses.  MSHR occupancy is not currently modelled
    #: in the timing path (see ROADMAP open items); the parameter is kept so
    #: configurations — and their content fingerprints — stay stable when
    #: the model lands.
    mshr_entries: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity*block"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class CacheStats:
    """Counters accumulated by one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0          # demand access served by a prefetched line
    late_prefetch_hits: int = 0     # ...where the prefetch was still in flight
    prefetches_issued: int = 0
    prefetches_useless: int = 0     # prefetched lines evicted before any use
    writebacks: int = 0
    evictions: int = 0
    mshr_stall_cycles: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(slots=True)
class _Line:
    tag: int
    fill_time: int = 0              # cycle when data is available in this level
    last_use: int = 0
    dirty: bool = False
    from_prefetch: bool = False
    prefetch_used: bool = False


class Cache:
    """One level of cache.

    The cache is a timing filter: :meth:`lookup` answers whether a block is
    present and how many cycles this level adds, and :meth:`fill` installs a
    block (from a demand miss or a prefetch), possibly evicting another.  The
    surrounding :class:`~repro.memory.hierarchy.CoreMemorySystem` composes
    levels and propagates misses downward.
    """

    def __init__(self, config: CacheConfig, lookahead_mode: bool = False) -> None:
        self.config = config
        self.stats = CacheStats()
        #: Look-ahead containment: dirty lines are discarded, never written back.
        self.lookahead_mode = lookahead_mode
        # Geometry hoisted to plain attributes: lookup() runs millions of
        # times per simulation and must not chase config properties.
        self._block_bytes = config.block_bytes
        self._num_sets = config.num_sets
        self._latency = config.latency
        self._associativity = config.associativity
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]

    # -- address helpers -------------------------------------------------
    def _index_tag(self, address: int) -> Tuple[int, int]:
        block = address // self._block_bytes
        return block % self._num_sets, block // self._num_sets

    def block_address(self, address: int) -> int:
        return (address // self._block_bytes) * self._block_bytes

    # -- lookups ----------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        block = address // self._block_bytes
        return (block // self._num_sets) in self._sets[block % self._num_sets]

    def lookup(self, address: int, now: int, is_write: bool = False) -> Optional[int]:
        """Demand access.  Returns the cycle the data is available, or ``None``.

        A hit returns ``max(now, line.fill_time) + latency`` so that accesses
        arriving before an in-flight prefetch completes pay the residual
        latency.  A miss returns ``None``; the caller is responsible for
        going to the next level and calling :meth:`fill`.
        """
        stats = self.stats
        stats.accesses += 1
        block = address // self._block_bytes
        line = self._sets[block % self._num_sets].get(block // self._num_sets)
        if line is None:
            stats.misses += 1
            return None
        stats.hits += 1
        line.last_use = now
        if is_write:
            line.dirty = True
        if line.from_prefetch and not line.prefetch_used:
            line.prefetch_used = True
            stats.prefetch_hits += 1
            if line.fill_time > now:
                stats.late_prefetch_hits += 1
        fill_time = line.fill_time
        ready = fill_time if fill_time > now else now
        return ready + self._latency

    # -- fills and evictions ----------------------------------------------
    def fill(self, address: int, fill_time: int, dirty: bool = False,
             from_prefetch: bool = False) -> Optional[int]:
        """Install a block; returns the address of a dirty victim needing
        writeback (``None`` otherwise)."""
        block = address // self._block_bytes
        index = block % self._num_sets
        tag = block // self._num_sets
        cache_set = self._sets[index]
        if from_prefetch:
            self.stats.prefetches_issued += 1
        line = cache_set.get(tag)
        if line is not None:
            # Keep the earliest availability time; refresh prefetch marking.
            if fill_time < line.fill_time:
                line.fill_time = fill_time
            line.dirty = line.dirty or dirty
            return None

        victim_writeback: Optional[int] = None
        if len(cache_set) >= self._associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.from_prefetch and not victim.prefetch_used:
                self.stats.prefetches_useless += 1
            if victim.dirty:
                if self.lookahead_mode:
                    # Containment of speculation: discard silently.
                    pass
                else:
                    self.stats.writebacks += 1
                    victim_block = victim_tag * self._num_sets + index
                    victim_writeback = victim_block * self._block_bytes

        cache_set[tag] = _Line(
            tag=tag,
            fill_time=fill_time,
            last_use=fill_time,
            dirty=dirty,
            from_prefetch=from_prefetch,
        )
        return victim_writeback

    def invalidate_all(self) -> None:
        """Drop every line (used when rebooting the look-ahead thread core)."""
        self._sets = [dict() for _ in range(self.config.num_sets)]

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> Tuple[list, dict]:
        """An immutable-by-convention copy of all mutable cache state.

        Used by the warmed-memory memo (:mod:`repro.core.system`): the state
        captured after replaying a warmup window once can be restored into a
        freshly-built cache of the same geometry instead of replaying again.
        """
        sets = [
            {tag: (line.tag, line.fill_time, line.last_use, line.dirty,
                   line.from_prefetch, line.prefetch_used)
             for tag, line in cache_set.items()}
            for cache_set in self._sets
        ]
        return sets, dict(vars(self.stats))

    def restore_state(self, snapshot: Tuple[list, dict]) -> None:
        """Restore state captured by :meth:`snapshot_state` (same geometry)."""
        sets, stats = snapshot
        self._sets = [
            {tag: _Line(*fields) for tag, fields in cache_set.items()}
            for cache_set in sets
        ]
        for name, value in stats.items():
            setattr(self.stats, name, value)

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)
