"""Set-associative cache with LRU replacement, MSHRs and prefetch timing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "cache"
    size_bytes: int = 32 * 1024
    associativity: int = 4
    block_bytes: int = 64
    #: Access latency in core cycles (hit latency of this level).
    latency: int = 3
    #: Maximum outstanding misses this level can sustain (the MSHR file
    #: capacity).  ``None`` means unbounded: no file is built and the timing
    #: path is bit-identical to a machine with infinite memory-level
    #: parallelism.  A bounded file stalls further misses while full (see
    #: :class:`MshrFile`) and gates prefetch issue.
    mshr_entries: Optional[int] = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity*block"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class CacheStats:
    """Counters accumulated by one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0          # demand access served by a prefetched line
    late_prefetch_hits: int = 0     # ...where the prefetch was still in flight
    prefetches_issued: int = 0
    prefetches_useless: int = 0     # prefetched lines evicted before any use
    writebacks: int = 0
    evictions: int = 0
    #: Cycles demand misses spent waiting for a free MSHR entry (fractional:
    #: the core model runs on sub-cycle timestamps).
    mshr_stall_cycles: float = 0.0
    #: Number of demand misses that had to wait for a free MSHR entry.
    mshr_stalls: int = 0
    #: Primary misses that allocated a fresh MSHR entry.
    mshr_allocations: int = 0
    #: Fills that coalesced onto an already in-flight entry (no double entry).
    mshr_coalesced: int = 0
    #: Highest observed number of simultaneously in-flight entries.
    mshr_peak_occupancy: int = 0
    #: Prefetch requests dropped because the MSHR file was full at issue.
    prefetches_dropped: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        for name in vars(other):
            if name == "mshr_peak_occupancy":
                # Peak occupancy is a high-water mark, not a flow counter.
                self.mshr_peak_occupancy = max(
                    self.mshr_peak_occupancy, other.mshr_peak_occupancy
                )
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))


class MshrFile:
    """Miss-status-holding registers of one cache level.

    The simulator is trace-driven rather than event-driven, so the file is a
    *lazy timestamp* model: an entry is a ``block -> data-arrival cycle``
    pair.  A primary miss allocates an entry that logically occupies the file
    until its fill time passes; entries whose arrival time is behind the
    current access time have retired and are pruned on demand.  A secondary
    fill for an in-flight block coalesces onto the existing entry (keeping
    the earliest arrival) instead of allocating a second one.

    When every entry is still in flight at the time of a new primary miss,
    the miss cannot issue: :meth:`acquire_delay` returns how long it must
    wait for the earliest entry to retire (the freed slot is consumed
    immediately so back-to-back stalled misses queue behind one another).
    """

    __slots__ = ("capacity", "_inflight")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive (None = unbounded)")
        self.capacity = capacity
        self._inflight: Dict[int, float] = {}

    # -- occupancy ---------------------------------------------------------
    def _retire(self, now: float) -> None:
        inflight = self._inflight
        if inflight:
            for block in [b for b, t in inflight.items() if t <= now]:
                del inflight[block]

    def occupancy(self, now: float) -> int:
        """Entries still in flight at cycle ``now``."""
        self._retire(now)
        return len(self._inflight)

    def available(self, now: float) -> bool:
        """Whether a new entry could be allocated at cycle ``now``.

        The full retire scan only runs when the file looks full — the
        common uncontended case is a single length check.
        """
        if len(self._inflight) < self.capacity:
            return True
        self._retire(now)
        return len(self._inflight) < self.capacity

    # -- demand-miss path --------------------------------------------------
    def acquire_delay(self, block: int, now: float) -> float:
        """Cycles a primary miss for ``block`` must wait for a free entry.

        Secondary misses (the block is already in flight — e.g. it was
        evicted while its refill was outstanding) coalesce and never stall.
        A full file pops its earliest-retiring entry and charges the wait:
        the caller is guaranteed to follow up with a :meth:`allocate` via
        ``Cache.fill``, which takes over the freed slot.
        """
        inflight = self._inflight
        # A block whose earlier flight already completed must be treated as
        # a fresh primary miss, not coalesced onto the stale entry (which
        # would occupy no slot and keep the stale arrival time).  Stale
        # pruning is per-block here and the full retire scan only runs when
        # the file looks full, keeping the uncontended miss path O(1).
        arrival = inflight.get(block)
        if arrival is not None:
            if arrival > now:
                return 0.0
            del inflight[block]
        if len(inflight) < self.capacity:
            return 0.0
        self._retire(now)
        if len(inflight) < self.capacity:
            return 0.0
        earliest_block = min(inflight, key=inflight.__getitem__)
        earliest = inflight.pop(earliest_block)
        return earliest - now

    def allocate(self, block: int, completion: float) -> bool:
        """Track an in-flight fill; returns True for a fresh (primary) entry.

        An existing entry for the block coalesces, keeping the earliest
        data-arrival time.  (Demand misses prune a *stale* same-block entry
        in :meth:`acquire_delay` before their fill lands here; a prefetch
        fill landing on a stale entry merely retires one scan earlier — a
        transient one-entry undercount on a speculative corner.)  The file
        never grows beyond its capacity: if an un-gated fill would overflow
        it, the earliest-retiring entry is dropped (it is the first to have
        completed anyway).
        """
        inflight = self._inflight
        if block in inflight:
            if completion < inflight[block]:
                inflight[block] = completion
            return False
        inflight[block] = completion
        if len(inflight) > self.capacity:
            victim = min(inflight, key=inflight.__getitem__)
            del inflight[victim]
        return True

    # -- lifecycle ---------------------------------------------------------
    def drain(self) -> None:
        """Forget every in-flight entry (quiesce at a clock-domain boundary)."""
        self._inflight.clear()

    def snapshot_state(self) -> Dict[int, float]:
        return dict(self._inflight)

    def restore_state(self, snapshot: Dict[int, float]) -> None:
        self._inflight = dict(snapshot)

    def __len__(self) -> int:
        return len(self._inflight)


@dataclass(slots=True)
class _Line:
    tag: int
    fill_time: int = 0              # cycle when data is available in this level
    last_use: int = 0
    dirty: bool = False
    from_prefetch: bool = False
    prefetch_used: bool = False


class Cache:
    """One level of cache.

    The cache is a timing filter: :meth:`lookup` answers whether a block is
    present and how many cycles this level adds, and :meth:`fill` installs a
    block (from a demand miss or a prefetch), possibly evicting another.  The
    surrounding :class:`~repro.memory.hierarchy.CoreMemorySystem` composes
    levels and propagates misses downward.
    """

    def __init__(self, config: CacheConfig, lookahead_mode: bool = False) -> None:
        self.config = config
        self.stats = CacheStats()
        #: Look-ahead containment: dirty lines are discarded, never written back.
        self.lookahead_mode = lookahead_mode
        # Geometry hoisted to plain attributes: lookup() runs millions of
        # times per simulation and must not chase config properties.
        self._block_bytes = config.block_bytes
        self._num_sets = config.num_sets
        self._latency = config.latency
        self._associativity = config.associativity
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        #: ``None`` when MSHRs are unbounded — the whole model is inert then.
        self._mshr: Optional[MshrFile] = (
            MshrFile(config.mshr_entries) if config.mshr_entries is not None else None
        )
        #: MSHR wait charged to the most recent miss returned by lookup();
        #: the hierarchy adds it to the miss's issue time toward the next
        #: level.  Stays 0 forever when the file is unbounded.
        self.last_miss_stall: float = 0.0

    # -- address helpers -------------------------------------------------
    def _index_tag(self, address: int) -> Tuple[int, int]:
        block = address // self._block_bytes
        return block % self._num_sets, block // self._num_sets

    def block_address(self, address: int) -> int:
        return (address // self._block_bytes) * self._block_bytes

    # -- lookups ----------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        block = address // self._block_bytes
        return (block // self._num_sets) in self._sets[block % self._num_sets]

    def lookup(self, address: int, now: int, is_write: bool = False) -> Optional[int]:
        """Demand access.  Returns the cycle the data is available, or ``None``.

        A hit returns ``max(now, line.fill_time) + latency`` so that accesses
        arriving before an in-flight prefetch completes pay the residual
        latency.  A miss returns ``None``; the caller is responsible for
        going to the next level and calling :meth:`fill`.
        """
        stats = self.stats
        stats.accesses += 1
        block = address // self._block_bytes
        line = self._sets[block % self._num_sets].get(block // self._num_sets)
        if line is None:
            stats.misses += 1
            mshr = self._mshr
            if mshr is not None:
                stall = mshr.acquire_delay(block, now)
                self.last_miss_stall = stall
                if stall > 0:
                    stats.mshr_stall_cycles += stall
                    stats.mshr_stalls += 1
            return None
        stats.hits += 1
        line.last_use = now
        if is_write:
            line.dirty = True
        if line.from_prefetch and not line.prefetch_used:
            line.prefetch_used = True
            stats.prefetch_hits += 1
            if line.fill_time > now:
                stats.late_prefetch_hits += 1
        fill_time = line.fill_time
        ready = fill_time if fill_time > now else now
        return ready + self._latency

    # -- fills and evictions ----------------------------------------------
    def fill(self, address: int, fill_time: int, dirty: bool = False,
             from_prefetch: bool = False, allocate_mshr: bool = True,
             now: Optional[float] = None) -> Optional[int]:
        """Install a block; returns the address of a dirty victim needing
        writeback (``None`` otherwise).

        ``allocate_mshr=False`` marks fills that carry no outstanding miss
        (dirty-victim writebacks between levels): they install data that is
        already on chip and must not occupy a miss register.  ``now`` is the
        cycle the triggering miss issued; it lets the peak-occupancy
        telemetry retire completed entries before measuring (without it the
        lazily-pruned map size is used, an upper bound).
        """
        block = address // self._block_bytes
        index = block % self._num_sets
        tag = block // self._num_sets
        cache_set = self._sets[index]
        stats = self.stats
        if from_prefetch:
            stats.prefetches_issued += 1
        mshr = self._mshr
        if mshr is not None and allocate_mshr:
            if mshr.allocate(block, fill_time):
                stats.mshr_allocations += 1
                # Only measure when the lazy size exceeds the recorded peak
                # (the retire scan is then amortised over genuine highs).
                if len(mshr) > stats.mshr_peak_occupancy:
                    occupancy = (
                        mshr.occupancy(now) if now is not None else len(mshr)
                    )
                    if occupancy > stats.mshr_peak_occupancy:
                        stats.mshr_peak_occupancy = occupancy
            else:
                stats.mshr_coalesced += 1
        line = cache_set.get(tag)
        if line is not None:
            # Keep the earliest availability time; refresh prefetch marking.
            if fill_time < line.fill_time:
                line.fill_time = fill_time
            line.dirty = line.dirty or dirty
            return None

        victim_writeback: Optional[int] = None
        if len(cache_set) >= self._associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.from_prefetch and not victim.prefetch_used:
                self.stats.prefetches_useless += 1
            if victim.dirty:
                if self.lookahead_mode:
                    # Containment of speculation: discard silently.
                    pass
                else:
                    self.stats.writebacks += 1
                    victim_block = victim_tag * self._num_sets + index
                    victim_writeback = victim_block * self._block_bytes

        cache_set[tag] = _Line(
            tag=tag,
            fill_time=fill_time,
            last_use=fill_time,
            dirty=dirty,
            from_prefetch=from_prefetch,
        )
        return victim_writeback

    def invalidate_all(self) -> None:
        """Drop every line (used when rebooting the look-ahead thread core)."""
        self._sets = [dict() for _ in range(self.config.num_sets)]
        if self._mshr is not None:
            self._mshr.drain()

    # -- MSHR helpers ------------------------------------------------------
    def mshr_available(self, now: float) -> bool:
        """Whether a prefetch could allocate an MSHR entry at cycle ``now``.

        Demand misses stall for a free entry; prefetches are speculative and
        are dropped instead (the caller checks this before issuing).
        """
        mshr = self._mshr
        return mshr is None or mshr.available(now)

    def mshr_occupancy(self, now: float) -> int:
        """In-flight misses at cycle ``now`` (0 when unbounded)."""
        return 0 if self._mshr is None else self._mshr.occupancy(now)

    def drain_mshrs(self) -> None:
        """Quiesce the file: used at simulated-clock-domain boundaries
        (end of cache warmup, look-ahead/main-thread pass handoffs) where
        access timestamps restart and stale arrival times would otherwise
        alias into the new time base."""
        if self._mshr is not None:
            self._mshr.drain()
        self.last_miss_stall = 0.0

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> Tuple[list, dict, Optional[dict]]:
        """An immutable-by-convention copy of all mutable cache state.

        Used by the warmed-memory memo (:mod:`repro.core.system`): the state
        captured after replaying a warmup window once can be restored into a
        freshly-built cache of the same geometry instead of replaying again.
        """
        sets = [
            {tag: (line.tag, line.fill_time, line.last_use, line.dirty,
                   line.from_prefetch, line.prefetch_used)
             for tag, line in cache_set.items()}
            for cache_set in self._sets
        ]
        mshr = self._mshr.snapshot_state() if self._mshr is not None else None
        return sets, dict(vars(self.stats)), mshr

    def restore_state(self, snapshot: Tuple[list, dict, Optional[dict]]) -> None:
        """Restore state captured by :meth:`snapshot_state` (same geometry)."""
        sets, stats, mshr = snapshot
        self._sets = [
            {tag: _Line(*fields) for tag, fields in cache_set.items()}
            for cache_set in sets
        ]
        for name, value in stats.items():
            setattr(self.stats, name, value)
        if self._mshr is not None:
            self._mshr.restore_state(mshr or {})

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)
