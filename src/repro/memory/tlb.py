"""A small fully-associative data TLB.

The look-ahead thread sends TLB hints through the footnote queue whenever it
misses in the TLB (Sec. III-A of the paper), so the main thread's TLB can be
warmed ahead of time.  The model below is a fully associative LRU TLB with a
fixed page-walk penalty; a ``prefill`` entry point implements the hint path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class TlbConfig:
    entries: int = 64
    page_bytes: int = 4096
    #: Page-walk latency in core cycles charged on a TLB miss.
    miss_penalty: int = 30


@dataclass
class TlbStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefills: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully-associative LRU TLB."""

    def __init__(self, config: Optional[TlbConfig] = None) -> None:
        self.config = config or TlbConfig()
        self.stats = TlbStats()
        self._entries: Dict[int, int] = {}   # vpn -> last-use time

    def _vpn(self, address: int) -> int:
        return address // self.config.page_bytes

    def access(self, address: int, now: int) -> int:
        """Translate; returns the added latency (0 on hit, miss_penalty on miss)."""
        self.stats.accesses += 1
        vpn = self._vpn(address)
        if vpn in self._entries:
            self.stats.hits += 1
            self._entries[vpn] = now
            return 0
        self.stats.misses += 1
        self._insert(vpn, now)
        return self.config.miss_penalty

    def prefill(self, address: int, now: int) -> None:
        """Install a translation ahead of use (look-ahead TLB hint)."""
        vpn = self._vpn(address)
        if vpn not in self._entries:
            self.stats.prefills += 1
        self._insert(vpn, now)

    def _insert(self, vpn: int, now: int) -> None:
        if len(self._entries) >= self.config.entries and vpn not in self._entries:
            victim = min(self._entries, key=self._entries.get)
            del self._entries[victim]
        self._entries[vpn] = now

    def contains(self, address: int) -> bool:
        return self._vpn(address) in self._entries

    def flush(self) -> None:
        self._entries.clear()

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        return dict(self._entries), dict(vars(self.stats))

    def restore_state(self, snapshot: tuple) -> None:
        entries, stats = snapshot
        self._entries = dict(entries)
        for name, value in stats.items():
            setattr(self.stats, name, value)
