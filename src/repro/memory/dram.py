"""Main-memory timing and energy model.

Stands in for the DDR3-1600 configuration of Table I plus the DRAMPower
energy tool the paper uses.  Timing captures the first-order components that
matter to a look-ahead study — row-buffer locality, bank-level queueing and
(optionally) bounded controller read/write queues — without descending to
per-command DDR state machines.  Energy is an activity-based model: per-access
activate/read/write/precharge energy plus a background term proportional to
elapsed time.

The controller queue model rides on the shared occupancy layer
(:mod:`repro.memory.resources`): each bank group owns one read and one write
:class:`~repro.memory.resources.OccupancyQueue` of ``queue_depth`` slots, a
slot held from issue until the access's data transfer completes.  A full
queue delays the access — demand fills and write-buffer drains alike — and
the wait is charged to ``queue_stall_cycles``.  ``queue_depth=None``
(default) builds no queues and is bit-identical to the pre-model machine.

Traffic is tagged by *source* ("demand", "writeback", "prefetch") so the
telemetry spine can split reads and writes per cause — in particular the
dirty-victim writebacks that previously disappeared into the aggregate
write count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.memory.resources import OccupancyQueue, probe_peak


@dataclass
class DramConfig:
    """Timing/energy parameters for main memory (per-core-cycle units)."""

    #: Core cycles per DRAM access when the row is already open.
    row_hit_latency: int = 110
    #: Core cycles when a new row must be activated (tRP + tRCD + CAS).
    row_miss_latency: int = 190
    #: Number of independent banks (channels x ranks x banks collapsed).
    num_banks: int = 32
    row_bytes: int = 8192
    #: Additional queueing delay applied per already-pending request on a bank.
    bank_busy_penalty: int = 24
    #: Controller read/write queue depth per bank group.  ``None`` means
    #: unbounded: no queues are built and timing is bit-identical to the
    #: pre-queue machine.  A bounded depth delays accesses (demand fills and
    #: write-buffer drains alike) while their group's queue is full.
    queue_depth: Optional[int] = None
    #: Number of bank groups; each group has its own read and write queue
    #: (``group = bank % queue_groups``).  Inert while ``queue_depth`` is
    #: ``None``.
    queue_groups: int = 4
    # -- energy (arbitrary units per event; ratios follow DDR3 datasheets) --
    energy_activate: float = 18.0
    energy_read: float = 10.0
    energy_write: float = 12.0
    energy_background_per_kcycle: float = 4.0

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive (None = unbounded)")
        if self.queue_groups <= 0:
            raise ValueError("queue_groups must be positive")


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    #: Writes caused by dirty-victim writebacks (cache or write-buffer
    #: drains); ``writes - writeback_writes`` is demand (store-miss) traffic.
    writeback_writes: int = 0
    #: Reads issued on behalf of prefetchers; ``reads - prefetch_reads`` is
    #: demand fill traffic.
    prefetch_reads: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_delay_cycles: int = 0
    #: Accesses that found their bank group's read/write queue full.
    queue_stalls: int = 0
    #: Cycles accesses spent waiting for a free controller-queue slot.
    queue_stall_cycles: float = 0.0
    #: Highest observed occupancy of any single read/write queue.
    queue_peak_occupancy: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def demand_reads(self) -> int:
        return self.reads - self.prefetch_reads

    @property
    def demand_writes(self) -> int:
        return self.writes - self.writeback_writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Open-page main memory with per-bank row buffers and simple queueing."""

    def __init__(self, config: Optional[DramConfig] = None) -> None:
        self.config = config or DramConfig()
        self.stats = DramStats()
        self._open_rows: Dict[int, int] = {}
        self._bank_ready: Dict[int, int] = {}
        #: ``None`` while the controller-queue model is unbounded; otherwise
        #: ``(group, is_write) -> OccupancyQueue``, built lazily per group.
        self._queues: Optional[Dict[Tuple[int, bool], OccupancyQueue]] = (
            {} if self.config.queue_depth is not None else None
        )
        self._dynamic_energy = 0.0
        self._last_access_cycle = 0

    # ------------------------------------------------------------------
    def _bank_and_row(self, address: int) -> (int, int):
        row = address // self.config.row_bytes
        bank = row % self.config.num_banks
        return bank, row

    def _queue_for(self, bank: int, is_write: bool) -> OccupancyQueue:
        key = (bank % self.config.queue_groups, is_write)
        queue = self._queues.get(key)
        if queue is None:
            queue = OccupancyQueue(self.config.queue_depth)
            self._queues[key] = queue
        return queue

    def access(self, address: int, now: int, is_write: bool = False,
               source: str = "demand") -> int:
        """Perform one access; returns the cycle at which data is available.

        ``source`` tags the traffic for the telemetry split: ``"demand"``
        (core fills, including store misses), ``"writeback"`` (dirty-victim
        drains) or ``"prefetch"``.  It never affects timing.
        """
        cfg = self.config
        stats = self.stats
        bank, row = self._bank_and_row(address)

        queue = None
        if self._queues is not None:
            # A full read/write queue delays the access until the earliest
            # queued transfer completes (the freed slot is consumed by this
            # access's own push below).
            queue = self._queue_for(bank, is_write)
            queue_delay = queue.reserve_delay(now)
            if queue_delay > 0:
                stats.queue_stalls += 1
                stats.queue_stall_cycles += queue_delay
                now = now + queue_delay

        ready = self._bank_ready.get(bank, 0)
        start = max(now, ready)
        queue_delay = start - now
        if ready > now:
            # The bank is still busy with a previous request.
            stats.busy_delay_cycles += queue_delay

        if self._open_rows.get(bank) == row:
            latency = cfg.row_hit_latency
            stats.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            stats.row_misses += 1
            self._dynamic_energy += cfg.energy_activate
            self._open_rows[bank] = row

        if is_write:
            stats.writes += 1
            if source == "writeback":
                stats.writeback_writes += 1
            self._dynamic_energy += cfg.energy_write
        else:
            stats.reads += 1
            if source == "prefetch":
                stats.prefetch_reads += 1
            self._dynamic_energy += cfg.energy_read

        finish = start + latency
        self._bank_ready[bank] = start + cfg.bank_busy_penalty
        if queue is not None:
            queue.push(finish)
            stats.queue_peak_occupancy = probe_peak(
                queue, now, stats.queue_peak_occupancy
            )
        self._last_access_cycle = max(self._last_access_cycle, finish)
        return finish

    # ------------------------------------------------------------------
    def drain_queues(self) -> None:
        """Quiesce the controller queues at a simulated-clock-domain
        boundary (see ``Cache.drain_mshrs`` — same aliasing hazard)."""
        if self._queues is not None:
            for queue in self._queues.values():
                queue.drain()

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        queues = (
            {key: queue.snapshot_state() for key, queue in self._queues.items()}
            if self._queues is not None else None
        )
        return (
            dict(self._open_rows),
            dict(self._bank_ready),
            self._dynamic_energy,
            self._last_access_cycle,
            dict(vars(self.stats)),
            queues,
        )

    def restore_state(self, snapshot: tuple) -> None:
        open_rows, bank_ready, dynamic_energy, last_access, stats, queues = snapshot
        self._open_rows = dict(open_rows)
        self._bank_ready = dict(bank_ready)
        self._dynamic_energy = dynamic_energy
        self._last_access_cycle = last_access
        for name, value in stats.items():
            setattr(self.stats, name, value)
        if self._queues is not None:
            self._queues = {}
            for key, state in (queues or {}).items():
                queue = OccupancyQueue(self.config.queue_depth)
                queue.restore_state(state)
                self._queues[key] = queue

    # ------------------------------------------------------------------
    def energy(self, elapsed_cycles: int) -> float:
        """Total DRAM energy over ``elapsed_cycles`` of execution."""
        background = self.config.energy_background_per_kcycle * elapsed_cycles / 1000.0
        return self._dynamic_energy + background

    @property
    def dynamic_energy(self) -> float:
        return self._dynamic_energy

    @property
    def traffic(self) -> int:
        """Total number of DRAM data transfers (reads plus writes)."""
        return self.stats.accesses

    def traffic_breakdown(self) -> Dict[str, int]:
        """Per-source read/write split of :attr:`traffic`."""
        stats = self.stats
        return {
            "demand_reads": stats.demand_reads,
            "prefetch_reads": stats.prefetch_reads,
            "demand_writes": stats.demand_writes,
            "writeback_writes": stats.writeback_writes,
            "total": stats.accesses,
        }
