"""Main-memory timing and energy model.

Stands in for the DDR3-1600 configuration of Table I plus the DRAMPower
energy tool the paper uses.  Timing captures the first-order components that
matter to a look-ahead study — row-buffer locality and bank-level queueing —
without descending to per-command DDR state machines.  Energy is an
activity-based model: per-access activate/read/write/precharge energy plus a
background term proportional to elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DramConfig:
    """Timing/energy parameters for main memory (per-core-cycle units)."""

    #: Core cycles per DRAM access when the row is already open.
    row_hit_latency: int = 110
    #: Core cycles when a new row must be activated (tRP + tRCD + CAS).
    row_miss_latency: int = 190
    #: Number of independent banks (channels x ranks x banks collapsed).
    num_banks: int = 32
    row_bytes: int = 8192
    #: Additional queueing delay applied per already-pending request on a bank.
    bank_busy_penalty: int = 24
    # -- energy (arbitrary units per event; ratios follow DDR3 datasheets) --
    energy_activate: float = 18.0
    energy_read: float = 10.0
    energy_write: float = 12.0
    energy_background_per_kcycle: float = 4.0


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_delay_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramModel:
    """Open-page main memory with per-bank row buffers and simple queueing."""

    def __init__(self, config: DramConfig = None) -> None:
        self.config = config or DramConfig()
        self.stats = DramStats()
        self._open_rows: Dict[int, int] = {}
        self._bank_ready: Dict[int, int] = {}
        self._dynamic_energy = 0.0
        self._last_access_cycle = 0

    # ------------------------------------------------------------------
    def _bank_and_row(self, address: int) -> (int, int):
        row = address // self.config.row_bytes
        bank = row % self.config.num_banks
        return bank, row

    def access(self, address: int, now: int, is_write: bool = False) -> int:
        """Perform one access; returns the cycle at which data is available."""
        cfg = self.config
        bank, row = self._bank_and_row(address)

        ready = self._bank_ready.get(bank, 0)
        start = max(now, ready)
        queue_delay = start - now
        if ready > now:
            # The bank is still busy with a previous request.
            self.stats.busy_delay_cycles += queue_delay

        if self._open_rows.get(bank) == row:
            latency = cfg.row_hit_latency
            self.stats.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            self.stats.row_misses += 1
            self._dynamic_energy += cfg.energy_activate
            self._open_rows[bank] = row

        if is_write:
            self.stats.writes += 1
            self._dynamic_energy += cfg.energy_write
        else:
            self.stats.reads += 1
            self._dynamic_energy += cfg.energy_read

        finish = start + latency
        self._bank_ready[bank] = start + cfg.bank_busy_penalty
        self._last_access_cycle = max(self._last_access_cycle, finish)
        return finish

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        return (
            dict(self._open_rows),
            dict(self._bank_ready),
            self._dynamic_energy,
            self._last_access_cycle,
            dict(vars(self.stats)),
        )

    def restore_state(self, snapshot: tuple) -> None:
        open_rows, bank_ready, dynamic_energy, last_access, stats = snapshot
        self._open_rows = dict(open_rows)
        self._bank_ready = dict(bank_ready)
        self._dynamic_energy = dynamic_energy
        self._last_access_cycle = last_access
        for name, value in stats.items():
            setattr(self.stats, name, value)

    # ------------------------------------------------------------------
    def energy(self, elapsed_cycles: int) -> float:
        """Total DRAM energy over ``elapsed_cycles`` of execution."""
        background = self.config.energy_background_per_kcycle * elapsed_cycles / 1000.0
        return self._dynamic_energy + background

    @property
    def dynamic_energy(self) -> float:
        return self._dynamic_energy

    @property
    def traffic(self) -> int:
        """Total number of DRAM data transfers (reads plus writes)."""
        return self.stats.accesses
