"""Shared occupancy/contention primitives of the memory backend.

Every finite buffering resource in the memory system — MSHR files, victim
write buffers, DRAM read/write queues — meters the same physical phenomenon:
a bounded set of slots, each held from admission until a completion
timestamp passes.  The simulator is trace-driven rather than event-driven,
so all of them share one *lazy timestamp* model implemented here once:

:class:`OccupancyResource`
    The generic keyed resource.  An entry is a ``key -> completion cycle``
    pair that logically occupies a slot until its completion time passes;
    entries behind the current access time have retired and are pruned on
    demand.  A full resource makes the next admission wait for the earliest
    entry to retire (the freed slot is consumed immediately, so back-to-back
    stalled admissions queue behind one another).

:class:`MshrFile`
    The miss-status-holding registers of one cache level — an
    ``OccupancyResource`` client keyed by block address, where a second
    admission for an in-flight key *coalesces* (keeping the earliest
    arrival) instead of taking a second slot.

:class:`BankedMshrFile`
    An address-interleaved array of :class:`MshrFile` banks.  A miss can
    stall on its bank while other banks still have room — a *bank conflict*,
    surfaced separately from capacity stalls via :attr:`last_conflict`.

:class:`OccupancyQueue`
    The anonymous (un-keyed) variant used by write buffers and DRAM queues:
    entries are internally tokenised, so nothing ever coalesces and the
    resource behaves as a bounded multiset of completion times.

Keeping one implementation is what makes the telemetry spine uniform: every
client counts the same events (admissions, stalls, stall cycles, peak
occupancy) with the same semantics, and the per-level ``memsys`` telemetry
dicts assembled by :mod:`repro.memory.hierarchy` read the counters through
one vocabulary instead of a bespoke set per resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def probe_peak(resource, now: Optional[float], recorded: int) -> int:
    """Amortised high-water-mark probe shared by every resource's telemetry.

    Only measures when the resource's *lazy* size (an upper bound) exceeds
    the recorded peak, so the retire scan is amortised over genuine highs;
    without a probe time the lazy size itself is used.  ``resource`` is
    anything with ``__len__`` and ``occupancy(now)`` — plain resources and
    banked files alike.
    """
    if len(resource) <= recorded:
        return recorded
    occupancy = resource.occupancy(now) if now is not None else len(resource)
    return occupancy if occupancy > recorded else recorded


class OccupancyResource:
    """A bounded set of slots held until per-entry completion timestamps pass.

    The capacity must be positive; "unbounded" is expressed by *not building
    the resource at all* (clients keep a ``None`` and skip the model), which
    keeps the uncontended timing path bit-identical to a machine without the
    resource.
    """

    __slots__ = ("capacity", "_inflight")

    #: Whether the most recent non-zero delay was a bank conflict rather than
    #: a capacity stall.  Plain resources never set it; the banked MSHR file
    #: overrides it per stall.  A class attribute keeps the common read free.
    last_conflict = False

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(
                "resource capacity must be positive (unbounded = no resource)"
            )
        self.capacity = capacity
        self._inflight: Dict[int, float] = {}

    # -- occupancy ---------------------------------------------------------
    def _retire(self, now: float) -> None:
        inflight = self._inflight
        if inflight:
            for key in [k for k, t in inflight.items() if t <= now]:
                del inflight[key]

    def occupancy(self, now: float) -> int:
        """Entries still in flight at cycle ``now``."""
        self._retire(now)
        return len(self._inflight)

    def available(self, now: float, key: Optional[int] = None) -> bool:
        """Whether a new entry could be admitted at cycle ``now``.

        The full retire scan only runs when the resource looks full — the
        common uncontended case is a single length check.  ``key`` is
        accepted (and ignored) so that address-routed clients can ask the
        same question of banked and un-banked resources uniformly.
        """
        if len(self._inflight) < self.capacity:
            return True
        self._retire(now)
        return len(self._inflight) < self.capacity

    # -- admission ---------------------------------------------------------
    def acquire_delay(self, key: int, now: float) -> float:
        """Cycles a new admission for ``key`` must wait for a free slot.

        An in-flight entry for the same key coalesces and never stalls.  A
        key whose earlier flight already completed is treated as a fresh
        admission, not coalesced onto the stale entry (which would occupy no
        slot and keep the stale completion time); stale pruning is per-key
        here and the full retire scan only runs when the resource looks
        full, keeping the uncontended path O(1).  A full resource pops its
        earliest-retiring entry and charges the wait: the caller is
        guaranteed to follow up with an :meth:`admit`, which takes over the
        freed slot.
        """
        inflight = self._inflight
        arrival = inflight.get(key)
        if arrival is not None:
            if arrival > now:
                return 0.0
            del inflight[key]
        return self._full_delay(now)

    def _full_delay(self, now: float) -> float:
        """Wait until the earliest entry retires when no slot is free.

        A full resource pops its earliest-retiring entry and charges the
        wait; the caller is guaranteed to follow up with an admission that
        takes over the freed slot (so back-to-back stalls queue behind one
        another).  This one tail is shared by every stall computation —
        keyed (:meth:`acquire_delay`) and anonymous
        (:meth:`OccupancyQueue.reserve_delay`) — so the stall semantics of
        MSHR files, write buffers and DRAM queues cannot diverge.
        """
        inflight = self._inflight
        if len(inflight) < self.capacity:
            return 0.0
        self._retire(now)
        if len(inflight) < self.capacity:
            return 0.0
        earliest_key = min(inflight, key=inflight.__getitem__)
        earliest = inflight.pop(earliest_key)
        return earliest - now

    def admit(self, key: int, completion: float) -> bool:
        """Track an in-flight entry; returns True for a fresh admission.

        An existing entry for the key coalesces, keeping the earliest
        completion time.  The resource never grows beyond its capacity: if
        an un-gated admission would overflow it, the earliest-retiring entry
        is dropped (it is the first to have completed anyway).
        """
        inflight = self._inflight
        if key in inflight:
            if completion < inflight[key]:
                inflight[key] = completion
            return False
        inflight[key] = completion
        if len(inflight) > self.capacity:
            victim = min(inflight, key=inflight.__getitem__)
            del inflight[victim]
        return True

    # -- lifecycle ---------------------------------------------------------
    def drain(self) -> None:
        """Forget every in-flight entry (quiesce at a clock-domain boundary)."""
        self._inflight.clear()

    def snapshot_state(self) -> Dict[int, float]:
        return dict(self._inflight)

    def restore_state(self, snapshot: Dict[int, float]) -> None:
        self._inflight = dict(snapshot)

    def __len__(self) -> int:
        return len(self._inflight)


class MshrFile(OccupancyResource):
    """Miss-status-holding registers of one cache level.

    A direct :class:`OccupancyResource` client keyed by block number: a
    primary miss allocates an entry held until its fill time passes, a
    secondary fill for an in-flight block coalesces onto the existing entry
    instead of allocating a second one, and a full file stalls further
    primary misses (:meth:`acquire_delay`).
    """

    __slots__ = ()

    def acquire_delay(self, block: int, now: float) -> float:
        """Cycles a primary miss for ``block`` must wait for a free entry.

        Secondary misses (the block is already in flight — e.g. it was
        evicted while its refill was outstanding) coalesce and never stall;
        see :meth:`OccupancyResource.acquire_delay` for the full contract.
        """
        return OccupancyResource.acquire_delay(self, block, now)

    def allocate(self, block: int, completion: float) -> bool:
        """Track an in-flight fill; returns True for a fresh (primary) entry.

        An existing entry for the block coalesces, keeping the earliest
        data-arrival time.  (Demand misses prune a *stale* same-block entry
        in :meth:`acquire_delay` before their fill lands here; a prefetch
        fill landing on a stale entry merely retires one scan earlier — a
        transient one-entry undercount on a speculative corner.)
        """
        return OccupancyResource.admit(self, block, completion)


class BankedMshrFile:
    """Address-interleaved MSHR banks: ``bank = block % num_banks``.

    The total capacity is split evenly across the banks (``entries`` must be
    divisible by ``banks``), so a machine with ``mshr_banks=1`` is exactly
    the single :class:`MshrFile`.  Banking introduces a second stall cause:
    a miss whose bank is full waits even while other banks have free slots.
    Such *bank conflicts* are flagged on :attr:`last_conflict` after each
    non-zero :meth:`acquire_delay` so the cache can count them separately
    from whole-file capacity stalls.
    """

    __slots__ = ("capacity", "num_banks", "_banks", "last_conflict")

    def __init__(self, entries: int, banks: int) -> None:
        if banks <= 0:
            raise ValueError("MSHR bank count must be positive")
        if entries % banks:
            raise ValueError(
                f"MSHR entries ({entries}) must divide evenly across "
                f"{banks} banks"
            )
        self.capacity = entries
        self.num_banks = banks
        self._banks: List[MshrFile] = [
            MshrFile(entries // banks) for _ in range(banks)
        ]
        self.last_conflict = False

    def _bank(self, block: int) -> MshrFile:
        return self._banks[block % self.num_banks]

    # -- admission ---------------------------------------------------------
    def acquire_delay(self, block: int, now: float) -> float:
        bank = self._bank(block)
        delay = bank.acquire_delay(block, now)
        if delay > 0.0:
            self.last_conflict = any(
                other is not bank and other.available(now)
                for other in self._banks
            )
        else:
            self.last_conflict = False
        return delay

    def allocate(self, block: int, completion: float) -> bool:
        return self._bank(block).allocate(block, completion)

    def available(self, now: float, key: Optional[int] = None) -> bool:
        """Whether an admission could proceed at ``now``.

        With a ``key`` (block number) the question is asked of that block's
        bank — the answer that actually gates an address-routed prefetch.
        Without one, any bank with room counts as available.
        """
        if key is not None:
            return self._bank(key).available(now)
        return any(bank.available(now) for bank in self._banks)

    def occupancy(self, now: float) -> int:
        return sum(bank.occupancy(now) for bank in self._banks)

    # -- lifecycle ---------------------------------------------------------
    def drain(self) -> None:
        for bank in self._banks:
            bank.drain()
        self.last_conflict = False

    def snapshot_state(self) -> Tuple[Dict[int, float], ...]:
        return tuple(bank.snapshot_state() for bank in self._banks)

    def restore_state(self, snapshot) -> None:
        # A single-dict snapshot (from an un-banked file) restores into bank
        # order by key, which never occurs in practice: geometry is part of
        # every snapshot key.  Enforce the matching shape instead.
        if not isinstance(snapshot, tuple) or len(snapshot) != self.num_banks:
            raise ValueError("banked MSHR snapshot does not match bank count")
        for bank, state in zip(self._banks, snapshot):
            bank.restore_state(state)

    def __len__(self) -> int:
        return sum(len(bank) for bank in self._banks)


class OccupancyQueue(OccupancyResource):
    """Anonymous bounded queue of completion timestamps.

    Used where entries have no meaningful identity — victim write buffers
    and DRAM read/write queues.  Entries are tokenised internally, so
    nothing ever coalesces: each :meth:`push` takes a real slot until its
    completion time passes.  :meth:`reserve_delay` is the anonymous analogue
    of :meth:`~OccupancyResource.acquire_delay` (no per-key pruning), with
    the same contract: a popped slot must be consumed by a follow-up
    :meth:`push`.
    """

    __slots__ = ("_next_token",)

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._next_token = 0

    def reserve_delay(self, now: float) -> float:
        return self._full_delay(now)

    def push(self, completion: float) -> None:
        token = self._next_token
        self._next_token = token + 1
        self.admit(token, completion)

    def snapshot_state(self) -> Tuple[Dict[int, float], int]:
        return dict(self._inflight), self._next_token

    def restore_state(self, snapshot: Tuple[Dict[int, float], int]) -> None:
        inflight, next_token = snapshot
        self._inflight = dict(inflight)
        self._next_token = next_token


@dataclass
class WriteBufferConfig:
    """Victim write buffer of one cache level.

    Dirty victims evicted from the level enter the buffer and occupy a slot
    until their write completes at the next level down (or DRAM); while the
    buffer is full, fills that would evict another dirty victim are
    back-pressured.  ``None`` in :attr:`~repro.memory.cache.CacheConfig
    .write_buffer` means no buffer is modelled — victims drain instantly,
    bit-identical to the pre-model machine.
    """

    #: Number of in-flight victim writebacks the level can buffer.
    entries: int = 8

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(
                "write buffer entries must be positive (no buffer = None)"
            )
