"""Memory-system substrate: caches, TLB, DRAM, and the per-core hierarchy.

The hierarchy mirrors the configuration in Table I of the paper: private
32 KB L1 I/D caches and a private 256 KB L2 per core, a shared 2 MB L3, and a
DDR3-1600-like main memory.  Timing is expressed in core cycles at 3 GHz.

Two behaviours specific to decoupled look-ahead are modelled explicitly:

* **Prefetch timeliness** — a prefetched line carries the cycle at which its
  data actually arrives; a demand access that hits a still-in-flight prefetch
  pays the residual latency ("late prefetch"), exactly the effect Table III
  and Fig. 12 of the paper quantify.
* **Look-ahead containment** — a cache can run in *look-ahead mode*, in which
  dirty lines are never written back (they are discarded on eviction), so the
  speculative look-ahead thread cannot pollute architectural memory state.
"""

from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.dram import DramConfig, DramModel
from repro.memory.tlb import Tlb, TlbConfig
from repro.memory.hierarchy import (
    AccessResult,
    AccessType,
    CoreMemorySystem,
    MemoryHierarchyConfig,
    SharedMemorySystem,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "DramConfig",
    "DramModel",
    "Tlb",
    "TlbConfig",
    "AccessResult",
    "AccessType",
    "CoreMemorySystem",
    "SharedMemorySystem",
    "MemoryHierarchyConfig",
]
