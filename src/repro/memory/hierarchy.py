"""Composition of the cache levels into per-core and shared memory systems.

This module is also where the memory backend's *telemetry spine* is
assembled: every contention resource (per-level MSHR files and write
buffers, the DRAM controller queues) reports through one uniform per-level
dict shape (:func:`level_telemetry` / :func:`dram_telemetry`), which
``SimulationOutcome.memsys`` / ``DlaOutcome.memsys`` carry out of a
simulation.  New resources should extend these dicts rather than grow
bespoke counter plumbing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DramConfig, DramModel
from repro.memory.tlb import Tlb, TlbConfig


class AccessType(enum.Enum):
    INSTRUCTION = "instruction"
    LOAD = "load"
    STORE = "store"


def _mshr_counters(cache: Cache) -> Dict[str, int]:
    """The MSHR slice of one cache's stats (per-level occupancy telemetry)."""
    stats = cache.stats
    return {
        "stalls": stats.mshr_stalls,
        "stall_cycles": stats.mshr_stall_cycles,
        "allocations": stats.mshr_allocations,
        "coalesced": stats.mshr_coalesced,
        "peak_occupancy": stats.mshr_peak_occupancy,
        "prefetches_dropped": stats.prefetches_dropped,
        "bank_conflicts": stats.mshr_bank_conflicts,
        "bank_conflict_cycles": stats.mshr_bank_conflict_cycles,
    }


def _write_buffer_counters(cache: Cache) -> Dict[str, int]:
    """The write-buffer slice of one cache's stats."""
    stats = cache.stats
    return {
        "enqueued": stats.wb_enqueued,
        "stalls": stats.wb_stalls,
        "stall_cycles": stats.wb_stall_cycles,
        "peak_occupancy": stats.wb_peak_occupancy,
    }


def level_telemetry(cache: Cache) -> Dict[str, object]:
    """One cache level's slice of the unified ``memsys`` telemetry dict."""
    return {
        "mshr": _mshr_counters(cache),
        "write_buffer": _write_buffer_counters(cache),
        "writebacks": cache.stats.writebacks,
        "evictions": cache.stats.evictions,
    }


def dram_telemetry(dram: DramModel) -> Dict[str, object]:
    """The DRAM slice of the unified ``memsys`` telemetry dict."""
    stats = dram.stats
    return {
        "traffic": dram.traffic_breakdown(),
        "row_hits": stats.row_hits,
        "row_misses": stats.row_misses,
        "row_hit_rate": stats.row_hit_rate,
        "busy_delay_cycles": stats.busy_delay_cycles,
        "queue": {
            "stalls": stats.queue_stalls,
            "stall_cycles": stats.queue_stall_cycles,
            "peak_occupancy": stats.queue_peak_occupancy,
        },
    }


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access through the hierarchy."""

    #: Cycle at which the data is available to the core.
    ready_cycle: int
    #: Total added latency relative to the issuing cycle.
    latency: int
    #: Name of the level that supplied the data ("l1", "l2", "l3", "dram").
    supplied_by: str
    #: True when the L1 lookup missed (used for MPKI accounting).
    l1_miss: bool
    #: True when the access had to go all the way to DRAM.
    dram_access: bool

    @property
    def source(self) -> str:
        """Alias of :attr:`supplied_by` (the level that sourced the data)."""
        return self.supplied_by


@dataclass
class MemoryHierarchyConfig:
    """Cache/TLB/DRAM parameters mirroring Table I of the paper."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size_bytes=32 * 1024, associativity=4, latency=1, mshr_entries=32))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_bytes=32 * 1024, associativity=4, latency=3, mshr_entries=32))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size_bytes=256 * 1024, associativity=8, latency=9, mshr_entries=32))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l3", size_bytes=2 * 1024 * 1024, associativity=16, latency=36, mshr_entries=64))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram: DramConfig = field(default_factory=DramConfig)


class SharedMemorySystem:
    """The shared L3 plus main memory, used by every core in the system."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config if config is not None else MemoryHierarchyConfig()
        self.l3 = Cache(self.config.l3)
        self.dram = DramModel(self.config.dram)

    def access(self, address: int, now: int, is_write: bool = False,
               source: str = "demand") -> AccessResult:
        """Access that already missed the private levels of some core."""
        ready = self.l3.lookup(address, now, is_write)
        if ready is not None:
            return AccessResult(ready, ready - now, "l3", l1_miss=True, dram_access=False)
        # A full L3 MSHR file delays when the miss can be sent to memory.
        issue = now + self.l3.last_miss_stall + self.config.l3.latency
        dram_ready = self.dram.access(address, issue, is_write, source=source)
        writeback = self.l3.fill(address, dram_ready, dirty=is_write, now=now)
        ready = dram_ready
        if writeback is not None:
            self._spill_l3_victim(writeback, dram_ready)
            # A full write buffer back-pressures the fill (and therefore the
            # demand data) by the same wait the victim spent queueing.
            wb_stall = self.l3.last_wb_stall
            if wb_stall:
                ready = dram_ready + wb_stall
        return AccessResult(ready, ready - now, "dram", l1_miss=True, dram_access=True)

    def _spill_l3_victim(self, victim_address: int, fill_time: float) -> None:
        """Drain one dirty L3 victim to DRAM (write-buffer aware).

        The write is tagged ``source="writeback"`` so the traffic split can
        separate it from demand stores; with a write buffer configured the
        victim occupies a buffer slot until the DRAM write completes.
        """
        wb_stall = self.l3.last_wb_stall
        drain_start = fill_time + wb_stall if wb_stall else fill_time
        done = self.dram.access(victim_address, drain_start, is_write=True,
                                source="writeback")
        self.l3.writeback_admit(done, at=drain_start)

    def access_for_prefetch(self, address: int, now: int) -> Optional[AccessResult]:
        """Like :meth:`access`, but for speculative (prefetch) traffic.

        A prefetch that would miss L3 while its MSHR file is full is refused
        (returns ``None``) *before* any lookup or DRAM work happens: demand
        misses stall for a free miss register, speculative requests never do
        — and a refused request must not generate traffic, pop an in-flight
        demand entry, or count a demand ``mshr_stall``.  With a free file
        (or an unbounded one) the behaviour is exactly :meth:`access`.
        """
        if not self.l3.probe(address) and not self.l3.mshr_available(now, address):
            self.l3.stats.prefetches_dropped += 1
            return None
        return self.access(address, now, source="prefetch")

    def prefetch(self, address: int, now: int) -> Optional[int]:
        """Install ``address`` into L3 (if absent); returns its fill time.

        Returns ``None`` when the prefetch had to be dropped because the L3
        MSHR file had no free entry — speculative requests never stall.
        """
        if self.l3.probe(address):
            return now
        if not self.l3.mshr_available(now, address):
            self.l3.stats.prefetches_dropped += 1
            return None
        dram_ready = self.dram.access(address, now + self.config.l3.latency,
                                      source="prefetch")
        writeback = self.l3.fill(address, dram_ready, from_prefetch=True, now=now)
        # Dirty victims of speculative installs historically vanished; the
        # write-buffer model makes them drain like any other writeback.
        # Without a buffer the legacy drop is kept (bit-identical timing).
        if writeback is not None and self.l3.has_write_buffer:
            self._spill_l3_victim(writeback, dram_ready)
        return dram_ready

    def drain_mshrs(self) -> None:
        """Quiesce every shared-level contention resource (L3 MSHRs and
        write buffer, DRAM controller queues) at a simulated-clock-domain
        boundary."""
        self.l3.drain_mshrs()
        self.dram.drain_queues()

    def mshr_telemetry(self) -> Dict[str, Dict[str, int]]:
        """Per-level MSHR counters of the shared system (keyed ``"l3"``)."""
        return {"l3": _mshr_counters(self.l3)}

    def memsys_telemetry(self) -> Dict[str, Dict[str, object]]:
        """The shared system's slice of the unified ``memsys`` dict."""
        return {
            "l3": level_telemetry(self.l3),
            "dram": dram_telemetry(self.dram),
        }

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        return self.l3.snapshot_state(), self.dram.snapshot_state()

    def restore_state(self, snapshot: tuple) -> None:
        l3_state, dram_state = snapshot
        self.l3.restore_state(l3_state)
        self.dram.restore_state(dram_state)

    @property
    def traffic(self) -> int:
        """Total DRAM transfers (the memory-traffic metric of Fig. 12b)."""
        return self.dram.traffic

    def traffic_breakdown(self) -> Dict[str, int]:
        """Per-source read/write split of :attr:`traffic` — in particular
        the dirty-victim writebacks that the aggregate count used to hide."""
        return self.dram.traffic_breakdown()


class CoreMemorySystem:
    """Private L1 I/D, L2 and TLB of one core, backed by a shared system.

    ``lookahead_mode`` enables the containment-of-speculation behaviour from
    Sec. III-A: the private caches never write back dirty data (it is simply
    discarded on eviction) and never supply data to other cores.
    """

    def __init__(self, shared: SharedMemorySystem,
                 config: Optional[MemoryHierarchyConfig] = None,
                 lookahead_mode: bool = False) -> None:
        self.config = config if config is not None else shared.config
        self.shared = shared
        self.lookahead_mode = lookahead_mode
        self.l1i = Cache(self.config.l1i, lookahead_mode=lookahead_mode)
        self.l1d = Cache(self.config.l1d, lookahead_mode=lookahead_mode)
        self.l2 = Cache(self.config.l2, lookahead_mode=lookahead_mode)
        self.tlb = Tlb(self.config.tlb)

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def access(self, address: int, now: int, access_type: AccessType) -> AccessResult:
        """Demand access for data or instructions."""
        is_instruction = access_type is AccessType.INSTRUCTION
        is_write = access_type is AccessType.STORE
        l1 = self.l1i if is_instruction else self.l1d

        tlb_penalty = 0
        if not is_instruction:
            tlb_penalty = self.tlb.access(address, now)

        ready = l1.lookup(address, now + tlb_penalty, is_write)
        if ready is not None:
            return AccessResult(ready, ready - now, "l1", l1_miss=False, dram_access=False)

        # Each level's MSHR wait (0 with free entries or an unbounded file)
        # delays when the miss can issue to the next level down.
        issue = now + tlb_penalty + l1.last_miss_stall + l1.config.latency
        l2_ready = self.l2.lookup(address, issue, is_write)
        if l2_ready is not None:
            self._fill_l1(l1, address, l2_ready, is_write, now)
            ready = l2_ready
            wb_stall = l1.last_wb_stall
            if wb_stall:
                ready = l2_ready + wb_stall
            return AccessResult(ready, ready - now, "l2", l1_miss=True, dram_access=False)

        shared_result = self.shared.access(
            address, issue + self.l2.last_miss_stall + self.l2.config.latency, is_write
        )
        self._fill_l2(address, shared_result.ready_cycle, is_write, now)
        # Capture the L2 fill's back-pressure *before* the L1 fill runs: a
        # dirty L1 victim spilling into L2 below would overwrite
        # l2.last_wb_stall with the victim install's own (separately
        # charged) wait.
        l2_wb_stall = self.l2.last_wb_stall
        self._fill_l1(l1, address, shared_result.ready_cycle, is_write, now)
        ready = shared_result.ready_cycle
        # Full write buffers back-pressure the fills on the way up.
        wb_stall = l2_wb_stall + l1.last_wb_stall
        if wb_stall:
            ready += wb_stall
        return AccessResult(
            ready,
            ready - now,
            shared_result.supplied_by,
            l1_miss=True,
            dram_access=shared_result.dram_access,
        )

    # ------------------------------------------------------------------
    # fast demand path (compiled tick pipeline)
    # ------------------------------------------------------------------
    # The tuple-returning accessors below are exact transcriptions of
    # :meth:`access` minus the enum dispatch and the AccessResult
    # construction, for callers that only need the ready cycle and the
    # miss classification (the compiled tick loop and warm replay).  The
    # packed info word uses these bits:
    #
    #   bit 0  L1 miss
    #   bit 1  supplied from beyond the L2 (L3 or DRAM)
    #   bit 2  DRAM access
    #   bit 3  supplied exactly by the L2
    #
    # Any behavioural change to :meth:`access` must land here too; the
    # golden equivalence suites pin the two paths together bit-for-bit.
    FAST_L1_MISS = 1
    FAST_BEYOND_L2 = 2
    FAST_DRAM = 4
    FAST_L2_HIT = 8

    def access_data_fast(self, address: int, now: int, is_write: bool):
        """Demand data access; returns ``(ready_cycle, packed_info)``."""
        l1 = self.l1d
        tlb_penalty = self.tlb.access(address, now)
        ready = l1.lookup(address, now + tlb_penalty, is_write)
        if ready is not None:
            return ready, 0
        issue = now + tlb_penalty + l1.last_miss_stall + l1.config.latency
        l2_ready = self.l2.lookup(address, issue, is_write)
        if l2_ready is not None:
            self._fill_l1(l1, address, l2_ready, is_write, now)
            ready = l2_ready
            wb_stall = l1.last_wb_stall
            if wb_stall:
                ready = l2_ready + wb_stall
            return ready, 9  # FAST_L1_MISS | FAST_L2_HIT
        shared_result = self.shared.access(
            address, issue + self.l2.last_miss_stall + self.l2.config.latency, is_write
        )
        self._fill_l2(address, shared_result.ready_cycle, is_write, now)
        # Same ordering constraint as :meth:`access`: capture the L2 fill's
        # back-pressure before the L1 fill can overwrite it.
        l2_wb_stall = self.l2.last_wb_stall
        self._fill_l1(l1, address, shared_result.ready_cycle, is_write, now)
        ready = shared_result.ready_cycle
        wb_stall = l2_wb_stall + l1.last_wb_stall
        if wb_stall:
            ready += wb_stall
        return ready, 7 if shared_result.dram_access else 3

    def access_inst_fast(self, address: int, now: int):
        """Instruction-block access; returns ``(ready_cycle, packed_info)``."""
        l1 = self.l1i
        ready = l1.lookup(address, now, False)
        if ready is not None:
            return ready, 0
        issue = now + l1.last_miss_stall + l1.config.latency
        l2_ready = self.l2.lookup(address, issue, False)
        if l2_ready is not None:
            self._fill_l1(l1, address, l2_ready, False, now)
            ready = l2_ready
            wb_stall = l1.last_wb_stall
            if wb_stall:
                ready = l2_ready + wb_stall
            return ready, 9
        shared_result = self.shared.access(
            address, issue + self.l2.last_miss_stall + self.l2.config.latency, False
        )
        self._fill_l2(address, shared_result.ready_cycle, False, now)
        l2_wb_stall = self.l2.last_wb_stall
        self._fill_l1(l1, address, shared_result.ready_cycle, False, now)
        ready = shared_result.ready_cycle
        wb_stall = l2_wb_stall + l1.last_wb_stall
        if wb_stall:
            ready += wb_stall
        return ready, 7 if shared_result.dram_access else 3

    def _fill_l1(self, l1: Cache, address: int, fill_time: int, dirty: bool,
                 now: Optional[float] = None) -> None:
        writeback = l1.fill(address, fill_time, dirty=dirty, now=now)
        if writeback is not None and not self.lookahead_mode:
            self._spill_l1_victim(l1, writeback, fill_time)

    def _fill_l2(self, address: int, fill_time: int, dirty: bool,
                 now: Optional[float] = None) -> None:
        writeback = self.l2.fill(address, fill_time, dirty=dirty, now=now)
        if writeback is not None and not self.lookahead_mode:
            self._spill_l2_victim(writeback, fill_time)

    def _spill_l1_victim(self, l1: Cache, victim_address: int,
                         fill_time: float) -> None:
        """Route one dirty L1 victim into L2 (write-buffer aware).

        Victim writebacks carry data that is already on chip: they never
        occupy a miss register.  With a write buffer on the L1, the victim
        holds a buffer slot until its write lands in L2 (one L2 hit latency
        after the drain starts).
        """
        wb_stall = l1.last_wb_stall
        drain_start = fill_time + wb_stall if wb_stall else fill_time
        cascade = self.l2.fill(victim_address, drain_start, dirty=True,
                               allocate_mshr=False)
        l1.writeback_admit(drain_start + self.l2.config.latency, at=drain_start)
        # The incoming victim can displace a dirty L2 line in turn.  Without
        # a write buffer this cascade victim is dropped (the legacy,
        # bit-identical behaviour); with one it drains to DRAM like any
        # other L2 writeback.
        if cascade is not None and self.l2.has_write_buffer:
            self._spill_l2_victim(cascade, drain_start)

    def _spill_l2_victim(self, victim_address: int, fill_time: float) -> None:
        """Drain one dirty L2 victim to DRAM as write traffic."""
        wb_stall = self.l2.last_wb_stall
        drain_start = fill_time + wb_stall if wb_stall else fill_time
        done = self.shared.dram.access(victim_address, drain_start,
                                       is_write=True, source="writeback")
        self.l2.writeback_admit(done, at=drain_start)

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, address: int, now: int, level: str = "l1") -> Optional[int]:
        """Prefetch ``address`` into ``level`` ("l1" or "l2"); returns fill time.

        Prefetches traverse the hierarchy like demand misses (so they create
        real DRAM traffic and timing), but fill with ``from_prefetch=True`` so
        usefulness statistics can be collected.  Unlike a demand miss, a
        prefetch never waits for a miss register: when the target level's
        MSHR file is full at issue time the request is dropped and ``None``
        is returned so the issuing prefetcher can account for it.
        """
        if level not in ("l1", "l2"):
            raise ValueError("prefetch level must be 'l1' or 'l2'")
        if level == "l1":
            return self._prefetch_into_l1(self.l1d, address, now)
        return self._prefetch_fill_time_from_l2(address, now)

    def prefetch_instruction(self, address: int, now: int) -> Optional[int]:
        """Prefetch an instruction block into the L1 I-cache (MSHR-gated)."""
        return self._prefetch_into_l1(self.l1i, address, now)

    def _prefetch_into_l1(self, l1: Cache, address: int, now: int) -> Optional[int]:
        """MSHR-gated prefetch into one L1 (the D- or I-side cache).

        The install-level gate runs *before* any downstream work: a dropped
        prefetch must not generate DRAM traffic or allocate lower-level
        miss registers.
        """
        if l1.probe(address):
            return now
        if not l1.mshr_available(now, address):
            l1.stats.prefetches_dropped += 1
            return None
        fill_time = self._prefetch_fill_time_from_l2(address, now)
        if fill_time is None:
            return None
        writeback = l1.fill(address, fill_time, from_prefetch=True, now=now)
        # Dirty victims of speculative installs historically vanished; the
        # write-buffer model drains them, the legacy path keeps the drop.
        if writeback is not None and not self.lookahead_mode and l1.has_write_buffer:
            self._spill_l1_victim(l1, writeback, fill_time)
        return fill_time

    def _prefetch_fill_time_from_l2(self, address: int, now: int) -> Optional[int]:
        """When a prefetch's block is ready at L2 (refilling L2 first, MSHR-
        gated, when absent); ``None`` when any level refused the request."""
        if self.l2.probe(address):
            return now + self.l2.config.latency
        if not self.l2.mshr_available(now, address):
            self.l2.stats.prefetches_dropped += 1
            return None
        shared_result = self.shared.access_for_prefetch(
            address, now + self.l2.config.latency
        )
        if shared_result is None:   # refused at L3 (file full)
            return None
        fill_time = shared_result.ready_cycle
        writeback = self.l2.fill(address, fill_time, from_prefetch=True, now=now)
        if writeback is not None and not self.lookahead_mode and self.l2.has_write_buffer:
            self._spill_l2_victim(writeback, fill_time)
        return fill_time

    def prefill_tlb(self, address: int, now: int) -> None:
        self.tlb.prefill(address, now)

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        """Mutable state of the private levels (the shared system snapshots
        separately so one snapshot can cover a multi-core warm group)."""
        return (
            self.l1i.snapshot_state(),
            self.l1d.snapshot_state(),
            self.l2.snapshot_state(),
            self.tlb.snapshot_state(),
        )

    def restore_state(self, snapshot: tuple) -> None:
        l1i_state, l1d_state, l2_state, tlb_state = snapshot
        self.l1i.restore_state(l1i_state)
        self.l1d.restore_state(l1d_state)
        self.l2.restore_state(l2_state)
        self.tlb.restore_state(tlb_state)

    # ------------------------------------------------------------------
    def drain_mshrs(self) -> None:
        """Quiesce every private level's contention resources (MSHR files
        and write buffers) at a simulated-clock-domain boundary."""
        self.l1i.drain_mshrs()
        self.l1d.drain_mshrs()
        self.l2.drain_mshrs()

    def mshr_telemetry(self) -> Dict[str, Dict[str, int]]:
        """Per-level MSHR counters of the private levels."""
        return {
            "l1i": _mshr_counters(self.l1i),
            "l1d": _mshr_counters(self.l1d),
            "l2": _mshr_counters(self.l2),
        }

    def memsys_telemetry(self) -> Dict[str, Dict[str, object]]:
        """The private levels' slice of the unified ``memsys`` dict."""
        return {
            "l1i": level_telemetry(self.l1i),
            "l1d": level_telemetry(self.l1d),
            "l2": level_telemetry(self.l2),
        }

    # ------------------------------------------------------------------
    def l1d_misses(self) -> int:
        return self.l1d.stats.misses

    def reset_for_reboot(self) -> None:
        """Nothing is architecturally lost on a look-ahead reboot; private
        caches keep their (clean) contents, matching the paper's design where
        a reboot only re-initialises the register state of the look-ahead
        thread."""
        # Intentionally a no-op other than documenting the behaviour.
        return None
