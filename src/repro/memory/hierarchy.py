"""Composition of the cache levels into per-core and shared memory systems."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DramConfig, DramModel
from repro.memory.tlb import Tlb, TlbConfig


class AccessType(enum.Enum):
    INSTRUCTION = "instruction"
    LOAD = "load"
    STORE = "store"


def _mshr_counters(cache: Cache) -> Dict[str, int]:
    """The MSHR slice of one cache's stats (per-level occupancy telemetry)."""
    stats = cache.stats
    return {
        "stalls": stats.mshr_stalls,
        "stall_cycles": stats.mshr_stall_cycles,
        "allocations": stats.mshr_allocations,
        "coalesced": stats.mshr_coalesced,
        "peak_occupancy": stats.mshr_peak_occupancy,
        "prefetches_dropped": stats.prefetches_dropped,
    }


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access through the hierarchy."""

    #: Cycle at which the data is available to the core.
    ready_cycle: int
    #: Total added latency relative to the issuing cycle.
    latency: int
    #: Name of the level that supplied the data ("l1", "l2", "l3", "dram").
    supplied_by: str
    #: True when the L1 lookup missed (used for MPKI accounting).
    l1_miss: bool
    #: True when the access had to go all the way to DRAM.
    dram_access: bool


@dataclass
class MemoryHierarchyConfig:
    """Cache/TLB/DRAM parameters mirroring Table I of the paper."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size_bytes=32 * 1024, associativity=4, latency=1, mshr_entries=32))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_bytes=32 * 1024, associativity=4, latency=3, mshr_entries=32))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size_bytes=256 * 1024, associativity=8, latency=9, mshr_entries=32))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l3", size_bytes=2 * 1024 * 1024, associativity=16, latency=36, mshr_entries=64))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram: DramConfig = field(default_factory=DramConfig)


class SharedMemorySystem:
    """The shared L3 plus main memory, used by every core in the system."""

    def __init__(self, config: MemoryHierarchyConfig = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        self.l3 = Cache(self.config.l3)
        self.dram = DramModel(self.config.dram)

    def access(self, address: int, now: int, is_write: bool = False) -> AccessResult:
        """Access that already missed the private levels of some core."""
        ready = self.l3.lookup(address, now, is_write)
        if ready is not None:
            return AccessResult(ready, ready - now, "l3", l1_miss=True, dram_access=False)
        # A full L3 MSHR file delays when the miss can be sent to memory.
        issue = now + self.l3.last_miss_stall + self.config.l3.latency
        dram_ready = self.dram.access(address, issue, is_write)
        writeback = self.l3.fill(address, dram_ready, dirty=is_write, now=now)
        if writeback is not None:
            self.dram.access(writeback, dram_ready, is_write=True)
        return AccessResult(dram_ready, dram_ready - now, "dram", l1_miss=True, dram_access=True)

    def access_for_prefetch(self, address: int, now: int) -> Optional[AccessResult]:
        """Like :meth:`access`, but for speculative (prefetch) traffic.

        A prefetch that would miss L3 while its MSHR file is full is refused
        (returns ``None``) *before* any lookup or DRAM work happens: demand
        misses stall for a free miss register, speculative requests never do
        — and a refused request must not generate traffic, pop an in-flight
        demand entry, or count a demand ``mshr_stall``.  With a free file
        (or an unbounded one) the behaviour is exactly :meth:`access`.
        """
        if not self.l3.probe(address) and not self.l3.mshr_available(now):
            self.l3.stats.prefetches_dropped += 1
            return None
        return self.access(address, now)

    def prefetch(self, address: int, now: int) -> Optional[int]:
        """Install ``address`` into L3 (if absent); returns its fill time.

        Returns ``None`` when the prefetch had to be dropped because the L3
        MSHR file had no free entry — speculative requests never stall.
        """
        if self.l3.probe(address):
            return now
        if not self.l3.mshr_available(now):
            self.l3.stats.prefetches_dropped += 1
            return None
        dram_ready = self.dram.access(address, now + self.config.l3.latency)
        self.l3.fill(address, dram_ready, from_prefetch=True, now=now)
        return dram_ready

    def drain_mshrs(self) -> None:
        """Quiesce the L3 MSHR file at a simulated-clock-domain boundary."""
        self.l3.drain_mshrs()

    def mshr_telemetry(self) -> Dict[str, Dict[str, int]]:
        """Per-level MSHR counters of the shared system (keyed ``"l3"``)."""
        return {"l3": _mshr_counters(self.l3)}

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        return self.l3.snapshot_state(), self.dram.snapshot_state()

    def restore_state(self, snapshot: tuple) -> None:
        l3_state, dram_state = snapshot
        self.l3.restore_state(l3_state)
        self.dram.restore_state(dram_state)

    @property
    def traffic(self) -> int:
        """Total DRAM transfers (the memory-traffic metric of Fig. 12b)."""
        return self.dram.traffic


class CoreMemorySystem:
    """Private L1 I/D, L2 and TLB of one core, backed by a shared system.

    ``lookahead_mode`` enables the containment-of-speculation behaviour from
    Sec. III-A: the private caches never write back dirty data (it is simply
    discarded on eviction) and never supply data to other cores.
    """

    def __init__(self, shared: SharedMemorySystem,
                 config: MemoryHierarchyConfig = None,
                 lookahead_mode: bool = False) -> None:
        self.config = config or shared.config
        self.shared = shared
        self.lookahead_mode = lookahead_mode
        self.l1i = Cache(self.config.l1i, lookahead_mode=lookahead_mode)
        self.l1d = Cache(self.config.l1d, lookahead_mode=lookahead_mode)
        self.l2 = Cache(self.config.l2, lookahead_mode=lookahead_mode)
        self.tlb = Tlb(self.config.tlb)

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def access(self, address: int, now: int, access_type: AccessType) -> AccessResult:
        """Demand access for data or instructions."""
        is_instruction = access_type is AccessType.INSTRUCTION
        is_write = access_type is AccessType.STORE
        l1 = self.l1i if is_instruction else self.l1d

        tlb_penalty = 0
        if not is_instruction:
            tlb_penalty = self.tlb.access(address, now)

        ready = l1.lookup(address, now + tlb_penalty, is_write)
        if ready is not None:
            return AccessResult(ready, ready - now, "l1", l1_miss=False, dram_access=False)

        # Each level's MSHR wait (0 with free entries or an unbounded file)
        # delays when the miss can issue to the next level down.
        issue = now + tlb_penalty + l1.last_miss_stall + l1.config.latency
        l2_ready = self.l2.lookup(address, issue, is_write)
        if l2_ready is not None:
            self._fill_l1(l1, address, l2_ready, is_write, now)
            return AccessResult(l2_ready, l2_ready - now, "l2", l1_miss=True, dram_access=False)

        shared_result = self.shared.access(
            address, issue + self.l2.last_miss_stall + self.l2.config.latency, is_write
        )
        self._fill_l2(address, shared_result.ready_cycle, is_write, now)
        self._fill_l1(l1, address, shared_result.ready_cycle, is_write, now)
        return AccessResult(
            shared_result.ready_cycle,
            shared_result.ready_cycle - now,
            shared_result.supplied_by,
            l1_miss=True,
            dram_access=shared_result.dram_access,
        )

    def _fill_l1(self, l1: Cache, address: int, fill_time: int, dirty: bool,
                 now: Optional[float] = None) -> None:
        writeback = l1.fill(address, fill_time, dirty=dirty, now=now)
        if writeback is not None and not self.lookahead_mode:
            # Victim writebacks carry data that is already on chip: they
            # never occupy a miss register.
            self.l2.fill(writeback, fill_time, dirty=True, allocate_mshr=False)

    def _fill_l2(self, address: int, fill_time: int, dirty: bool,
                 now: Optional[float] = None) -> None:
        writeback = self.l2.fill(address, fill_time, dirty=dirty, now=now)
        if writeback is not None and not self.lookahead_mode:
            # Dirty L2 victims go to the shared system as write traffic.
            self.shared.dram.access(writeback, fill_time, is_write=True)

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, address: int, now: int, level: str = "l1") -> Optional[int]:
        """Prefetch ``address`` into ``level`` ("l1" or "l2"); returns fill time.

        Prefetches traverse the hierarchy like demand misses (so they create
        real DRAM traffic and timing), but fill with ``from_prefetch=True`` so
        usefulness statistics can be collected.  Unlike a demand miss, a
        prefetch never waits for a miss register: when the target level's
        MSHR file is full at issue time the request is dropped and ``None``
        is returned so the issuing prefetcher can account for it.
        """
        if level not in ("l1", "l2"):
            raise ValueError("prefetch level must be 'l1' or 'l2'")
        if level == "l1":
            return self._prefetch_into_l1(self.l1d, address, now)
        return self._prefetch_fill_time_from_l2(address, now)

    def prefetch_instruction(self, address: int, now: int) -> Optional[int]:
        """Prefetch an instruction block into the L1 I-cache (MSHR-gated)."""
        return self._prefetch_into_l1(self.l1i, address, now)

    def _prefetch_into_l1(self, l1: Cache, address: int, now: int) -> Optional[int]:
        """MSHR-gated prefetch into one L1 (the D- or I-side cache).

        The install-level gate runs *before* any downstream work: a dropped
        prefetch must not generate DRAM traffic or allocate lower-level
        miss registers.
        """
        if l1.probe(address):
            return now
        if not l1.mshr_available(now):
            l1.stats.prefetches_dropped += 1
            return None
        fill_time = self._prefetch_fill_time_from_l2(address, now)
        if fill_time is None:
            return None
        l1.fill(address, fill_time, from_prefetch=True, now=now)
        return fill_time

    def _prefetch_fill_time_from_l2(self, address: int, now: int) -> Optional[int]:
        """When a prefetch's block is ready at L2 (refilling L2 first, MSHR-
        gated, when absent); ``None`` when any level refused the request."""
        if self.l2.probe(address):
            return now + self.l2.config.latency
        if not self.l2.mshr_available(now):
            self.l2.stats.prefetches_dropped += 1
            return None
        shared_result = self.shared.access_for_prefetch(
            address, now + self.l2.config.latency
        )
        if shared_result is None:   # refused at L3 (file full)
            return None
        fill_time = shared_result.ready_cycle
        self.l2.fill(address, fill_time, from_prefetch=True, now=now)
        return fill_time

    def prefill_tlb(self, address: int, now: int) -> None:
        self.tlb.prefill(address, now)

    # -- state snapshot (warm-memory memoization) --------------------------
    def snapshot_state(self) -> tuple:
        """Mutable state of the private levels (the shared system snapshots
        separately so one snapshot can cover a multi-core warm group)."""
        return (
            self.l1i.snapshot_state(),
            self.l1d.snapshot_state(),
            self.l2.snapshot_state(),
            self.tlb.snapshot_state(),
        )

    def restore_state(self, snapshot: tuple) -> None:
        l1i_state, l1d_state, l2_state, tlb_state = snapshot
        self.l1i.restore_state(l1i_state)
        self.l1d.restore_state(l1d_state)
        self.l2.restore_state(l2_state)
        self.tlb.restore_state(tlb_state)

    # ------------------------------------------------------------------
    def drain_mshrs(self) -> None:
        """Quiesce every private level's MSHR file (clock-domain boundary)."""
        self.l1i.drain_mshrs()
        self.l1d.drain_mshrs()
        self.l2.drain_mshrs()

    def mshr_telemetry(self) -> Dict[str, Dict[str, int]]:
        """Per-level MSHR counters of the private levels."""
        return {
            "l1i": _mshr_counters(self.l1i),
            "l1d": _mshr_counters(self.l1d),
            "l2": _mshr_counters(self.l2),
        }

    # ------------------------------------------------------------------
    def l1d_misses(self) -> int:
        return self.l1d.stats.misses

    def reset_for_reboot(self) -> None:
        """Nothing is architecturally lost on a look-ahead reboot; private
        caches keep their (clean) contents, matching the paper's design where
        a reboot only re-initialises the register state of the look-ahead
        thread."""
        # Intentionally a no-op other than documenting the behaviour.
        return None
