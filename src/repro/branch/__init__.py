"""Branch prediction: direction predictors, BTB, and the return-address stack.

The paper's baseline core uses a 256 Kbit TAGE-SC-L predictor, a 4K-entry
BTB and a 32-entry RAS (Table I).  We provide a TAGE-lite predictor that
captures the essential TAGE mechanism (tagged tables with geometrically
increasing history lengths and a bimodal fallback) together with simpler
predictors used in unit tests and ablations.
"""

from repro.branch.predictors import (
    BimodalPredictor,
    DirectionPredictor,
    GsharePredictor,
    TageLitePredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "TournamentPredictor",
    "TageLitePredictor",
    "make_predictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]
