"""Branch direction predictors."""

from __future__ import annotations

from array import array
from typing import List, Optional


class DirectionPredictor:
    """Interface: predict a conditional branch's direction, then train on it."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Predict then train in one call; returns the prediction.

        Equivalent to ``predict(pc)`` followed by ``update(pc, taken)``.
        Predictors whose update re-derives the prediction (TAGE) override
        this to share the table walk between the two halves.
        """
        predicted = self.predict(pc)
        self.update(pc, taken)
        return predicted

    def reset(self) -> None:
        """Clear all state."""
        raise NotImplementedError


def _saturate(counter: int, taken: bool, max_value: int) -> int:
    if taken:
        return min(counter + 1, max_value)
    return max(counter - 1, 0)


class BimodalPredictor(DirectionPredictor):
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        self.entries = entries
        self.max_value = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        # An array (not a list) so the compiled kernel can borrow the
        # counters zero-copy when this table backs the TAGE base.
        self._table = array("q", [self.threshold]) * entries

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= self.threshold

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        self._table[idx] = _saturate(self._table[idx], taken, self.max_value)

    def reset(self) -> None:
        self._table = array("q", [self.threshold]) * self.entries


class GsharePredictor(DirectionPredictor):
    """Global-history XOR PC indexed 2-bit counters."""

    def __init__(self, entries: int = 16384, history_bits: int = 12) -> None:
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        self._table[idx] = _saturate(self._table[idx], taken, 3)
        self._history = ((self._history << 1) | int(taken)) & ((1 << self.history_bits) - 1)

    def reset(self) -> None:
        self._history = 0
        self._table = [2] * self.entries


class TournamentPredictor(DirectionPredictor):
    """Alpha-21264-style chooser between a local (bimodal) and global predictor."""

    def __init__(self, entries: int = 8192, history_bits: int = 12) -> None:
        self.local = BimodalPredictor(entries)
        self.global_ = GsharePredictor(entries, history_bits)
        self.entries = entries
        self._chooser = [2] * entries   # >= 2 chooses the global predictor

    def predict(self, pc: int) -> bool:
        if self._chooser[pc % self.entries] >= 2:
            return self.global_.predict(pc)
        return self.local.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_correct = self.local.predict(pc) == taken
        global_correct = self.global_.predict(pc) == taken
        idx = pc % self.entries
        if global_correct and not local_correct:
            self._chooser[idx] = min(self._chooser[idx] + 1, 3)
        elif local_correct and not global_correct:
            self._chooser[idx] = max(self._chooser[idx] - 1, 0)
        self.local.update(pc, taken)
        self.global_.update(pc, taken)

    def reset(self) -> None:
        self.local.reset()
        self.global_.reset()
        self._chooser = [2] * self.entries


class _TageEntryView:
    """Mutable view of one tagged-table slot.

    API-compatible with the entry objects the dict-backed implementation
    used to store, so introspection (tests, analysis tools) keeps working
    against the flat-array representation.
    """

    __slots__ = ("_p", "_k")

    def __init__(self, predictor: "TageLitePredictor", slot: int) -> None:
        self._p = predictor
        self._k = slot

    @property
    def tag(self) -> int:
        return self._p._tag_arr[self._k]

    @property
    def counter(self) -> int:
        return self._p._ctr[self._k]

    @counter.setter
    def counter(self, value: int) -> None:
        self._p._ctr[self._k] = value

    @property
    def useful(self) -> int:
        return self._p._useful[self._k]

    @useful.setter
    def useful(self, value: int) -> None:
        self._p._useful[self._k] = value


class _TageTableView:
    """Dict-like view of one tagged table (``.get(index)`` / truthiness)."""

    __slots__ = ("_p", "_t")

    def __init__(self, predictor: "TageLitePredictor", table: int) -> None:
        self._p = predictor
        self._t = table

    def get(self, index: int) -> Optional[_TageEntryView]:
        slot = self._t * self._p.table_entries + index
        if self._p._present[slot]:
            return _TageEntryView(self._p, slot)
        return None

    def __bool__(self) -> bool:
        base = self._t * self._p.table_entries
        return 1 in self._p._present[base:base + self._p.table_entries]


def _fold(value: int, bits: int) -> int:
    """XOR-fold ``value`` down to ``bits`` bits."""
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class TageLitePredictor(DirectionPredictor):
    """A compact TAGE: bimodal base plus tagged tables with geometric histories.

    This keeps the parts of TAGE that give it its accuracy — longest-matching
    tagged component wins, new entries allocated on mispredictions with short
    histories preferred, usefulness counters guarding replacement — while
    dropping the statistical corrector and loop predictor of full TAGE-SC-L.
    """

    def __init__(self, num_tables: int = 4, table_entries: int = 1024,
                 min_history: int = 4, max_history: int = 64,
                 tag_bits: int = 11) -> None:
        self.base = BimodalPredictor(8192)
        self.num_tables = num_tables
        self.table_entries = table_entries
        self.tag_mask = (1 << tag_bits) - 1
        # Geometric history lengths between min and max.
        self.history_lengths = []
        for i in range(num_tables):
            ratio = (max_history / min_history) ** (i / max(1, num_tables - 1))
            self.history_lengths.append(int(round(min_history * ratio)))
        #: Per-table history masks, precomputed (hot path).
        self._history_masks = [(1 << length) - 1 for length in self.history_lengths]
        # Tagged tables as flat arrays ([table][index] row-major), shared
        # zero-copy with the compiled kernel's native TAGE.  A dict slot
        # of the original implementation maps to ``_present[k]`` plus the
        # (tag, counter, useful) triple at the same index.
        size = num_tables * table_entries
        self._present = array("b", bytes(size))
        self._tag_arr = array("q", bytes(8 * size))
        self._ctr = array("q", bytes(8 * size))
        self._useful = array("q", bytes(8 * size))
        self._hist = array("Q", (0,))
        self._masks_arr = array("Q", self._history_masks)
        self._last_provider: Optional[int] = None
        self._last_index: Optional[int] = None

    @property
    def _history(self) -> int:
        return self._hist[0]

    @_history.setter
    def _history(self, value: int) -> None:
        self._hist[0] = value & 0xFFFFFFFFFFFFFFFF

    @property
    def _tables(self) -> List[_TageTableView]:
        return [_TageTableView(self, t) for t in range(self.num_tables)]

    # -- hashing -----------------------------------------------------------
    def _fold(self, value: int, bits: int) -> int:
        return _fold(value, bits)

    def _index(self, pc: int, table: int) -> int:
        hist = self._history & self._history_masks[table]
        return (pc ^ _fold(hist, 10) ^ (table * 0x9E37)) % self.table_entries

    def _tag(self, pc: int, table: int) -> int:
        hist = self._history & self._history_masks[table]
        return (pc ^ (pc >> 5) ^ _fold(hist, 7) ^ (table * 0x1F3)) & self.tag_mask

    # -- prediction ---------------------------------------------------------
    def _lookup(self, pc: int):
        """(provider table, index, entry) of the longest history match.

        The index/tag expressions below are inlined copies of
        :meth:`_index`/:meth:`_tag` (the allocation path still uses those
        helpers).  They must stay in sync — pinned by
        ``tests/branch/test_branch_prediction.py::test_tage_lookup_matches_hash_helpers``.
        """
        history = self._hist[0]
        masks = self._history_masks
        entries = self.table_entries
        tag_mask = self.tag_mask
        present = self._present
        tag_arr = self._tag_arr
        pc_hash = pc ^ (pc >> 5)
        for table in range(self.num_tables - 1, -1, -1):
            hist = history & masks[table]
            index = (pc ^ _fold(hist, 10) ^ (table * 0x9E37)) % entries
            slot = table * entries + index
            if present[slot]:
                tag = (pc_hash ^ _fold(hist, 7) ^ (table * 0x1F3)) & tag_mask
                if tag_arr[slot] == tag:
                    return table, index, _TageEntryView(self, slot)
        return None, -1, None

    def _find_provider(self, pc: int) -> Optional[int]:
        return self._lookup(pc)[0]

    def predict(self, pc: int) -> bool:
        provider, _index, entry = self._lookup(pc)
        if provider is None:
            return self.base.predict(pc)
        return entry.counter >= 0

    def update(self, pc: int, taken: bool) -> None:
        self.predict_update(pc, taken)

    def predict_update(self, pc: int, taken: bool) -> bool:
        history = self._hist[0]
        masks = self._history_masks
        entries = self.table_entries
        tag_mask = self.tag_mask
        present = self._present
        tag_arr = self._tag_arr
        ctr = self._ctr
        useful = self._useful
        pc_hash = pc ^ (pc >> 5)

        provider = -1
        slot = -1
        for table in range(self.num_tables - 1, -1, -1):
            hist = history & masks[table]
            index = (pc ^ _fold(hist, 10) ^ (table * 0x9E37)) % entries
            k = table * entries + index
            if present[k]:
                tag = (pc_hash ^ _fold(hist, 7) ^ (table * 0x1F3)) & tag_mask
                if tag_arr[k] == tag:
                    provider = table
                    slot = k
                    break

        if provider >= 0:
            predicted = ctr[slot] >= 0
            ctr[slot] = max(-4, min(3, ctr[slot] + (1 if taken else -1)))
            if predicted == taken:
                useful[slot] = min(useful[slot] + 1, 3)
            else:
                useful[slot] = max(useful[slot] - 1, 0)
        else:
            predicted = self.base.predict(pc)
        self.base.update(pc, taken)

        # Allocate a longer-history entry on a misprediction.
        if predicted != taken:
            start = provider + 1 if provider >= 0 else 0
            for table in range(start, self.num_tables):
                index = self._index(pc, table)
                k = table * entries + index
                if not present[k] or useful[k] == 0:
                    present[k] = 1
                    tag_arr[k] = self._tag(pc, table)
                    ctr[k] = 0 if taken else -1
                    useful[k] = 0
                    break

        self._hist[0] = ((history << 1) | int(taken)) & 0xFFFFFFFFFFFFFFFF
        return predicted

    def reset(self) -> None:
        self.base.reset()
        size = self.num_tables * self.table_entries
        self._present = array("b", bytes(size))
        self._hist[0] = 0


_PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
    "tage": TageLitePredictor,
}


def make_predictor(name: str, **kwargs) -> DirectionPredictor:
    """Instantiate a direction predictor by name."""
    if name not in _PREDICTORS:
        raise KeyError(f"unknown predictor {name!r}; known: {sorted(_PREDICTORS)}")
    return _PREDICTORS[name](**kwargs)
