"""Return Address Stack."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth circular return-address stack (32 entries in Table I).

    On overflow the oldest entry is overwritten, as in real hardware; the
    corresponding return will then mispredict, which the timing model charges
    like any other branch misprediction.
    """

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        self.pushes += 1
        if len(self._stack) >= self.depth:
            self.overflows += 1
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
