"""Branch Target Buffer."""

from __future__ import annotations

from array import array
from typing import Optional


class BranchTargetBuffer:
    """Set-associative BTB mapping branch PCs to predicted targets.

    The look-ahead thread sends indirect-branch target hints through the
    footnote queue; the main core uses those in place of its own BTB lookup
    when available (Sec. III-A), which is modelled by the DLA front-end, not
    here.  This class is the conventional structure both cores contain.

    Each set packs its valid ways into flat arrays in insertion order —
    the iteration-order semantics the original dict-of-entries carried
    (update of an existing way keeps its position; the eviction victim is
    the *first* way with the minimal ``last_use``) — so the compiled
    kernel can borrow the state zero-copy and stay bit-identical.
    """

    def __init__(self, entries: int = 4096, associativity: int = 4) -> None:
        if entries % associativity != 0:
            raise ValueError("entries must be divisible by associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._tag = array("q", bytes(8 * entries))
        self._target = array("q", bytes(8 * entries))
        self._last_use = array("q", bytes(8 * entries))
        self._count = array("q", bytes(8 * self.num_sets))
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, pc: int) -> tuple[int, int]:
        return pc % self.num_sets, pc // self.num_sets

    def lookup(self, pc: int, now: int = 0) -> Optional[int]:
        """Predicted target for a control instruction at ``pc`` (or ``None``)."""
        index, tag = self._set_and_tag(pc)
        base = index * self.associativity
        tags = self._tag
        for k in range(base, base + self._count[index]):
            if tags[k] == tag:
                self.hits += 1
                self._last_use[k] = now
                return self._target[k]
        self.misses += 1
        return None

    def update(self, pc: int, target: int, now: int = 0) -> None:
        """Record the resolved target of a taken control instruction."""
        index, tag = self._set_and_tag(pc)
        base = index * self.associativity
        count = self._count[index]
        tags = self._tag
        for k in range(base, base + count):
            if tags[k] == tag:
                self._target[k] = target
                self._last_use[k] = now
                return
        if count >= self.associativity:
            last_use = self._last_use
            victim = base
            for k in range(base + 1, base + count):
                if last_use[k] < last_use[victim]:
                    victim = k
            targets = self._target
            for k in range(victim, base + count - 1):
                tags[k] = tags[k + 1]
                targets[k] = targets[k + 1]
                last_use[k] = last_use[k + 1]
            count -= 1
        slot = base + count
        tags[slot] = tag
        self._target[slot] = target
        self._last_use[slot] = now
        self._count[index] = count + 1

    def contains(self, pc: int) -> bool:
        index, tag = self._set_and_tag(pc)
        base = index * self.associativity
        tags = self._tag
        for k in range(base, base + self._count[index]):
            if tags[k] == tag:
                return True
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
