"""Branch Target Buffer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class _BtbEntry:
    target: int
    last_use: int = 0


class BranchTargetBuffer:
    """Set-associative BTB mapping branch PCs to predicted targets.

    The look-ahead thread sends indirect-branch target hints through the
    footnote queue; the main core uses those in place of its own BTB lookup
    when available (Sec. III-A), which is modelled by the DLA front-end, not
    here.  This class is the conventional structure both cores contain.
    """

    def __init__(self, entries: int = 4096, associativity: int = 4) -> None:
        if entries % associativity != 0:
            raise ValueError("entries must be divisible by associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: list[Dict[int, _BtbEntry]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, pc: int) -> tuple[int, int]:
        return pc % self.num_sets, pc // self.num_sets

    def lookup(self, pc: int, now: int = 0) -> Optional[int]:
        """Predicted target for a control instruction at ``pc`` (or ``None``)."""
        index, tag = self._set_and_tag(pc)
        entry = self._sets[index].get(tag)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        entry.last_use = now
        return entry.target

    def update(self, pc: int, target: int, now: int = 0) -> None:
        """Record the resolved target of a taken control instruction."""
        index, tag = self._set_and_tag(pc)
        btb_set = self._sets[index]
        if tag not in btb_set and len(btb_set) >= self.associativity:
            victim = min(btb_set, key=lambda t: btb_set[t].last_use)
            del btb_set[victim]
        btb_set[tag] = _BtbEntry(target=target, last_use=now)

    def contains(self, pc: int) -> bool:
        index, tag = self._set_and_tag(pc)
        return tag in self._sets[index]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
