"""The out-of-order core timing model.

The model walks the committed dynamic trace in program order and assigns each
instruction fetch / dispatch / issue / complete / commit timestamps subject to
the machine's structural and dataflow constraints.  Because the trace already
contains only committed (right-path) instructions, wrong-path work is modelled
separately: each misprediction charges front-end refill time and injects a
bounded amount of wrong-path cache pollution.

Hook points (see :class:`CoreHooks`) let the DLA machinery replace the branch
predictor with the Branch Outcome Queue, supply value predictions from the
look-ahead thread, observe commits (to produce hints), and install just-in-time
prefetches — without the baseline model knowing anything about DLA.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.branch.btb import BranchTargetBuffer
from repro.branch.predictors import make_predictor
from repro.branch.ras import ReturnAddressStack
from repro.core.config import CoreConfig
from repro.core.results import CoreResult, InstructionTiming
from repro.emulator.trace import DynamicInst
from repro.isa.instructions import FU_POOL_FP, Opcode
from repro.memory.hierarchy import AccessType, CoreMemorySystem
from repro.prefetch.base import Prefetcher


@dataclass
class BranchHint:
    """A branch-direction hint delivered through the BOQ."""

    #: Cycle at which the hint can be consumed by the main thread's fetch.
    available: float
    #: Whether the hinted direction matches the architectural outcome.
    correct: bool = True
    #: Whether a target hint accompanies the direction (footnote entry),
    #: suppressing BTB-miss bubbles.
    has_target: bool = True


@dataclass
class ValueHint:
    """A value prediction delivered through the footnote queue."""

    available: float
    correct: bool = True
    #: True when validation can be skipped entirely (all sources predicted).
    skip_validation: bool = False


@dataclass
class CoreHooks:
    """Optional callbacks that extend the core for DLA-style experiments."""

    #: Called per conditional branch; returning a hint bypasses the predictor.
    branch_hint: Optional[Callable[[DynamicInst], Optional[BranchHint]]] = None
    #: Called per instruction; returning a hint enables value reuse for it.
    value_hint: Optional[Callable[[DynamicInst], Optional[ValueHint]]] = None
    #: Called after each instruction commits.
    on_commit: Optional[Callable[[DynamicInst, float], None]] = None
    #: Called when an instruction is fetched (before its memory access).
    on_fetch: Optional[Callable[[DynamicInst, float], None]] = None
    #: Called when a BOQ hint turns out wrong; receives (inst, resolve_cycle).
    on_hint_mispredict: Optional[Callable[[DynamicInst, float], None]] = None
    #: Called after every data-memory access with (inst, access_result, cycle).
    on_memory_access: Optional[Callable[[DynamicInst, object, float], None]] = None
    #: Optional :class:`repro.core.compile.hookspec.CompiledHookSpec` letting
    #: the compiled kernel skip hook calls it can prove are no-ops.  The
    #: reference interpreter ignores it entirely.
    fast_hints: Optional[object] = None


class _FunctionalUnitPool:
    """Earliest-available scheduling over a small pool of identical units.

    Backed by a min-heap of ``(free_at, unit_index)`` pairs so a reservation
    is O(log n) instead of the O(n) min-scan of the original implementation.
    Ties on ``free_at`` resolve to the lowest unit index, matching the
    linear scan's first-minimum choice, so the two implementations produce
    identical reservation sequences (see ``_LinearFunctionalUnitPool``).
    """

    __slots__ = ("_heap",)

    def __init__(self, count: int) -> None:
        self._heap = [(0.0, i) for i in range(max(1, count))]

    def reserve(self, earliest: float, busy_for: float) -> float:
        free_at, index = self._heap[0]
        start = free_at if free_at > earliest else earliest
        heapq.heapreplace(self._heap, (start + busy_for, index))
        return start


class _LinearFunctionalUnitPool:
    """Reference O(n) implementation kept for equivalence testing."""

    def __init__(self, count: int) -> None:
        self._free_at = [0.0] * max(1, count)

    def reserve(self, earliest: float, busy_for: float) -> float:
        index = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        start = max(earliest, self._free_at[index])
        self._free_at[index] = start + busy_for
        return start


class OutOfOrderCore:
    """Timing model of one out-of-order core."""

    def __init__(
        self,
        config: CoreConfig,
        memory: CoreMemorySystem,
        l1_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
        name: Optional[str] = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.name = name or config.name
        self.l1_prefetcher = l1_prefetcher
        self.l2_prefetcher = l2_prefetcher
        self.predictor = make_predictor(config.branch_predictor)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_entries)
        self._block_bytes = memory.config.l1i.block_bytes

    # ------------------------------------------------------------------
    def run(
        self,
        entries: Sequence[DynamicInst],
        hooks: Optional[CoreHooks] = None,
        start_cycle: float = 0.0,
        collect_timings: bool = False,
    ) -> CoreResult:
        """Simulate ``entries`` and return aggregate statistics.

        ``start_cycle`` offsets the whole execution, which the DLA system uses
        when restarting a look-ahead thread after a reboot.
        """
        cfg = self.config
        hooks = hooks or CoreHooks()

        from repro.core.compile import maybe_run_compiled

        compiled = maybe_run_compiled(self, entries, hooks, start_cycle,
                                      collect_timings)
        if compiled is not None:
            return compiled

        result = CoreResult(name=self.name)
        n = len(entries)
        if n == 0:
            return result

        fetch_times: List[float] = [0.0] * n
        dispatch_times: List[float] = [0.0] * n
        commit_times: List[float] = [0.0] * n

        timings: List[InstructionTiming] = [] if collect_timings else None

        reg_ready: Dict[int, float] = {}
        int_pool = _FunctionalUnitPool(cfg.num_int_alus)
        mem_pool = _FunctionalUnitPool(cfg.num_mem_ports)
        fp_pool = _FunctionalUnitPool(cfg.num_fp_units)

        fetch_cursor = start_cycle            # earliest cycle fetch may use
        fetch_redirect_at = start_cycle       # earliest fetch after a redirect
        prev_dispatch = start_cycle
        prev_commit = start_cycle
        current_block = None
        block_ready = start_cycle

        mem_indices: List[int] = []           # trace indices of memory ops (LSQ)
        recent_load_addresses: List[int] = [] # for wrong-path pollution
        fetch_inc = 1.0 / cfg.fetch_width
        dispatch_inc = 1.0 / cfg.decode_width
        commit_inc = 1.0 / cfg.commit_width

        fetch_bound = 0

        # Hot-loop locals: every per-instruction attribute chase hoisted out.
        hook_branch_hint = hooks.branch_hint
        hook_value_hint = hooks.value_hint
        hook_on_commit = hooks.on_commit
        hook_on_fetch = hooks.on_fetch
        hook_on_memory = hooks.on_memory_access
        memory_access = self.memory.access
        block_bytes = self._block_bytes
        fetch_buffer_entries = cfg.fetch_buffer_entries
        frontend_latency = cfg.frontend_latency
        rob_entries = cfg.rob_entries
        lsq_entries = cfg.lsq_entries
        run_prefetchers = self._run_prefetchers
        has_prefetchers = self.l1_prefetcher is not None or self.l2_prefetcher is not None
        reg_ready_get = reg_ready.get
        mem_reserve = mem_pool.reserve
        int_reserve = int_pool.reserve
        fp_reserve = fp_pool.reserve
        ACC_INSTRUCTION = AccessType.INSTRUCTION
        ACC_LOAD = AccessType.LOAD
        ACC_STORE = AccessType.STORE

        for i, entry in enumerate(entries):
            static = entry.static

            # ---------------- fetch ----------------
            fetch_time = (
                fetch_cursor if fetch_cursor > fetch_redirect_at else fetch_redirect_at
            )

            # Fetch-buffer decoupling: fetch may run at most
            # ``fetch_buffer_entries`` instructions ahead of dispatch.
            if i >= fetch_buffer_entries:
                fb_gate = dispatch_times[i - fetch_buffer_entries]
                if fb_gate > fetch_time:
                    fetch_time = fb_gate

            # I-cache: a new block has to be fetched from the memory system.
            byte_address = static.byte_address
            block = byte_address // block_bytes
            if block != current_block:
                access = memory_access(byte_address, int(fetch_time), ACC_INSTRUCTION)
                result.l1i_accesses += 1
                if access.l1_miss:
                    result.l1i_misses += 1
                block_ready = access.ready_cycle
                current_block = block
            if block_ready > fetch_time:
                fetch_time = block_ready

            # Branch-direction hints (BOQ) gate the fetch of the branch itself.
            hint: Optional[BranchHint] = None
            if static.is_branch:
                if hook_branch_hint is not None:
                    hint = hook_branch_hint(entry)
                if hint is not None and hint.available > fetch_time:
                    result.fetch_stall_on_hint += hint.available - fetch_time
                    fetch_time = hint.available

            fetch_times[i] = fetch_time
            fetch_cursor = fetch_time + fetch_inc
            if hook_on_fetch is not None:
                hook_on_fetch(entry, fetch_time)

            # ---------------- dispatch ----------------
            dispatch_time = fetch_time + frontend_latency
            lane_gate = prev_dispatch + dispatch_inc
            if lane_gate > dispatch_time:
                dispatch_time = lane_gate
            if i >= rob_entries:
                rob_gate = commit_times[i - rob_entries]
                if rob_gate > dispatch_time:
                    dispatch_time = rob_gate
            if static.is_memory:
                if len(mem_indices) >= lsq_entries:
                    lsq_gate = commit_times[mem_indices[-lsq_entries]]
                    if lsq_gate > dispatch_time:
                        dispatch_time = lsq_gate
                mem_indices.append(i)
            dispatch_times[i] = dispatch_time
            if dispatch_time - fetch_time <= frontend_latency + 1e-9:
                fetch_bound += 1
            prev_dispatch = dispatch_time
            result.decoded += 1

            # ---------------- value reuse ----------------
            value_hint: Optional[ValueHint] = None
            if hook_value_hint is not None:
                candidate = hook_value_hint(entry)
                if candidate is not None and candidate.available <= dispatch_time:
                    value_hint = candidate

            # ---------------- issue / execute ----------------
            ready = dispatch_time + 1.0
            for src in static.srcs:
                src_ready = reg_ready_get(src, start_cycle)
                if src_ready > ready:
                    ready = src_ready

            executed = True
            if value_hint is not None and value_hint.skip_validation:
                # All sources were themselves value-predicted: no execution.
                complete = dispatch_time + 1.0
                executed = False
                result.validations_skipped += 1
            elif static.is_memory:
                issue = mem_reserve(ready, 1.0)
                address = entry.effective_address
                if static.is_load:
                    access = memory_access(address, int(issue), ACC_LOAD)
                    result.l1d_accesses += 1
                    if access.l1_miss:
                        result.l1d_misses += 1
                        if access.supplied_by in ("l3", "dram"):
                            result.l2_misses += 1
                    if access.dram_access:
                        result.dram_accesses += 1
                    complete = float(access.ready_cycle)
                    if has_prefetchers:
                        run_prefetchers(static.pc, address, access, issue)
                    recent_load_addresses.append(address)
                    if len(recent_load_addresses) > 16:
                        del recent_load_addresses[0]
                    if hook_on_memory is not None:
                        hook_on_memory(entry, access, issue)
                else:
                    # Stores leave the critical path at issue; the write and
                    # its traffic are charged at commit below.
                    complete = issue + 1.0
            else:
                latency = static.latency_cycles
                if static.fu_pool == FU_POOL_FP:
                    issue = fp_reserve(ready, latency)
                else:
                    issue = int_reserve(ready, 1.0)
                complete = issue + latency

            if value_hint is not None and not value_hint.skip_validation:
                result.value_predictions_used += 1
                if value_hint.correct:
                    # Dependents may proceed with the predicted value right
                    # after dispatch; the instruction still executes to
                    # validate, off the critical path.
                    if static.writes_register:
                        reg_ready[static.dst] = dispatch_time + 1.0
                else:
                    result.value_mispredictions += 1
                    complete += cfg.value_mispredict_penalty
                    if static.writes_register:
                        reg_ready[static.dst] = complete
            else:
                if static.writes_register:
                    reg_ready[static.dst] = (
                        dispatch_time + 1.0
                        if value_hint is not None and value_hint.skip_validation
                        else complete
                    )

            if executed:
                result.executed += 1
            issue_time = complete if not executed else (
                complete - (0.0 if static.is_load else static.latency_cycles)
            )

            # ---------------- control flow ----------------
            if static.is_control:
                redirect = self._handle_control(
                    entry, fetch_time, complete, hint, hooks, result
                )
                if redirect is not None:
                    fetch_redirect_at = max(fetch_redirect_at, redirect)
                    self._wrong_path_pollution(
                        recent_load_addresses, fetch_time, result
                    )

            # ---------------- commit ----------------
            commit_time = prev_commit + commit_inc
            if complete > commit_time:
                commit_time = complete
            commit_times[i] = commit_time
            prev_commit = commit_time
            result.committed += 1

            if static.is_store:
                access = memory_access(
                    entry.effective_address, int(commit_time), ACC_STORE
                )
                result.l1d_accesses += 1
                if access.l1_miss:
                    result.l1d_misses += 1
                    if access.supplied_by in ("l3", "dram"):
                        result.l2_misses += 1
                if access.dram_access:
                    result.dram_accesses += 1
                if has_prefetchers:
                    run_prefetchers(static.pc, entry.effective_address, access, commit_time)
                if hook_on_memory is not None:
                    hook_on_memory(entry, access, commit_time)

            if hook_on_commit is not None:
                hook_on_commit(entry, commit_time)

            if collect_timings:
                timings.append(
                    InstructionTiming(
                        fetch=fetch_time,
                        dispatch=dispatch_time,
                        issue=issue_time,
                        complete=complete,
                        commit=commit_time,
                    )
                )

        # ---------------- wrap-up ----------------
        result.cycles = commit_times[-1] - start_cycle
        result.tlb_misses = self.memory.tlb.stats.misses
        result.fetch_bubbles = float(n - fetch_bound)
        result.timings = timings
        self._fetch_queue_histogram(fetch_times, dispatch_times, result)
        return result

    # ------------------------------------------------------------------
    def _handle_control(
        self,
        entry: DynamicInst,
        fetch_time: float,
        complete: float,
        hint: Optional[BranchHint],
        hooks: CoreHooks,
        result: CoreResult,
    ) -> Optional[float]:
        """Branch prediction / BOQ consumption.  Returns a redirect cycle or None."""
        cfg = self.config
        static = entry.static
        taken = bool(entry.taken)

        if static.is_branch:
            result.branches += 1
            if hint is not None:
                if hint.correct:
                    # Correct BOQ hint: no misprediction; optionally no BTB
                    # bubble either because the target came along in the FQ.
                    if taken and not hint.has_target and not self.btb.contains(static.pc):
                        result.btb_misses += 1
                        return fetch_time + 3.0
                    return None
                result.branch_mispredicts += 1
                result.hint_mispredicts += 1
                if hooks.on_hint_mispredict is not None:
                    hooks.on_hint_mispredict(entry, complete)
                return complete + cfg.branch_mispredict_penalty
            predicted = self.predictor.predict_update(static.pc, taken)
            if predicted != taken:
                result.branch_mispredicts += 1
                return complete + cfg.branch_mispredict_penalty
            if taken and not self.btb.contains(static.pc):
                result.btb_misses += 1
                self.btb.update(static.pc, entry.next_pc, int(complete))
                return fetch_time + 3.0
            if taken:
                self.btb.update(static.pc, entry.next_pc, int(complete))
            return None

        # Unconditional control flow: jumps, calls, returns.
        op = static.opcode
        if op is Opcode.CALL:
            self.ras.push(static.pc + 1)
            if not self.btb.contains(static.pc):
                result.btb_misses += 1
                self.btb.update(static.pc, entry.next_pc, int(complete))
                return fetch_time + 3.0
            return None
        if op is Opcode.RET:
            predicted_target = self.ras.pop()
            if predicted_target != entry.next_pc:
                result.branch_mispredicts += 1
                return complete + cfg.branch_mispredict_penalty
            return None
        # Direct jumps: target known after decode; only a BTB miss costs.
        if not self.btb.contains(static.pc):
            result.btb_misses += 1
            self.btb.update(static.pc, entry.next_pc, int(complete))
            return fetch_time + 2.0
        return None

    # ------------------------------------------------------------------
    def _run_prefetchers(self, pc, address, access, cycle) -> None:
        # A ``None`` fill time means the memory system dropped the request
        # because no MSHR entry was free; the prefetcher is told so stateful
        # schemes can account for the lost coverage.
        if self.l1_prefetcher is not None:
            for request in self.l1_prefetcher.observe(pc, address, not access.l1_miss, int(cycle)):
                if self.memory.prefetch(request.address, int(cycle), level="l1") is None:
                    self.l1_prefetcher.notify_drop(request)
        if self.l2_prefetcher is not None and access.l1_miss:
            l2_hit = access.supplied_by == "l2"
            for request in self.l2_prefetcher.observe(pc, address, l2_hit, int(cycle)):
                if self.memory.prefetch(request.address, int(cycle), level=request.level) is None:
                    self.l2_prefetcher.notify_drop(request)

    def _wrong_path_pollution(self, recent_loads: List[int], cycle: float,
                              result: CoreResult) -> None:
        """Charge wrong-path work after a misprediction.

        The deeper the fetch unit is allowed to run ahead (larger fetch
        buffer), the more wrong-path instructions are in flight when a branch
        resolves.  Those instructions consume decode/execute bandwidth
        (energy) and issue loads that pollute the data cache — the effect
        that makes a big fetch buffer a mixed blessing on a conventional
        core (Sec. III-D2) but essentially free under BOQ-driven fetch.
        """
        if not self.config.model_wrong_path:
            return
        cfg = self.config
        wrong_path_depth = min(
            cfg.fetch_buffer_entries + cfg.decode_width,
            cfg.branch_mispredict_penalty * cfg.fetch_width,
        )
        result.decoded += wrong_path_depth
        result.executed += int(wrong_path_depth * 0.6)
        if not recent_loads:
            return
        pollution_loads = min(4, max(1, wrong_path_depth // 8))
        base = recent_loads[-1]
        block = self.memory.config.l1d.block_bytes
        for k in range(pollution_loads):
            victim_address = base + (k + 1) * block * 3
            self.memory.access(victim_address, int(cycle), AccessType.LOAD)

    # ------------------------------------------------------------------
    def _fetch_queue_histogram(self, fetch_times: List[float],
                               dispatch_times: List[float],
                               result: CoreResult, sample_every: int = 4) -> None:
        """Reconstruct the fetch-buffer occupancy distribution (Fig. 14).

        At the moment instruction ``i`` dispatches, the buffer holds every
        later instruction that has already been fetched.  Fetch times are
        non-decreasing, so a binary search gives the count directly.
        """
        n = len(fetch_times)
        capacity = self.config.fetch_buffer_entries
        for i in range(0, n, sample_every):
            upper = bisect.bisect_right(fetch_times, dispatch_times[i], i, n)
            occupancy = min(capacity, max(0, upper - i - 1))
            result.merge_histogram(occupancy)
