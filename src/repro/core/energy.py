"""Activity-based CPU energy model (McPAT stand-in).

The paper uses McPAT at 22 nm to convert simulated activity counts into
energy and power (Table II, Fig. 10).  The reproduction uses the same
*structure* of argument — per-event energies multiplied by activity counts,
plus a leakage term proportional to time — with event energies chosen to
give realistic relative weights (memory accesses and wrong-path work dominate
dynamic energy; leakage is a large fraction of total power at a low-voltage
operating point).  Absolute joules are meaningless here; every experiment
reports energy normalised to the baseline core, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.results import CoreResult


@dataclass
class EnergyParams:
    """Per-event energies (arbitrary units) and leakage power."""

    fetch_decode: float = 1.0          # per decoded instruction
    rename_dispatch: float = 0.8       # per decoded instruction
    execute_int: float = 1.0           # per executed instruction
    execute_memory: float = 1.6        # additional per load/store executed
    commit: float = 0.6                # per committed instruction
    branch_predictor: float = 0.4      # per conditional branch
    l1_access: float = 1.2
    l2_access: float = 4.0
    l3_access: float = 10.0
    dram_interface: float = 18.0       # on-chip cost of a DRAM access
    value_prediction: float = 0.3      # per value prediction consumed
    #: Leakage power in energy units per cycle for a full core.
    static_power_per_cycle: float = 1.9
    #: Extra static power of the DLA support structures (BOQ/FQ/T1/...),
    #: relative to a full core.  The structures total a few KB (Table I).
    dla_structure_factor: float = 0.02


@dataclass
class EnergyBreakdown:
    """Energy totals for one core over one simulated window."""

    dynamic: float = 0.0
    static: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)
    cycles: float = 0.0

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    @property
    def dynamic_power(self) -> float:
        return self.dynamic / self.cycles if self.cycles else 0.0

    @property
    def static_power(self) -> float:
        return self.static / self.cycles if self.cycles else 0.0

    @property
    def total_power(self) -> float:
        return self.total / self.cycles if self.cycles else 0.0


class EnergyModel:
    """Convert a :class:`CoreResult` into an :class:`EnergyBreakdown`."""

    def __init__(self, params: EnergyParams = None) -> None:
        self.params = params or EnergyParams()

    def evaluate(self, result: CoreResult, is_lookahead: bool = False,
                 includes_dla_structures: bool = False) -> EnergyBreakdown:
        """Energy of one core run.

        ``is_lookahead`` marks the leading core, which never commits results
        to memory (no store write energy beyond its private caches) — the
        difference is small and already captured by its reduced activity.
        ``includes_dla_structures`` adds the (tiny) leakage of the BOQ, FQ,
        T1, VPT and LCT structures to the core's static power.
        """
        p = self.params
        components = {
            "frontend": result.decoded * (p.fetch_decode + p.rename_dispatch),
            "execute": result.executed * p.execute_int
            + (result.l1d_accesses * p.execute_memory),
            "commit": result.committed * p.commit,
            "branch_predictor": result.branches * p.branch_predictor,
            "l1": (result.l1d_accesses + result.l1i_accesses) * p.l1_access,
            "l2": (result.l1d_misses + result.l1i_misses) * p.l2_access,
            "l3": result.l2_misses * p.l3_access,
            "dram_interface": result.dram_accesses * p.dram_interface,
            "value_prediction": result.value_predictions_used * p.value_prediction,
        }
        dynamic = sum(components.values())
        static_rate = p.static_power_per_cycle
        if includes_dla_structures:
            static_rate *= 1.0 + p.dla_structure_factor
        static = static_rate * result.cycles
        return EnergyBreakdown(
            dynamic=dynamic,
            static=static,
            components=components,
            cycles=result.cycles,
        )
