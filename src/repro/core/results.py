"""Result containers produced by the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class InstructionTiming:
    """Per-instruction pipeline timestamps (in cycles, fractional allowed)."""

    fetch: float
    dispatch: float
    issue: float
    complete: float
    commit: float

    @property
    def dispatch_to_execute(self) -> float:
        """The latency used to identify "slow" value-reuse candidates."""
        return self.complete - self.dispatch


@dataclass
class CoreResult:
    """Aggregate statistics from one timing-model run."""

    name: str = "core"
    #: Total cycles from the first fetch to the last commit.
    cycles: float = 0.0
    committed: int = 0
    #: Dynamic instructions decoded (committed plus wrong-path work).
    decoded: int = 0
    #: Dynamic instructions executed (committed plus wrong-path work).
    executed: int = 0

    # Branch behaviour.
    branches: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    #: Mispredictions caused by an incorrect look-ahead (BOQ) hint.
    hint_mispredicts: int = 0

    # Memory behaviour.
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    tlb_misses: int = 0

    # Value reuse.
    value_predictions_used: int = 0
    value_mispredictions: int = 0
    validations_skipped: int = 0

    # Front end.
    fetch_bubbles: float = 0.0
    fetch_stall_on_hint: float = 0.0
    #: Histogram of fetch-buffer occupancy sampled at each dispatch.
    fetch_queue_histogram: Dict[int, int] = field(default_factory=dict)

    # Optional per-instruction timings (populated when requested).
    timings: Optional[List[InstructionTiming]] = None

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self) -> float:
        return 1000.0 * self.branch_mispredicts / self.committed if self.committed else 0.0

    @property
    def l1d_mpki(self) -> float:
        return 1000.0 * self.l1d_misses / self.committed if self.committed else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.branch_mispredicts / self.branches

    def merge_histogram(self, occupancy: int) -> None:
        self.fetch_queue_histogram[occupancy] = (
            self.fetch_queue_histogram.get(occupancy, 0) + 1
        )

    def accumulate(self, other: "CoreResult") -> None:
        """Add another run's statistics into this one (segmented simulation).

        Cycles add up (segments execute back to back); counters add up; the
        per-instruction timing lists are concatenated when both sides carry
        them.
        """
        self.cycles += other.cycles
        self.committed += other.committed
        self.decoded += other.decoded
        self.executed += other.executed
        self.branches += other.branches
        self.branch_mispredicts += other.branch_mispredicts
        self.btb_misses += other.btb_misses
        self.hint_mispredicts += other.hint_mispredicts
        self.l1d_accesses += other.l1d_accesses
        self.l1d_misses += other.l1d_misses
        self.l1i_accesses += other.l1i_accesses
        self.l1i_misses += other.l1i_misses
        self.l2_misses += other.l2_misses
        self.dram_accesses += other.dram_accesses
        self.tlb_misses += other.tlb_misses
        self.value_predictions_used += other.value_predictions_used
        self.value_mispredictions += other.value_mispredictions
        self.validations_skipped += other.validations_skipped
        self.fetch_bubbles += other.fetch_bubbles
        self.fetch_stall_on_hint += other.fetch_stall_on_hint
        for occupancy, count in other.fetch_queue_histogram.items():
            self.fetch_queue_histogram[occupancy] = (
                self.fetch_queue_histogram.get(occupancy, 0) + count
            )
        if other.timings:
            if self.timings is None:
                self.timings = []
            self.timings.extend(other.timings)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (for table rendering)."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "branch_mpki": self.branch_mpki,
            "branch_accuracy": self.branch_accuracy,
            "l1d_mpki": self.l1d_mpki,
            "dram_accesses": self.dram_accesses,
            "decoded": self.decoded,
            "executed": self.executed,
        }
