"""Core and system configuration (Table I of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.resources import WriteBufferConfig


@dataclass
class CoreConfig:
    """Microarchitectural parameters of one core.

    Defaults follow Table I: a 20-stage, 4-wide out-of-order pipeline with a
    192-entry ROB, 96-entry LSQ, 128+128 physical registers, 4 integer ALUs,
    2 memory ports and 4 FP units, a TAGE-class predictor, a 4K-entry BTB and
    a 32-entry RAS.
    """

    name: str = "core"
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 192
    lsq_entries: int = 96
    int_prf_entries: int = 128
    fp_prf_entries: int = 128
    num_int_alus: int = 4
    num_mem_ports: int = 2
    num_fp_units: int = 4
    pipeline_depth: int = 20
    #: Cycles from fetch redirect to first useful fetch after a misprediction.
    branch_mispredict_penalty: int = 14
    #: Front-end (fetch to dispatch) latency in cycles.
    frontend_latency: int = 5
    #: Capacity of the fetch (decode-decoupling) buffer, in instructions.
    #: 8 is the conventional baseline; the R3-DLA "FB" optimization grows it
    #: to 32 (Table I, R3-DLA support).
    fetch_buffer_entries: int = 8
    #: Branch direction predictor ("tage", "tournament", "gshare", "bimodal").
    branch_predictor: str = "tage"
    btb_entries: int = 4096
    ras_entries: int = 32
    #: Penalty charged when a value prediction turns out wrong (replay).
    value_mispredict_penalty: int = 12
    #: Model wrong-path cache pollution after mispredictions.
    model_wrong_path: bool = True

    def scaled(self, factor: float, name: Optional[str] = None) -> "CoreConfig":
        """A copy with widths and window sizes scaled by ``factor``.

        Used to derive the wide SMT core and its half-core of Fig. 11.
        """
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            fetch_width=max(1, int(self.fetch_width * factor)),
            decode_width=max(1, int(self.decode_width * factor)),
            issue_width=max(1, int(self.issue_width * factor)),
            commit_width=max(1, int(self.commit_width * factor)),
            rob_entries=max(16, int(self.rob_entries * factor)),
            lsq_entries=max(8, int(self.lsq_entries * factor)),
            num_int_alus=max(1, int(self.num_int_alus * factor)),
            num_mem_ports=max(1, int(self.num_mem_ports * factor)),
            num_fp_units=max(1, int(self.num_fp_units * factor)),
        )


@dataclass
class SystemConfig:
    """A complete single-core (or per-core) system configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    #: L2 prefetcher name ("bop" in the paper's baseline, "none" for noPF).
    l2_prefetcher: str = "bop"
    #: Optional additional L1 prefetcher ("stride" in Sec. IV-C1 comparisons).
    l1_prefetcher: str = "none"
    frequency_ghz: float = 3.0
    voltage: float = 0.8

    def with_overrides(self, **core_overrides) -> "SystemConfig":
        """A copy of this config with selected core fields replaced."""
        return replace(self, core=replace(self.core, **core_overrides))

    def without_prefetchers(self) -> "SystemConfig":
        """A copy with every hardware prefetcher disabled (the "noPF" axis).

        Uses ``replace`` so every other field — including frequency/voltage
        — carries over; the campaign layer and the runner presets must
        materialise identical configs or their fingerprints diverge.
        """
        return replace(self, l2_prefetcher="none", l1_prefetcher="none")

    def with_l1_stride(self) -> "SystemConfig":
        """A copy with an added L1 stride prefetcher (Sec. IV-C1)."""
        return replace(self, l1_prefetcher="stride")

    def with_mshr_entries(self, entries: Optional[int]) -> "SystemConfig":
        """A copy with every cache level's MSHR file set to ``entries``.

        ``None`` makes every file unbounded (infinite memory-level
        parallelism — the pre-MSHR-model behaviour); an integer caps the
        outstanding misses of each level uniformly, which is the knob the
        ``mshr:*`` sensitivity campaigns sweep.
        """
        memory = replace(
            self.memory,
            l1i=replace(self.memory.l1i, mshr_entries=entries),
            l1d=replace(self.memory.l1d, mshr_entries=entries),
            l2=replace(self.memory.l2, mshr_entries=entries),
            l3=replace(self.memory.l3, mshr_entries=entries),
        )
        return replace(self, memory=memory)

    def with_mshr_banks(self, banks: Optional[int]) -> "SystemConfig":
        """A copy with every cache level's MSHR file split into ``banks``
        address-interleaved banks (``None``/``0``/``1`` = the single file).
        Bank conflict stalls are counted separately from capacity stalls;
        the per-level entry count must divide evenly across the banks.

        The inert spellings normalise to ``None`` so an un-banked machine
        has exactly one content fingerprint (one cache slot) no matter how
        it was written.
        """
        if banks is not None and banks <= 1:
            banks = None
        memory = replace(
            self.memory,
            l1i=replace(self.memory.l1i, mshr_banks=banks),
            l1d=replace(self.memory.l1d, mshr_banks=banks),
            l2=replace(self.memory.l2, mshr_banks=banks),
            l3=replace(self.memory.l3, mshr_banks=banks),
        )
        return replace(self, memory=memory)

    def with_write_buffer(self, entries: Optional[int]) -> "SystemConfig":
        """A copy with an ``entries``-deep victim write buffer on every
        write-allocating level (L1D/L2/L3; the I-cache never holds dirty
        lines).  ``None`` removes the buffers — dirty victims drain
        instantly, the pre-model behaviour.
        """
        buffer = None if entries is None else WriteBufferConfig(entries=entries)
        memory = replace(
            self.memory,
            l1d=replace(self.memory.l1d, write_buffer=buffer),
            l2=replace(self.memory.l2, write_buffer=buffer),
            l3=replace(self.memory.l3, write_buffer=buffer),
        )
        return replace(self, memory=memory)

    def with_dram_queue(self, depth: Optional[int],
                        groups: Optional[int] = None) -> "SystemConfig":
        """A copy with DRAM controller read/write queues of ``depth`` slots
        per bank group (``None`` = unbounded, the pre-model behaviour).
        ``groups`` optionally overrides the bank-group count; it is ignored
        while ``depth`` is ``None`` (the knob would be inert but would
        still split the unbounded machine's content fingerprint).
        """
        dram = replace(self.memory.dram, queue_depth=depth)
        if groups is not None and depth is not None:
            dram = replace(dram, queue_groups=groups)
        return replace(self, memory=replace(self.memory, dram=dram))

    def with_memsys(self, mshr_entries=..., mshr_banks=...,
                    write_buffer_entries=..., dram_queue_depth=...) -> "SystemConfig":
        """A copy with any subset of the memory-backend contention knobs set.

        Unpassed knobs keep their current values; each passed knob accepts
        ``None`` for "unbounded / model off".  This is the single entry
        point the sweeps and campaign variants materialise through, so the
        declarative and imperative spellings fingerprint identically.
        """
        config = self
        if mshr_entries is not ...:
            config = config.with_mshr_entries(mshr_entries)
        if mshr_banks is not ...:
            config = config.with_mshr_banks(mshr_banks)
        if write_buffer_entries is not ...:
            config = config.with_write_buffer(write_buffer_entries)
        if dram_queue_depth is not ...:
            config = config.with_dram_queue(dram_queue_depth)
        return config


def smt_full_core_config() -> CoreConfig:
    """The wide SMT core of Sec. IV-B3 (loosely POWER9 SMT8-like).

    Fetch/decode/issue/commit of 16/12/16/16 with a 512-entry ROB; it can
    also operate as two independent half-cores.
    """
    return CoreConfig(
        name="smt-full",
        fetch_width=16,
        decode_width=12,
        issue_width=16,
        commit_width=16,
        rob_entries=512,
        lsq_entries=256,
        int_prf_entries=384,
        fp_prf_entries=384,
        num_int_alus=8,
        num_mem_ports=4,
        num_fp_units=8,
    )


def sm_half_core_config() -> CoreConfig:
    """One half of the wide SMT core (the normalisation baseline of Fig. 11)."""
    full = smt_full_core_config()
    half = full.scaled(0.5, name="smt-half")
    return half
