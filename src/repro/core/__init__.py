"""Trace-driven out-of-order core timing model.

The model consumes a committed dynamic trace (produced by
:mod:`repro.emulator`) and charges cycles against it using a dataflow-style
pipeline model with the first-order constraints of an aggressive
out-of-order core: finite fetch/decode/issue/commit widths, a finite reorder
buffer and load/store queue, functional-unit contention, branch prediction
with a front-end redirect penalty, a decoupled fetch buffer, and a full
cache/TLB/DRAM hierarchy for both instructions and data.

It is *cycle-approximate*, not cycle-accurate: the goal, as stated in
DESIGN.md, is to preserve the relative behaviour the paper's conclusions rest
on (what limits the main thread, how much a look-ahead thread helps, where
prefetching is late), not to reproduce gem5 cycle counts.
"""

from repro.core.config import CoreConfig, SystemConfig, sm_half_core_config, smt_full_core_config
from repro.core.results import CoreResult, InstructionTiming
from repro.core.pipeline import BranchHint, CoreHooks, OutOfOrderCore, ValueHint
from repro.core.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.core.system import SimulationOutcome, simulate_baseline

__all__ = [
    "CoreConfig",
    "SystemConfig",
    "smt_full_core_config",
    "sm_half_core_config",
    "CoreResult",
    "InstructionTiming",
    "OutOfOrderCore",
    "CoreHooks",
    "BranchHint",
    "ValueHint",
    "EnergyModel",
    "EnergyParams",
    "EnergyBreakdown",
    "simulate_baseline",
    "SimulationOutcome",
]
