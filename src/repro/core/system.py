"""Single-core system assembly: the baseline ("BL") configurations.

This module wires a workload trace, a memory hierarchy, prefetchers and one
out-of-order core together — the configuration every DLA variant is compared
against.  The DLA system (two cores plus queues) lives in :mod:`repro.dla`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.energy import EnergyBreakdown, EnergyModel
from repro.core.pipeline import CoreHooks, OutOfOrderCore
from repro.core.results import CoreResult
from repro.emulator.trace import DynamicInst, Trace
from repro.memory.hierarchy import AccessType, CoreMemorySystem, SharedMemorySystem
from repro.prefetch import make_prefetcher


@dataclass
class SimulationOutcome:
    """Everything an experiment needs from one single-core simulation."""

    core: CoreResult
    energy: EnergyBreakdown
    #: Total DRAM transfers (the paper's memory-traffic metric).
    memory_traffic: int
    #: Total DRAM energy over the run (arbitrary units).
    dram_energy: float
    shared: SharedMemorySystem = field(repr=False, default=None)
    private: CoreMemorySystem = field(repr=False, default=None)

    @property
    def cycles(self) -> float:
        return self.core.cycles

    @property
    def ipc(self) -> float:
        return self.core.ipc


def warm_memory_system(memory: CoreMemorySystem, entries: Sequence[DynamicInst],
                       cycles_per_access: int = 2) -> None:
    """Warm a core's caches/TLB by replaying a trace's memory behaviour.

    The paper warms the caches for 100M instructions before each SimPoint
    interval; this helper provides the equivalent for the (much shorter)
    traces used here.  Only the memory side is replayed — instruction blocks,
    loads, stores and TLB entries — which is all that persists into the timed
    region.
    """
    cycle = 0
    block = memory.config.l1i.block_bytes
    last_block = None
    access = memory.access
    acc_inst, acc_load, acc_store = (
        AccessType.INSTRUCTION, AccessType.LOAD, AccessType.STORE
    )
    for entry in entries:
        static = entry.static
        address = static.byte_address
        if address // block != last_block:
            last_block = address // block
            access(address, cycle, acc_inst)
        if static.is_load:
            access(entry.effective_address, cycle, acc_load)
        elif static.is_store:
            access(entry.effective_address, cycle, acc_store)
        cycle += cycles_per_access


def build_single_core(config: SystemConfig, lookahead_mode: bool = False):
    """Construct (shared memory, private memory, core) for one configuration."""
    shared = SharedMemorySystem(config.memory)
    private = CoreMemorySystem(shared, config.memory, lookahead_mode=lookahead_mode)
    l1_pf = None
    if config.l1_prefetcher and config.l1_prefetcher != "none":
        l1_pf = make_prefetcher(config.l1_prefetcher)
    l2_pf = None
    if config.l2_prefetcher and config.l2_prefetcher != "none":
        l2_pf = make_prefetcher(config.l2_prefetcher)
    core = OutOfOrderCore(
        config.core, private, l1_prefetcher=l1_pf, l2_prefetcher=l2_pf
    )
    return shared, private, core


def simulate_baseline(
    entries: Sequence[DynamicInst] | Trace,
    config: Optional[SystemConfig] = None,
    hooks: Optional[CoreHooks] = None,
    collect_timings: bool = False,
    warmup_entries: Optional[Sequence[DynamicInst]] = None,
) -> SimulationOutcome:
    """Simulate a committed trace on a single conventional core.

    ``warmup_entries`` (typically the portion of the trace preceding the
    timed window) are replayed through the memory hierarchy before timing
    starts, so the measured region sees steady-state cache contents.
    """
    config = config or SystemConfig()
    if isinstance(entries, Trace):
        entries = entries.entries
    shared, private, core = build_single_core(config)
    if warmup_entries:
        warm_memory_system(private, warmup_entries)
    result = core.run(entries, hooks=hooks, collect_timings=collect_timings)
    energy = EnergyModel().evaluate(result)
    return SimulationOutcome(
        core=result,
        energy=energy,
        memory_traffic=shared.traffic,
        dram_energy=shared.dram.energy(int(result.cycles)),
        shared=shared,
        private=private,
    )
