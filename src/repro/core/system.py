"""Single-core system assembly: the baseline ("BL") configurations.

This module wires a workload trace, a memory hierarchy, prefetchers and one
out-of-order core together — the configuration every DLA variant is compared
against.  The DLA system (two cores plus queues) lives in :mod:`repro.dla`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.energy import EnergyBreakdown, EnergyModel
from repro.core.pipeline import CoreHooks, OutOfOrderCore
from repro.core.results import CoreResult
from repro.emulator.trace import DynamicInst, Trace
from repro.memory.hierarchy import AccessType, CoreMemorySystem, SharedMemorySystem
from repro.prefetch import make_prefetcher

#: Set to ``0`` to disable the warmed-memory memoization (always replay).
WARM_MEMO_ENV = "REPRO_WARM_MEMO"


def warm_memo_enabled() -> bool:
    """Whether warmed-memory snapshots are reused (default: yes)."""
    return os.environ.get(WARM_MEMO_ENV, "1") not in ("0", "false", "no")


@dataclass
class SimulationOutcome:
    """Everything an experiment needs from one single-core simulation."""

    core: CoreResult
    energy: EnergyBreakdown
    #: Total DRAM transfers (the paper's memory-traffic metric).
    memory_traffic: int
    #: Total DRAM energy over the run (arbitrary units).
    dram_energy: float
    shared: SharedMemorySystem = field(repr=False, default=None)
    private: CoreMemorySystem = field(repr=False, default=None)
    #: Unified memory-backend telemetry: one dict per level (``l1i``/``l1d``/
    #: ``l2``/``l3`` with ``mshr``/``write_buffer``/``writebacks`` slices)
    #: plus a ``dram`` entry (per-source traffic split, controller-queue
    #: counters).  Kept as a plain dict so it survives :func:`strip_outcome`
    #: and disk caching.  Subsumes the old per-level ``mshr`` field, which
    #: lives on as the derived :attr:`mshr` view.
    memsys: Optional[Dict[str, Dict[str, object]]] = None

    @property
    def mshr(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Per-level MSHR counters (the pre-``memsys`` telemetry shape)."""
        if self.memsys is None:
            return None
        return {
            level: info["mshr"]
            for level, info in self.memsys.items()
            if isinstance(info, dict) and "mshr" in info
        }

    @property
    def cycles(self) -> float:
        return self.core.cycles

    @property
    def ipc(self) -> float:
        return self.core.ipc


def _replay_warmup(memory: CoreMemorySystem, entries: Sequence[DynamicInst],
                   cycles_per_access: int = 2) -> None:
    """Warm one core's caches/TLB by replaying a trace's memory behaviour.

    The paper warms the caches for 100M instructions before each SimPoint
    interval; this helper provides the equivalent for the (much shorter)
    traces used here.  Only the memory side is replayed — instruction blocks,
    loads, stores and TLB entries — which is all that persists into the timed
    region.
    """
    from repro.core.compile import fast_pipeline_enabled

    cycle = 0
    block = memory.config.l1i.block_bytes
    last_block = None
    if fast_pipeline_enabled():
        # Same accesses in the same order, through the tuple-returning fast
        # accessors: replay only needs the hierarchy's state side effects,
        # not the AccessResult objects the reference accessor builds.
        access_inst = memory.access_inst_fast
        access_data = memory.access_data_fast
        for entry in entries:
            static = entry.static
            address = static.byte_address
            if address // block != last_block:
                last_block = address // block
                access_inst(address, cycle)
            if static.is_load:
                access_data(entry.effective_address, cycle, False)
            elif static.is_store:
                access_data(entry.effective_address, cycle, True)
            cycle += cycles_per_access
        return
    access = memory.access
    acc_inst, acc_load, acc_store = (
        AccessType.INSTRUCTION, AccessType.LOAD, AccessType.STORE
    )
    for entry in entries:
        static = entry.static
        address = static.byte_address
        if address // block != last_block:
            last_block = address // block
            access(address, cycle, acc_inst)
        if static.is_load:
            access(entry.effective_address, cycle, acc_load)
        elif static.is_store:
            access(entry.effective_address, cycle, acc_store)
        cycle += cycles_per_access


class WarmupMemo:
    """Replays each warmup window once per (trace, cache geometry) and
    restores post-warm snapshots thereafter.

    Every simulation of one workload replays the same warmup window into a
    freshly-built memory system (~21 times per workload across the quick
    experiment matrix).  The post-warm state is fully determined by the
    warmup entries, the hierarchy geometry, the group of cores being warmed
    (order and look-ahead modes) and the replay pacing — so the first warm
    records a snapshot and every later structurally-identical warm restores
    it instead of replaying.

    Soundness requirements (all call sites satisfy them):

    * the memory systems are freshly constructed (pre-warm state is the
      canonical empty state);
    * every memory in a group shares one :class:`SharedMemorySystem`, and a
      multi-core warm always goes through one group call so the combined
      shared-level state is captured and restored atomically;
    * warmup entry lists are never mutated.  Groups are keyed by the entry
      list's identity (with a strong reference retained so ids can never be
      recycled), which is exact because runners reuse one list per workload;
      a same-content copy merely replays once more.
    """

    #: Bound on retained snapshots: enough for a full-eval campaign (34
    #: workloads x a few warm groups) while capping memory in long-lived
    #: processes that keep constructing fresh runners/trace windows.
    MAX_SNAPSHOTS = 256

    def __init__(self, max_snapshots: int = MAX_SNAPSHOTS) -> None:
        self._snapshots: Dict[tuple, tuple] = {}
        #: Strong references keeping id()-keyed entry lists alive.
        self._retained: Dict[int, Sequence[DynamicInst]] = {}
        self.max_snapshots = max_snapshots
        self.replays = 0
        self.restores = 0

    def _key(self, memories: Tuple[CoreMemorySystem, ...],
             entries: Sequence[DynamicInst], cycles_per_access: int) -> tuple:
        from repro.experiments.fingerprint import fingerprint

        token = id(entries)
        self._retained.setdefault(token, entries)
        geometry = fingerprint(
            [memory.config for memory in memories],
            [memory.lookahead_mode for memory in memories],
        )
        return token, geometry, cycles_per_access

    def warm(self, memories: Tuple[CoreMemorySystem, ...],
             entries: Sequence[DynamicInst], cycles_per_access: int = 2) -> None:
        shared = memories[0].shared
        if any(memory.shared is not shared for memory in memories):
            raise ValueError("a warm group must share one SharedMemorySystem")
        key = self._key(memories, entries, cycles_per_access)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            for memory in memories:
                _replay_warmup(memory, entries, cycles_per_access)
            self.replays += 1
            self._evict_to_fit(key)
            self._snapshots[key] = (
                shared.snapshot_state(),
                tuple(memory.snapshot_state() for memory in memories),
            )
            return
        shared_state, memory_states = snapshot
        shared.restore_state(shared_state)
        for memory, state in zip(memories, memory_states):
            memory.restore_state(state)
        self.restores += 1

    def _evict_to_fit(self, incoming_key: tuple) -> None:
        """Drop oldest snapshots (FIFO) so the memo stays bounded.

        A retained entries reference may only be released when *no* snapshot
        uses its token any more — including ``incoming_key``, which is about
        to be inserted: dropping its token's reference here would let the
        id be recycled under a live snapshot.
        """
        incoming_token = incoming_key[0]
        while len(self._snapshots) >= self.max_snapshots:
            victim_key = next(iter(self._snapshots))
            del self._snapshots[victim_key]
            token = victim_key[0]
            if token != incoming_token and not any(
                key[0] == token for key in self._snapshots
            ):
                self._retained.pop(token, None)

    def clear(self) -> None:
        self._snapshots.clear()
        self._retained.clear()


#: Process-wide memo shared by every simulation entry point.
_WARM_MEMO = WarmupMemo()


def warm_memo_stats() -> Dict[str, int]:
    """Replay/restore counters of the process-wide warmed-memory memo."""
    return {"warm_replays": _WARM_MEMO.replays, "warm_restores": _WARM_MEMO.restores}


def warm_memory_systems(memories: Sequence[CoreMemorySystem],
                        entries: Sequence[DynamicInst],
                        cycles_per_access: int = 2) -> None:
    """Warm a group of freshly-built cores sharing one shared system.

    The group warms in list order (order matters: earlier cores' misses
    populate the shared L3 the later cores then hit).  With the memo enabled
    the whole group's post-warm state — private levels and the shared system
    — is snapshot/restored as a unit.
    """
    if not entries:
        return
    if warm_memo_enabled():
        _WARM_MEMO.warm(tuple(memories), entries, cycles_per_access)
    else:
        for memory in memories:
            _replay_warmup(memory, entries, cycles_per_access)
    # The timed region restarts the clock at 0 while warm replay ran on its
    # own (much later) cycle numbers: quiesce every contention resource
    # (MSHR files, write buffers, DRAM queues) so the warm window's
    # in-flight completion times cannot stall the timed region.  The
    # drain runs after both the replay and the restore path, so warm-vs-cold
    # outcomes stay bit-identical.
    for memory in memories:
        memory.drain_mshrs()
    memories[0].shared.drain_mshrs()


def warm_memory_system(memory: CoreMemorySystem, entries: Sequence[DynamicInst],
                       cycles_per_access: int = 2) -> None:
    """Warm one core's caches/TLB (memoized; see :class:`WarmupMemo`)."""
    warm_memory_systems((memory,), entries, cycles_per_access)


def build_single_core(config: SystemConfig, lookahead_mode: bool = False):
    """Construct (shared memory, private memory, core) for one configuration."""
    shared = SharedMemorySystem(config.memory)
    private = CoreMemorySystem(shared, config.memory, lookahead_mode=lookahead_mode)
    l1_pf = None
    if config.l1_prefetcher and config.l1_prefetcher != "none":
        l1_pf = make_prefetcher(config.l1_prefetcher)
    l2_pf = None
    if config.l2_prefetcher and config.l2_prefetcher != "none":
        l2_pf = make_prefetcher(config.l2_prefetcher)
    core = OutOfOrderCore(
        config.core, private, l1_prefetcher=l1_pf, l2_prefetcher=l2_pf
    )
    return shared, private, core


def simulate_baseline(
    entries: Sequence[DynamicInst] | Trace,
    config: Optional[SystemConfig] = None,
    hooks: Optional[CoreHooks] = None,
    collect_timings: bool = False,
    warmup_entries: Optional[Sequence[DynamicInst]] = None,
) -> SimulationOutcome:
    """Simulate a committed trace on a single conventional core.

    ``warmup_entries`` (typically the portion of the trace preceding the
    timed window) are replayed through the memory hierarchy before timing
    starts, so the measured region sees steady-state cache contents.
    """
    config = config or SystemConfig()
    if isinstance(entries, Trace):
        entries = entries.entries
    shared, private, core = build_single_core(config)
    if warmup_entries:
        warm_memory_system(private, warmup_entries)
    result = core.run(entries, hooks=hooks, collect_timings=collect_timings)
    energy = EnergyModel().evaluate(result)
    return SimulationOutcome(
        core=result,
        energy=energy,
        memory_traffic=shared.traffic,
        dram_energy=shared.dram.energy(int(result.cycles)),
        shared=shared,
        private=private,
        memsys={**private.memsys_telemetry(), **shared.memsys_telemetry()},
    )
