"""Compiled tick pipeline: per-config specialized hot loops.

Setup-time passes replace the interpreted per-instruction loop in
:mod:`repro.core.pipeline` with a compiled kernel plus a thin set of
per-variant Python callbacks:

1. **Plan** (:mod:`repro.core.compile.plan`) — resolve every run-invariant
   config branch (which hooks exist, which prefetchers train, whether the
   fast memory accessors are sound) into a frozen
   :class:`SpecializationPlan`.
2. **Decode** (:mod:`repro.core.compile.decoded`) — flatten per-opcode
   attributes of the trace window into typed arrays, memoized per window.
3. **Build** (:mod:`repro.core.compile.build`) — compile ``kernel.c`` once
   per interpreter ABI with the system C compiler, cached on disk under
   ``.repro_cache/compiled/``.
4. **Run** (:mod:`repro.core.compile.driver`) — drive the kernel; any
   model interaction (caches, predictor, DLA hooks) happens through
   callbacks so dynamic state lives exactly where the reference keeps it.

``REPRO_FAST_PIPELINE=0`` disables all of it and the reference
interpreter carries every run; any failure (no compiler, compile error)
degrades to the same fallback silently.  The golden equivalence tests pin
both paths to bit-identical results.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.core.results import CoreResult

FAST_PIPELINE_ENV = "REPRO_FAST_PIPELINE"

_FALSEY = {"0", "false", "no", "off"}

#: Instructions retired through the compiled kernel in this process.
_compiled_ticks = 0


def fast_pipeline_enabled() -> bool:
    return os.environ.get(FAST_PIPELINE_ENV, "1").strip().lower() not in _FALSEY


def compiled_ticks_total() -> int:
    """Process-wide count of instructions retired by the compiled kernel."""
    return _compiled_ticks


def kernel_available() -> bool:
    """Whether the compiled kernel can be (or has been) loaded."""
    if not fast_pipeline_enabled():
        return False
    from repro.core.compile.build import load_kernel

    return load_kernel() is not None


def maybe_run_compiled(core, entries: Sequence, hooks, start_cycle: float,
                       collect_timings: bool) -> Optional[CoreResult]:
    """Run one simulation on the compiled path, or ``None`` to fall back.

    ``None`` means the reference interpreter must carry the run — the
    kill-switch is set, the kernel failed to build, or the run needs
    per-instruction timings.
    """
    global _compiled_ticks
    if not fast_pipeline_enabled():
        return None
    from repro.core.compile.build import load_kernel

    kernel = load_kernel()
    if kernel is None:
        return None
    from repro.core.compile.driver import run_compiled

    result = run_compiled(kernel, core, entries, hooks, start_cycle,
                          collect_timings)
    if result is not None:
        _compiled_ticks += len(entries)
    return result
