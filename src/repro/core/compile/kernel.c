/* Compiled tick kernel: the per-instruction scheduling shell of
 * OutOfOrderCore.run, with every model interaction (caches, predictor,
 * hooks) left in Python and reached through per-event callbacks that
 * communicate over a shared double buffer.  Mirrors core/pipeline.py
 * statement-for-statement; bit-identity is enforced by the golden and
 * equivalence suites. */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>
#include <math.h>

/* decoded static flags (must match core/compile/decoded.py) */
#define F_BRANCH  1
#define F_MEM     2
#define F_LOAD    4
#define F_STORE   8
#define F_CONTROL 16
#define F_FP      32
#define F_WRITES  64
#define F_SKIPPABLE 128
#define F_TAKEN   256
#define F_CALL    512
#define F_RET     1024

/* comm-buffer slots (must match core/compile/driver.py) */
#define B_I    0
#define B_T0   1
#define B_T1   2
#define B_OUT0 3
#define B_OUT1 4
#define B_DUE  5
#define B_OUT2 6

/* counter slots (must match core/compile/driver.py) */
enum {
    C_L1I_ACC, C_L1I_MISS, C_L1D_ACC, C_L1D_MISS, C_L2_MISS, C_DRAM,
    C_DECODED, C_EXECUTED, C_COMMITTED, C_FETCH_BOUND,
    C_VALID_SKIP, C_VP_USED, C_VP_MISS, C_SB_SKIP, C_SB_VALID,
    C_BRANCHES, C_BR_MISPRED, C_HINT_MISPRED, C_BTB_MISS,
    C_TICKS, C_COUNT
};

/* ------------------------------------------------------------------ */
/* Native branch unit: TAGE-lite predictor, BTB and RAS operating on  */
/* the Python objects' own flat arrays (zero-copy, state persists     */
/* across runs exactly as in the interpreter).  Each function mirrors */
/* its Python counterpart statement-for-statement.                    */

static inline uint64_t
fold_u(uint64_t value, int bits)
{
    uint64_t mask = (1ULL << bits) - 1;
    uint64_t folded = 0;
    while (value) {
        folded ^= value & mask;
        value >>= bits;
    }
    return folded;
}

typedef struct {
    int64_t *base;                 /* bimodal base counters */
    int64_t base_n, base_thresh, base_max;
    int8_t *present;               /* tagged tables, [table][index] flat */
    int64_t *tags, *ctr, *useful;
    uint64_t *hist;                /* single-element history register */
    uint64_t *masks;               /* per-table history masks */
    int64_t nt, te, tag_mask;
} tage_t;

/* Mirrors TageLitePredictor.predict_update. */
static int
tage_predict_update(tage_t *tg, int64_t pc_, int taken)
{
    uint64_t history = tg->hist[0];
    uint64_t pc_hash = (uint64_t)pc_ ^ ((uint64_t)pc_ >> 5);
    int64_t provider = -1, slot = -1;
    for (int64_t t = tg->nt - 1; t >= 0; t--) {
        uint64_t h = history & tg->masks[t];
        int64_t index = (int64_t)(((uint64_t)pc_ ^ fold_u(h, 10)
                                   ^ (uint64_t)(t * 0x9E37)) % (uint64_t)tg->te);
        int64_t k = t * tg->te + index;
        if (tg->present[k]) {
            int64_t tag = (int64_t)((pc_hash ^ fold_u(h, 7)
                                     ^ (uint64_t)(t * 0x1F3)) & (uint64_t)tg->tag_mask);
            if (tg->tags[k] == tag) {
                provider = t;
                slot = k;
                break;
            }
        }
    }
    int predicted;
    if (provider >= 0) {
        predicted = tg->ctr[slot] >= 0;
        int64_t c = tg->ctr[slot] + (taken ? 1 : -1);
        if (c > 3) c = 3;
        if (c < -4) c = -4;
        tg->ctr[slot] = c;
        if (predicted == taken) {
            if (tg->useful[slot] < 3) tg->useful[slot]++;
        } else {
            if (tg->useful[slot] > 0) tg->useful[slot]--;
        }
    } else {
        predicted = tg->base[pc_ % tg->base_n] >= tg->base_thresh;
    }
    {   /* base.update */
        int64_t idx = pc_ % tg->base_n;
        int64_t c = tg->base[idx];
        if (taken) { if (c < tg->base_max) c++; }
        else { if (c > 0) c--; }
        tg->base[idx] = c;
    }
    if (predicted != taken) {
        int64_t start = provider >= 0 ? provider + 1 : 0;
        for (int64_t t = start; t < tg->nt; t++) {
            uint64_t h = history & tg->masks[t];
            int64_t index = (int64_t)(((uint64_t)pc_ ^ fold_u(h, 10)
                                       ^ (uint64_t)(t * 0x9E37)) % (uint64_t)tg->te);
            int64_t k = t * tg->te + index;
            if (!tg->present[k] || tg->useful[k] == 0) {
                tg->present[k] = 1;
                tg->tags[k] = (int64_t)((pc_hash ^ fold_u(h, 7)
                                         ^ (uint64_t)(t * 0x1F3)) & (uint64_t)tg->tag_mask);
                tg->ctr[k] = taken ? 0 : -1;
                tg->useful[k] = 0;
                break;
            }
        }
    }
    tg->hist[0] = (history << 1) | (uint64_t)(taken != 0);
    return predicted;
}

typedef struct {
    int64_t *tag, *target, *use, *count;
    int64_t sets, assoc;
} btb_t;

static inline int
btb_contains(btb_t *b, int64_t pc_)
{
    int64_t s = pc_ % b->sets, tag = pc_ / b->sets;
    int64_t base = s * b->assoc, c = b->count[s];
    for (int64_t k = 0; k < c; k++)
        if (b->tag[base + k] == tag)
            return 1;
    return 0;
}

/* Mirrors BranchTargetBuffer.update: insertion-order sets, update of an
 * existing way keeps its position, victim = first way with minimal use. */
static void
btb_update(btb_t *b, int64_t pc_, int64_t target, int64_t now)
{
    int64_t s = pc_ % b->sets, tag = pc_ / b->sets;
    int64_t base = s * b->assoc, c = b->count[s];
    for (int64_t k = 0; k < c; k++) {
        if (b->tag[base + k] == tag) {
            b->target[base + k] = target;
            b->use[base + k] = now;
            return;
        }
    }
    if (c >= b->assoc) {
        int64_t victim = 0;
        for (int64_t k = 1; k < c; k++)
            if (b->use[base + k] < b->use[base + victim])
                victim = k;
        for (int64_t k = victim; k < c - 1; k++) {
            b->tag[base + k] = b->tag[base + k + 1];
            b->target[base + k] = b->target[base + k + 1];
            b->use[base + k] = b->use[base + k + 1];
        }
        c--;
    }
    b->tag[base + c] = tag;
    b->target[base + c] = target;
    b->use[base + c] = now;
    b->count[s] = c + 1;
}

typedef struct {
    int64_t *stack;
    int64_t *st;    /* [len, pushes, pops, overflows, underflows] */
    int64_t depth;
} ras_t;

static inline void
ras_push(ras_t *r, int64_t addr)
{
    r->st[1]++;
    int64_t len = r->st[0];
    if (len >= r->depth) {
        r->st[3]++;
        memmove(r->stack, r->stack + 1, (size_t)(len - 1) * sizeof(int64_t));
        len--;
    }
    r->stack[len++] = addr;
    r->st[0] = len;
}

static inline int
ras_pop(ras_t *r, int64_t *out)
{
    r->st[2]++;
    int64_t len = r->st[0];
    if (len == 0) {
        r->st[4]++;
        return 0;
    }
    *out = r->stack[len - 1];
    r->st[0] = len - 1;
    return 1;
}

typedef struct { double free_at; int64_t index; } unit_t;

static inline double
heap_reserve(unit_t *heap, int count, double earliest, double busy_for)
{
    double free_at = heap[0].free_at;
    double start = free_at > earliest ? free_at : earliest;
    double nf = start + busy_for;
    int64_t ni = heap[0].index;
    int pos = 0;
    for (;;) {
        int child = 2 * pos + 1;
        if (child >= count)
            break;
        int right = child + 1;
        if (right < count &&
            (heap[right].free_at < heap[child].free_at ||
             (heap[right].free_at == heap[child].free_at &&
              heap[right].index < heap[child].index)))
            child = right;
        if (heap[child].free_at < nf ||
            (heap[child].free_at == nf && heap[child].index < ni)) {
            heap[pos] = heap[child];
            pos = child;
        } else
            break;
    }
    heap[pos].free_at = nf;
    heap[pos].index = ni;
    return start;
}

static inline int
in_sorted(const int64_t *a, int64_t count, int64_t x)
{
    int64_t lo = 0, hi = count;
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (a[mid] < x)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo < count && a[lo] == x;
}

static int
get_buffer(PyObject *dict, const char *key, Py_buffer *view, void **ptr)
{
    PyObject *obj = PyDict_GetItemString(dict, key);
    if (obj == NULL) {
        PyErr_Format(PyExc_KeyError, "missing buffer %s", key);
        return -1;
    }
    if (PyObject_GetBuffer(obj, view, PyBUF_SIMPLE) < 0)
        return -1;
    *ptr = view->buf;
    return 0;
}

static double
get_float(PyObject *dict, const char *key, int *err)
{
    PyObject *obj = PyDict_GetItemString(dict, key);
    if (obj == NULL) {
        PyErr_Format(PyExc_KeyError, "missing scalar %s", key);
        *err = 1;
        return 0.0;
    }
    double v = PyFloat_AsDouble(obj);
    if (v == -1.0 && PyErr_Occurred())
        *err = 1;
    return v;
}

static int64_t
get_int(PyObject *dict, const char *key, int *err)
{
    PyObject *obj = PyDict_GetItemString(dict, key);
    if (obj == NULL) {
        PyErr_Format(PyExc_KeyError, "missing scalar %s", key);
        *err = 1;
        return 0;
    }
    int64_t v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        *err = 1;
    return v;
}

/* Optional callback: missing key or None -> NULL (feature disabled). */
static PyObject *
get_callback(PyObject *dict, const char *key)
{
    PyObject *obj = PyDict_GetItemString(dict, key);
    if (obj == NULL || obj == Py_None)
        return NULL;
    return obj;
}

static PyObject *
run_tick_loop(PyObject *self, PyObject *args)
{
    PyObject *spec;
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &spec))
        return NULL;

    int err = 0;
    int64_t n = get_int(spec, "n", &err);
    double start_cycle = get_float(spec, "start_cycle", &err);
    double fetch_inc = get_float(spec, "fetch_inc", &err);
    double dispatch_inc = get_float(spec, "dispatch_inc", &err);
    double commit_inc = get_float(spec, "commit_inc", &err);
    double frontend_latency = get_float(spec, "frontend_latency", &err);
    double vmp = get_float(spec, "value_mispredict_penalty", &err);
    int64_t fetch_buffer_entries = get_int(spec, "fetch_buffer_entries", &err);
    int64_t rob_entries = get_int(spec, "rob_entries", &err);
    int64_t lsq_entries = get_int(spec, "lsq_entries", &err);
    int64_t block_bytes = get_int(spec, "block_bytes", &err);
    int64_t num_int = get_int(spec, "num_int_alus", &err);
    int64_t num_mem = get_int(spec, "num_mem_ports", &err);
    int64_t num_fp = get_int(spec, "num_fp_units", &err);
    int64_t num_regs = get_int(spec, "num_regs", &err);
    int64_t hist_capacity = get_int(spec, "hist_capacity", &err);
    int64_t hist_sample = get_int(spec, "hist_sample", &err);
    int64_t sb_enable = get_int(spec, "sb_enable", &err);
    int64_t fetch_gate = get_int(spec, "fetch_gate", &err);
    int64_t commit_filter = get_int(spec, "commit_filter", &err);
    int64_t commit_mask = get_int(spec, "commit_mask", &err);
    int64_t n_vt_seqs = get_int(spec, "n_vt_seqs", &err);
    int64_t n_commit_pcs = get_int(spec, "n_commit_pcs", &err);
    int64_t ctrl_native = get_int(spec, "ctrl_native", &err);
    double bmp = get_float(spec, "branch_mispredict_penalty", &err);
    tage_t tg = {0};
    btb_t btb = {0};
    ras_t ras = {0};
    tg.base_n = get_int(spec, "tage_base_n", &err);
    tg.base_thresh = get_int(spec, "tage_base_thresh", &err);
    tg.base_max = get_int(spec, "tage_base_max", &err);
    tg.nt = get_int(spec, "tage_nt", &err);
    tg.te = get_int(spec, "tage_te", &err);
    tg.tag_mask = get_int(spec, "tage_tag_mask", &err);
    btb.sets = get_int(spec, "btb_sets", &err);
    btb.assoc = get_int(spec, "btb_assoc", &err);
    ras.depth = get_int(spec, "ras_depth", &err);
    if (err)
        return NULL;

    Py_buffer v_ba = {0}, v_flags = {0}, v_ea = {0}, v_lat = {0}, v_dst = {0};
    Py_buffer v_srcs = {0}, v_soff = {0}, v_ft = {0}, v_dt = {0}, v_ct = {0};
    Py_buffer v_cnt = {0}, v_hist = {0}, v_comm = {0};
    Py_buffer v_sbd = {0}, v_seq = {0}, v_pc = {0}, v_vt = {0}, v_cpc = {0};
    Py_buffer v_nxt = {0}, v_tb = {0}, v_tp = {0}, v_tt = {0}, v_tc = {0};
    Py_buffer v_tu = {0}, v_th = {0}, v_tm = {0};
    Py_buffer v_bt = {0}, v_bg = {0}, v_bu = {0}, v_bc = {0};
    Py_buffer v_rs = {0}, v_rt = {0};
    int64_t *ba = NULL, *flags = NULL, *ea = NULL, *dst = NULL;
    int64_t *srcs = NULL, *soff = NULL, *counters = NULL, *hist = NULL;
    int64_t *sb_dst = NULL, *seq = NULL, *pc = NULL, *nxt = NULL;
    int64_t *vt_seqs = NULL, *commit_pcs = NULL;
    double *lat = NULL, *fetch_times = NULL, *dispatch_times = NULL;
    double *commit_times = NULL, *comm = NULL;
    unit_t *int_heap = NULL, *mem_heap = NULL, *fp_heap = NULL;
    double *reg_ready = NULL;
    int64_t *lsq_ring = NULL;
    uint8_t *validated = NULL;
    PyObject *ret = NULL;

    if (get_buffer(spec, "ba", &v_ba, (void **)&ba) < 0 ||
        get_buffer(spec, "flags", &v_flags, (void **)&flags) < 0 ||
        get_buffer(spec, "ea", &v_ea, (void **)&ea) < 0 ||
        get_buffer(spec, "lat", &v_lat, (void **)&lat) < 0 ||
        get_buffer(spec, "dst", &v_dst, (void **)&dst) < 0 ||
        get_buffer(spec, "srcs", &v_srcs, (void **)&srcs) < 0 ||
        get_buffer(spec, "srcs_off", &v_soff, (void **)&soff) < 0 ||
        get_buffer(spec, "sb_dst", &v_sbd, (void **)&sb_dst) < 0 ||
        get_buffer(spec, "seq", &v_seq, (void **)&seq) < 0 ||
        get_buffer(spec, "pc", &v_pc, (void **)&pc) < 0 ||
        get_buffer(spec, "vt_seqs", &v_vt, (void **)&vt_seqs) < 0 ||
        get_buffer(spec, "commit_pcs", &v_cpc, (void **)&commit_pcs) < 0 ||
        get_buffer(spec, "fetch_times", &v_ft, (void **)&fetch_times) < 0 ||
        get_buffer(spec, "dispatch_times", &v_dt, (void **)&dispatch_times) < 0 ||
        get_buffer(spec, "commit_times", &v_ct, (void **)&commit_times) < 0 ||
        get_buffer(spec, "counters", &v_cnt, (void **)&counters) < 0 ||
        get_buffer(spec, "hist", &v_hist, (void **)&hist) < 0 ||
        get_buffer(spec, "comm", &v_comm, (void **)&comm) < 0 ||
        get_buffer(spec, "nxt", &v_nxt, (void **)&nxt) < 0 ||
        get_buffer(spec, "tage_base", &v_tb, (void **)&tg.base) < 0 ||
        get_buffer(spec, "tage_present", &v_tp, (void **)&tg.present) < 0 ||
        get_buffer(spec, "tage_tags", &v_tt, (void **)&tg.tags) < 0 ||
        get_buffer(spec, "tage_ctr", &v_tc, (void **)&tg.ctr) < 0 ||
        get_buffer(spec, "tage_useful", &v_tu, (void **)&tg.useful) < 0 ||
        get_buffer(spec, "tage_hist", &v_th, (void **)&tg.hist) < 0 ||
        get_buffer(spec, "tage_masks", &v_tm, (void **)&tg.masks) < 0 ||
        get_buffer(spec, "btb_tag", &v_bt, (void **)&btb.tag) < 0 ||
        get_buffer(spec, "btb_target", &v_bg, (void **)&btb.target) < 0 ||
        get_buffer(spec, "btb_use", &v_bu, (void **)&btb.use) < 0 ||
        get_buffer(spec, "btb_count", &v_bc, (void **)&btb.count) < 0 ||
        get_buffer(spec, "ras_stack", &v_rs, (void **)&ras.stack) < 0 ||
        get_buffer(spec, "ras_state", &v_rt, (void **)&ras.st) < 0)
        goto done;

    PyObject *cb_icache = get_callback(spec, "cb_icache");
    PyObject *cb_load = get_callback(spec, "cb_load");
    PyObject *cb_store = get_callback(spec, "cb_store");
    PyObject *cb_control = get_callback(spec, "cb_control");
    PyObject *cb_branch_hint = get_callback(spec, "cb_branch_hint");
    PyObject *cb_on_fetch = get_callback(spec, "cb_on_fetch");
    PyObject *cb_on_commit = get_callback(spec, "cb_on_commit");
    PyObject *cb_value_hint = get_callback(spec, "cb_value_hint");
    PyObject *cb_hint_miss = get_callback(spec, "cb_hint_miss");
    PyObject *cb_redirect = get_callback(spec, "cb_redirect");

    if (num_int < 1) num_int = 1;
    if (num_mem < 1) num_mem = 1;
    if (num_fp < 1) num_fp = 1;
    int_heap = PyMem_Malloc(sizeof(unit_t) * num_int);
    mem_heap = PyMem_Malloc(sizeof(unit_t) * num_mem);
    fp_heap = PyMem_Malloc(sizeof(unit_t) * num_fp);
    reg_ready = PyMem_Malloc(sizeof(double) * (num_regs > 0 ? num_regs : 1));
    lsq_ring = PyMem_Malloc(sizeof(int64_t) * (lsq_entries > 0 ? lsq_entries : 1));
    validated = PyMem_Malloc(num_regs > 0 ? (size_t)num_regs : 1);
    if (!int_heap || !mem_heap || !fp_heap || !reg_ready || !lsq_ring ||
        !validated) {
        PyErr_NoMemory();
        goto done;
    }
    for (int64_t k = 0; k < num_int; k++) { int_heap[k].free_at = 0.0; int_heap[k].index = k; }
    for (int64_t k = 0; k < num_mem; k++) { mem_heap[k].free_at = 0.0; mem_heap[k].index = k; }
    for (int64_t k = 0; k < num_fp; k++) { fp_heap[k].free_at = 0.0; fp_heap[k].index = k; }
    for (int64_t k = 0; k < num_regs; k++) reg_ready[k] = start_cycle;
    memset(validated, 0, num_regs > 0 ? (size_t)num_regs : 1);

    double fetch_cursor = start_cycle;
    double fetch_redirect_at = start_cycle;
    double prev_dispatch = start_cycle;
    double prev_commit = start_cycle;
    int64_t current_block = -1;
    int have_block = 0;
    double block_ready = start_cycle;
    int64_t mem_count = 0;
    int64_t fetch_bound = 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t f = flags[i];

        /* ---------------- fetch ---------------- */
        double fetch_time =
            fetch_cursor > fetch_redirect_at ? fetch_cursor : fetch_redirect_at;
        if (i >= fetch_buffer_entries) {
            double fb_gate = dispatch_times[i - fetch_buffer_entries];
            if (fb_gate > fetch_time)
                fetch_time = fb_gate;
        }
        int64_t byte_address = ba[i];
        int64_t block = byte_address / block_bytes;
        if (!have_block || block != current_block) {
            comm[B_I] = (double)i;
            comm[B_T0] = fetch_time;
            PyObject *r = PyObject_CallNoArgs(cb_icache);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            counters[C_L1I_ACC]++;
            if (comm[B_OUT1] != 0.0)
                counters[C_L1I_MISS]++;
            block_ready = comm[B_OUT0];
            current_block = block;
            have_block = 1;
        }
        if (block_ready > fetch_time)
            fetch_time = block_ready;

        int hint_present = 0, hint_correct = 0, hint_has_target = 0;
        if ((f & F_BRANCH) && cb_branch_hint != NULL) {
            comm[B_I] = (double)i;
            comm[B_T0] = fetch_time;
            PyObject *r = PyObject_CallNoArgs(cb_branch_hint);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            fetch_time = comm[B_OUT0];
            int64_t h = (int64_t)comm[B_OUT1];
            hint_present = h & 1;
            hint_correct = (h & 2) != 0;
            hint_has_target = (h & 4) != 0;
        }

        fetch_times[i] = fetch_time;
        fetch_cursor = fetch_time + fetch_inc;
        /* Gated hooks fire for every branch, and for non-branches only once
         * fetch reaches the declared next-due cycle (a skipped call could
         * only have been a no-op — see hookspec.CompiledHookSpec). */
        if (cb_on_fetch != NULL &&
            (!fetch_gate || (f & F_BRANCH) || fetch_time >= comm[B_DUE])) {
            comm[B_I] = (double)i;
            comm[B_T0] = fetch_time;
            PyObject *r = PyObject_CallNoArgs(cb_on_fetch);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
        }

        /* ---------------- dispatch ---------------- */
        double dispatch_time = fetch_time + frontend_latency;
        double lane_gate = prev_dispatch + dispatch_inc;
        if (lane_gate > dispatch_time)
            dispatch_time = lane_gate;
        if (i >= rob_entries) {
            double rob_gate = commit_times[i - rob_entries];
            if (rob_gate > dispatch_time)
                dispatch_time = rob_gate;
        }
        if (f & F_MEM) {
            if (mem_count >= lsq_entries) {
                double lsq_gate = commit_times[lsq_ring[mem_count % lsq_entries]];
                if (lsq_gate > dispatch_time)
                    dispatch_time = lsq_gate;
            }
            lsq_ring[mem_count % lsq_entries] = i;
            mem_count++;
        }
        dispatch_times[i] = dispatch_time;
        if (dispatch_time - fetch_time <= frontend_latency + 1e-9)
            fetch_bound++;
        prev_dispatch = dispatch_time;
        counters[C_DECODED]++;

        /* ---------------- value reuse ---------------- */
        int mode = 0;
        if (sb_enable) {
            /* Split protocol: the Python side delivers predictions (RNG,
             * SIF disable, FQ traffic) only for declared target seqs; the
             * validation scoreboard — which the reference runs for *every*
             * instruction — lives here.  Mirrors
             * dla.value_reuse.ValidationScoreboard.process_code. */
            int has_pred = 0, correct = 0;
            double available = 0.0;
            if (in_sorted(vt_seqs, n_vt_seqs, seq[i])) {
                comm[B_I] = (double)i;
                comm[B_T0] = dispatch_time;
                PyObject *r = PyObject_CallNoArgs(cb_value_hint);
                if (r == NULL)
                    goto done;
                Py_DECREF(r);
                if (comm[B_OUT0] != 0.0) {
                    has_pred = 1;
                    available = comm[B_OUT1];
                    correct = comm[B_OUT2] != 0.0;
                }
            }
            int skippable = (f & F_SKIPPABLE) != 0;
            int skip = 0;
            int64_t s0 = soff[i], s1 = soff[i + 1];
            if (has_pred && skippable && s1 > s0) {
                skip = 1;
                for (int64_t s = s0; s < s1; s++)
                    if (!validated[srcs[s]]) { skip = 0; break; }
                if (skip)
                    counters[C_SB_SKIP]++;
                else
                    counters[C_SB_VALID]++;
            } else if (has_pred) {
                counters[C_SB_VALID]++;
            }
            if (sb_dst[i] >= 0)
                validated[sb_dst[i]] = (has_pred && skippable) ? 1 : 0;
            if (has_pred && available <= dispatch_time)
                mode = (skip && correct) ? 1 : (correct ? 2 : 3);
        } else if (cb_value_hint != NULL) {
            comm[B_I] = (double)i;
            comm[B_T0] = dispatch_time;
            PyObject *r = PyObject_CallNoArgs(cb_value_hint);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            mode = (int)comm[B_OUT0];
        }

        /* ---------------- issue / execute ---------------- */
        double ready = dispatch_time + 1.0;
        for (int64_t s = soff[i]; s < soff[i + 1]; s++) {
            double src_ready = reg_ready[srcs[s]];
            if (src_ready > ready)
                ready = src_ready;
        }

        int executed = 1;
        double complete;
        if (mode == 1) {
            complete = dispatch_time + 1.0;
            executed = 0;
            counters[C_VALID_SKIP]++;
        } else if (f & F_MEM) {
            double issue = heap_reserve(mem_heap, (int)num_mem, ready, 1.0);
            if (f & F_LOAD) {
                comm[B_I] = (double)i;
                comm[B_T0] = issue;
                PyObject *r = PyObject_CallNoArgs(cb_load);
                if (r == NULL)
                    goto done;
                Py_DECREF(r);
                complete = comm[B_OUT0];
                int64_t aflags = (int64_t)comm[B_OUT1];
                counters[C_L1D_ACC]++;
                if (aflags & 1) {
                    counters[C_L1D_MISS]++;
                    if (aflags & 2)
                        counters[C_L2_MISS]++;
                }
                if (aflags & 4)
                    counters[C_DRAM]++;
            } else {
                complete = issue + 1.0;
            }
        } else {
            double latency = lat[i];
            double issue;
            if (f & F_FP)
                issue = heap_reserve(fp_heap, (int)num_fp, ready, latency);
            else
                issue = heap_reserve(int_heap, (int)num_int, ready, 1.0);
            complete = issue + latency;
        }

        if (mode >= 2) {
            counters[C_VP_USED]++;
            if (mode == 2) {
                if (f & F_WRITES)
                    reg_ready[dst[i]] = dispatch_time + 1.0;
            } else {
                counters[C_VP_MISS]++;
                complete += vmp;
                if (f & F_WRITES)
                    reg_ready[dst[i]] = complete;
            }
        } else {
            if (f & F_WRITES)
                reg_ready[dst[i]] = mode == 1 ? dispatch_time + 1.0 : complete;
        }

        if (executed)
            counters[C_EXECUTED]++;

        /* ---------------- control flow ---------------- */
        if ((f & F_CONTROL) && ctrl_native) {
            /* Native transcription of OutOfOrderCore._handle_control;
             * Python is re-entered only for the rare events that touch
             * model state it owns (hint-mispredict hooks, wrong-path
             * cache pollution on a redirect). */
            double redirect = 0.0;
            int have_redirect = 0;
            int64_t pc_ = pc[i];
            int tk = (f & F_TAKEN) != 0;
            if (f & F_BRANCH) {
                counters[C_BRANCHES]++;
                if (hint_present) {
                    if (hint_correct) {
                        if (tk && !hint_has_target && !btb_contains(&btb, pc_)) {
                            counters[C_BTB_MISS]++;
                            redirect = fetch_time + 3.0;
                            have_redirect = 1;
                        }
                    } else {
                        counters[C_BR_MISPRED]++;
                        counters[C_HINT_MISPRED]++;
                        if (cb_hint_miss != NULL) {
                            comm[B_I] = (double)i;
                            comm[B_T0] = complete;
                            PyObject *r = PyObject_CallNoArgs(cb_hint_miss);
                            if (r == NULL)
                                goto done;
                            Py_DECREF(r);
                        }
                        redirect = complete + bmp;
                        have_redirect = 1;
                    }
                } else {
                    int predicted = tage_predict_update(&tg, pc_, tk);
                    if (predicted != tk) {
                        counters[C_BR_MISPRED]++;
                        redirect = complete + bmp;
                        have_redirect = 1;
                    } else if (tk) {
                        if (!btb_contains(&btb, pc_)) {
                            counters[C_BTB_MISS]++;
                            btb_update(&btb, pc_, nxt[i], (int64_t)complete);
                            redirect = fetch_time + 3.0;
                            have_redirect = 1;
                        } else {
                            btb_update(&btb, pc_, nxt[i], (int64_t)complete);
                        }
                    }
                }
            } else if (f & F_CALL) {
                ras_push(&ras, pc_ + 1);
                if (!btb_contains(&btb, pc_)) {
                    counters[C_BTB_MISS]++;
                    btb_update(&btb, pc_, nxt[i], (int64_t)complete);
                    redirect = fetch_time + 3.0;
                    have_redirect = 1;
                }
            } else if (f & F_RET) {
                int64_t predicted_target = 0;
                int have = ras_pop(&ras, &predicted_target);
                if (!have || predicted_target != nxt[i]) {
                    counters[C_BR_MISPRED]++;
                    redirect = complete + bmp;
                    have_redirect = 1;
                }
            } else {
                if (!btb_contains(&btb, pc_)) {
                    counters[C_BTB_MISS]++;
                    btb_update(&btb, pc_, nxt[i], (int64_t)complete);
                    redirect = fetch_time + 2.0;
                    have_redirect = 1;
                }
            }
            if (have_redirect) {
                if (redirect > fetch_redirect_at)
                    fetch_redirect_at = redirect;
                if (cb_redirect != NULL) {
                    comm[B_I] = (double)i;
                    comm[B_T0] = fetch_time;
                    PyObject *r = PyObject_CallNoArgs(cb_redirect);
                    if (r == NULL)
                        goto done;
                    Py_DECREF(r);
                }
            }
        } else if (f & F_CONTROL) {
            comm[B_I] = (double)i;
            comm[B_T0] = fetch_time;
            comm[B_T1] = complete;
            PyObject *r = PyObject_CallNoArgs(cb_control);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            double redirect = comm[B_OUT0];
            if (!isnan(redirect) && redirect > fetch_redirect_at)
                fetch_redirect_at = redirect;
        }

        /* ---------------- commit ---------------- */
        double commit_time = prev_commit + commit_inc;
        if (complete > commit_time)
            commit_time = complete;
        commit_times[i] = commit_time;
        prev_commit = commit_time;
        counters[C_COMMITTED]++;

        if (f & F_STORE) {
            comm[B_I] = (double)i;
            comm[B_T0] = commit_time;
            PyObject *r = PyObject_CallNoArgs(cb_store);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
            int64_t aflags = (int64_t)comm[B_OUT1];
            counters[C_L1D_ACC]++;
            if (aflags & 1) {
                counters[C_L1D_MISS]++;
                if (aflags & 2)
                    counters[C_L2_MISS]++;
            }
            if (aflags & 4)
                counters[C_DRAM]++;
        }

        if (cb_on_commit != NULL &&
            (!commit_filter || (f & commit_mask) ||
             (n_commit_pcs && in_sorted(commit_pcs, n_commit_pcs, pc[i])))) {
            comm[B_I] = (double)i;
            comm[B_T0] = commit_time;
            PyObject *r = PyObject_CallNoArgs(cb_on_commit);
            if (r == NULL)
                goto done;
            Py_DECREF(r);
        }
    }

    counters[C_FETCH_BOUND] = fetch_bound;
    counters[C_TICKS] = n;

    /* ---------------- fetch-queue histogram ---------------- */
    for (int64_t i = 0; i < n; i += hist_sample) {
        double x = dispatch_times[i];
        int64_t lo = i, hi = n;
        while (lo < hi) {
            int64_t mid = (lo + hi) / 2;
            if (x < fetch_times[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        int64_t occupancy = lo - i - 1;
        if (occupancy < 0)
            occupancy = 0;
        if (occupancy > hist_capacity)
            occupancy = hist_capacity;
        hist[occupancy]++;
    }

    ret = Py_NewRef(Py_None);
done:
    PyMem_Free(int_heap);
    PyMem_Free(mem_heap);
    PyMem_Free(fp_heap);
    PyMem_Free(reg_ready);
    PyMem_Free(lsq_ring);
    PyMem_Free(validated);
    if (v_sbd.obj) PyBuffer_Release(&v_sbd);
    if (v_seq.obj) PyBuffer_Release(&v_seq);
    if (v_pc.obj) PyBuffer_Release(&v_pc);
    if (v_vt.obj) PyBuffer_Release(&v_vt);
    if (v_cpc.obj) PyBuffer_Release(&v_cpc);
    if (v_ba.obj) PyBuffer_Release(&v_ba);
    if (v_flags.obj) PyBuffer_Release(&v_flags);
    if (v_ea.obj) PyBuffer_Release(&v_ea);
    if (v_lat.obj) PyBuffer_Release(&v_lat);
    if (v_dst.obj) PyBuffer_Release(&v_dst);
    if (v_srcs.obj) PyBuffer_Release(&v_srcs);
    if (v_soff.obj) PyBuffer_Release(&v_soff);
    if (v_ft.obj) PyBuffer_Release(&v_ft);
    if (v_dt.obj) PyBuffer_Release(&v_dt);
    if (v_ct.obj) PyBuffer_Release(&v_ct);
    if (v_cnt.obj) PyBuffer_Release(&v_cnt);
    if (v_hist.obj) PyBuffer_Release(&v_hist);
    if (v_comm.obj) PyBuffer_Release(&v_comm);
    if (v_nxt.obj) PyBuffer_Release(&v_nxt);
    if (v_tb.obj) PyBuffer_Release(&v_tb);
    if (v_tp.obj) PyBuffer_Release(&v_tp);
    if (v_tt.obj) PyBuffer_Release(&v_tt);
    if (v_tc.obj) PyBuffer_Release(&v_tc);
    if (v_tu.obj) PyBuffer_Release(&v_tu);
    if (v_th.obj) PyBuffer_Release(&v_th);
    if (v_tm.obj) PyBuffer_Release(&v_tm);
    if (v_bt.obj) PyBuffer_Release(&v_bt);
    if (v_bg.obj) PyBuffer_Release(&v_bg);
    if (v_bu.obj) PyBuffer_Release(&v_bu);
    if (v_bc.obj) PyBuffer_Release(&v_bc);
    if (v_rs.obj) PyBuffer_Release(&v_rs);
    if (v_rt.obj) PyBuffer_Release(&v_rt);
    return ret;
}

/* ------------------------------------------------------------------ */
/* Trace decoding: the flattening loop of repro.core.compile.decoded.   */
/*                                                                      */
/* Semantically identical to the Python loop in decode_trace(): per     */
/* entry, resolve the per-StaticInst row from the id-keyed memo (the    */
/* callback decodes + retains on miss and returns the row tuple), then  */
/* fill the flat arrays.  Returns a tuple of bytes objects the Python   */
/* side wraps into array('q')/array('d') buffers.                       */
/* ------------------------------------------------------------------ */
static PyObject *
decode_trace_flat(PyObject *self, PyObject *args)
{
    PyObject *entries, *rows, *decode_cb;
    if (!PyArg_ParseTuple(args, "O!O!O", &PyList_Type, &entries,
                          &PyDict_Type, &rows, &decode_cb))
        return NULL;

    Py_ssize_t n = PyList_GET_SIZE(entries);
    int64_t *ba = NULL, *flags = NULL, *ea = NULL, *dst = NULL;
    int64_t *sb_dst = NULL, *seq = NULL, *pcs = NULL, *nxt = NULL;
    int64_t *srcs = NULL, *srcs_off = NULL;
    double *lat = NULL;
    PyObject *ret = NULL;
    PyObject *s_static = NULL, *s_taken = NULL, *s_ea = NULL;
    PyObject *s_next_pc = NULL, *s_seq = NULL;
    Py_ssize_t srcs_len = 0, srcs_cap = 0;
    int64_t max_reg = 0;

    ba = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    flags = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    ea = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    dst = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    sb_dst = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    seq = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    pcs = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    nxt = (int64_t *)calloc(n ? n : 1, sizeof(int64_t));
    srcs_off = (int64_t *)calloc(n + 1, sizeof(int64_t));
    lat = (double *)calloc(n ? n : 1, sizeof(double));
    if (!ba || !flags || !ea || !dst || !sb_dst || !seq || !pcs || !nxt ||
        !srcs_off || !lat) {
        PyErr_NoMemory();
        goto done;
    }
    s_static = PyUnicode_InternFromString("static");
    s_taken = PyUnicode_InternFromString("taken");
    s_ea = PyUnicode_InternFromString("effective_address");
    s_next_pc = PyUnicode_InternFromString("next_pc");
    s_seq = PyUnicode_InternFromString("seq");
    if (!s_static || !s_taken || !s_ea || !s_next_pc || !s_seq)
        goto done;

    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *entry = PyList_GET_ITEM(entries, i);
        PyObject *st = PyObject_GetAttr(entry, s_static);
        if (st == NULL)
            goto done;
        PyObject *key = PyLong_FromVoidPtr((void *)st);
        if (key == NULL) { Py_DECREF(st); goto done; }
        PyObject *row = PyDict_GetItemWithError(rows, key);  /* borrowed */
        Py_DECREF(key);
        PyObject *row_owned = NULL;
        if (row == NULL) {
            if (PyErr_Occurred()) { Py_DECREF(st); goto done; }
            row_owned = PyObject_CallFunctionObjArgs(decode_cb, st, NULL);
            Py_DECREF(st);
            if (row_owned == NULL)
                goto done;
            row = row_owned;
        } else {
            Py_DECREF(st);
        }
        if (!PyTuple_Check(row) || PyTuple_GET_SIZE(row) != 8) {
            Py_XDECREF(row_owned);
            PyErr_SetString(PyExc_TypeError, "bad decoded static row");
            goto done;
        }
        int err = 0;
        ba[i] = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 0));
        int64_t packed = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 1));
        lat[i] = PyFloat_AsDouble(PyTuple_GET_ITEM(row, 2));
        dst[i] = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 3));
        sb_dst[i] = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 4));
        PyObject *row_srcs = PyTuple_GET_ITEM(row, 5);
        pcs[i] = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 6));
        int64_t row_max = PyLong_AsLongLong(PyTuple_GET_ITEM(row, 7));
        if (PyErr_Occurred()) err = 1;

        PyObject *taken = err ? NULL : PyObject_GetAttr(entry, s_taken);
        if (taken == NULL) { Py_XDECREF(row_owned); goto done; }
        int truth = PyObject_IsTrue(taken);
        Py_DECREF(taken);
        if (truth < 0) { Py_XDECREF(row_owned); goto done; }
        flags[i] = packed | (truth ? F_TAKEN : 0);
        if (row_max > max_reg)
            max_reg = row_max;

        PyObject *addr = PyObject_GetAttr(entry, s_ea);
        if (addr == NULL) { Py_XDECREF(row_owned); goto done; }
        if (addr != Py_None)
            ea[i] = PyLong_AsLongLong(addr);
        Py_DECREF(addr);

        PyObject *npc = PyObject_GetAttr(entry, s_next_pc);
        if (npc == NULL) { Py_XDECREF(row_owned); goto done; }
        nxt[i] = PyLong_AsLongLong(npc);
        Py_DECREF(npc);

        PyObject *sq = PyObject_GetAttr(entry, s_seq);
        if (sq == NULL) { Py_XDECREF(row_owned); goto done; }
        seq[i] = (sq == Py_None) ? -1 : PyLong_AsLongLong(sq);
        Py_DECREF(sq);

        srcs_off[i] = srcs_len;
        if (PyTuple_Check(row_srcs)) {
            Py_ssize_t ns = PyTuple_GET_SIZE(row_srcs);
            if (srcs_len + ns > srcs_cap) {
                Py_ssize_t want = srcs_cap ? srcs_cap * 2 : 256;
                while (want < srcs_len + ns)
                    want *= 2;
                int64_t *grown = (int64_t *)realloc(srcs, want * sizeof(int64_t));
                if (grown == NULL) {
                    Py_XDECREF(row_owned);
                    PyErr_NoMemory();
                    goto done;
                }
                srcs = grown;
                srcs_cap = want;
            }
            for (Py_ssize_t k = 0; k < ns; k++)
                srcs[srcs_len++] = PyLong_AsLongLong(PyTuple_GET_ITEM(row_srcs, k));
        }
        Py_XDECREF(row_owned);
        if (PyErr_Occurred() || err)
            goto done;
    }
    srcs_off[n] = srcs_len;
    if (srcs_len == 0) {
        /* keep the buffer non-empty for PyObject_GetBuffer */
        if (srcs == NULL)
            srcs = (int64_t *)calloc(1, sizeof(int64_t));
        if (srcs == NULL) { PyErr_NoMemory(); goto done; }
        srcs[0] = 0;
        srcs_len = 1;
    }

    ret = Py_BuildValue(
        "(y#y#y#y#y#y#y#y#y#y#y#L)",
        (char *)ba, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)flags, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)ea, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)lat, (Py_ssize_t)(n * sizeof(double)),
        (char *)dst, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)sb_dst, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)srcs, (Py_ssize_t)(srcs_len * sizeof(int64_t)),
        (char *)srcs_off, (Py_ssize_t)((n + 1) * sizeof(int64_t)),
        (char *)seq, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)pcs, (Py_ssize_t)(n * sizeof(int64_t)),
        (char *)nxt, (Py_ssize_t)(n * sizeof(int64_t)),
        (long long)(max_reg + 1));

done:
    free(ba); free(flags); free(ea); free(dst); free(sb_dst);
    free(seq); free(pcs); free(nxt); free(srcs); free(srcs_off); free(lat);
    Py_XDECREF(s_static); Py_XDECREF(s_taken); Py_XDECREF(s_ea);
    Py_XDECREF(s_next_pc); Py_XDECREF(s_seq);
    return ret;
}

static PyMethodDef methods[] = {
    {"run_tick_loop", run_tick_loop, METH_VARARGS,
     "Run the compiled per-instruction tick loop over a decoded trace."},
    {"decode_trace_flat", decode_trace_flat, METH_VARARGS,
     "Flatten a trace window into typed buffers (decode_trace fast path)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_repro_fastcore", NULL, -1, methods,
};

PyMODINIT_FUNC
PyInit__repro_fastcore(void)
{
    return PyModule_Create(&moduledef);
}
