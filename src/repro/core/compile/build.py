"""Compile-on-demand of the C tick kernel.

The kernel source (``kernel.c``) ships with the package; the first process
that needs it compiles a shared object with the system C compiler and
caches it under ``.repro_cache/compiled/`` keyed by the source fingerprint
and the interpreter's version/ABI, so every later process (and every later
run in this process) just loads the cached ``.so``.  Anything going wrong —
no compiler, missing headers, a failed compile, a failed import — degrades
silently to ``None`` and the interpreted reference loop in
:mod:`repro.core.pipeline` carries the run.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

#: Same root convention as :class:`repro.experiments.cache.ResultDiskCache`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

_MODULE_NAME = "_repro_fastcore"

#: Process-wide build outcome: unset / the loaded module / ``None`` (failed).
_kernel_state: dict = {}


def kernel_source_path() -> Path:
    return Path(__file__).resolve().parent / "kernel.c"


def kernel_fingerprint() -> str:
    """Content key for the compiled artifact: source + interpreter ABI."""
    digest = hashlib.sha256()
    digest.update(kernel_source_path().read_bytes())
    digest.update(sys.version.encode("utf-8"))
    digest.update((sysconfig.get_config_var("SOABI") or "").encode("utf-8"))
    return digest.hexdigest()[:24]


def _cache_dir() -> Path:
    root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
    return Path(root) / "compiled"


def _artifact_path() -> Path:
    return _cache_dir() / f"{_MODULE_NAME}-{kernel_fingerprint()}.so"


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile_locked(target: Path) -> bool:
    """Compile ``target``, letting exactly one process in a stampede build.

    Concurrent processes (a parallel campaign on a cold cache) would each
    spend hundreds of milliseconds compiling the identical artifact.  An
    ``O_EXCL`` lock file elects one builder; the others poll for the
    artifact.  The lock is advisory — on timeout (e.g. a killed builder left
    the lock behind) the waiter compiles anyway, which is merely redundant
    because the final ``os.replace`` is atomic.
    """
    import time

    target.parent.mkdir(parents=True, exist_ok=True)
    lock = target.with_suffix(".lock")
    try:
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if target.exists():
                return True
            if not lock.exists():
                break
            time.sleep(0.05)
        return target.exists() or _compile(target)
    except OSError:
        return _compile(target)
    try:
        os.close(fd)
        return _compile(target)
    finally:
        try:
            lock.unlink()
        except OSError:
            pass


def _compile(target: Path) -> bool:
    compiler = _find_compiler()
    if compiler is None:
        return False
    include = sysconfig.get_paths().get("include")
    if not include or not (Path(include) / "Python.h").exists():
        return False
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        suffix=".so", prefix=f".{target.stem}-", dir=str(target.parent)
    )
    os.close(fd)
    tmp = Path(tmp_name)
    command = [
        compiler, "-O2", "-shared", "-fPIC", f"-I{include}",
        str(kernel_source_path()), "-o", str(tmp),
    ]
    if sys.platform == "darwin":
        command[1:1] = ["-undefined", "dynamic_lookup"]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            return False
        os.replace(tmp, target)  # atomic: concurrent builders race benignly
        return True
    except (OSError, subprocess.SubprocessError):
        tmp.unlink(missing_ok=True)
        return False


def _load(path: Path):
    import importlib.util

    spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_kernel():
    """The compiled kernel module, building it on first use (or ``None``)."""
    if "module" in _kernel_state:
        return _kernel_state["module"]
    module = None
    try:
        artifact = _artifact_path()
        if not artifact.exists() and not _compile_locked(artifact):
            artifact = None
        if artifact is not None:
            module = _load(artifact)
    except Exception:
        module = None
    _kernel_state["module"] = module
    return module


def reset_kernel_cache() -> None:
    """Forget the process-wide build outcome (testing hook)."""
    _kernel_state.clear()
