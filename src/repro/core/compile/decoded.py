"""Flattened per-instruction metadata for the compiled tick loop.

``decode_trace`` turns a committed trace window into typed flat arrays (one
attribute chase per instruction *per process* instead of per simulation),
and :class:`DecodedTraceCache` memoizes the result by the entry list's
identity — the same id-keyed scheme :class:`repro.core.system.WarmupMemo`
uses, with strong references retained so ids can never be recycled.  The
experiment runners hand out one entries list per workload window, so every
simulation of a window after the first decodes nothing.

Decoding itself is two-level: every run-invariant attribute of a *static*
instruction (flags, latency, registers) is memoized per ``StaticInst``
object, which is shared by all of its dynamic occurrences — so even a
fresh entries list (a skeleton-filtered window, a segment slice) decodes
at one dict lookup per instruction rather than ten attribute chases.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.emulator.trace import DynamicInst
from repro.isa.instructions import FU_POOL_FP, Opcode

#: Decoded static flags (must match kernel.c).
F_BRANCH = 1
F_MEM = 2
F_LOAD = 4
F_STORE = 8
F_CONTROL = 16
F_FP = 32
F_WRITES = 64
#: Validation-scoreboard-skippable op class (see dla.value_reuse).
F_SKIPPABLE = 128
#: Dynamic taken bit (per entry, not per static).
F_TAKEN = 256
#: Unconditional-control subtypes for the kernel's native branch unit.
F_CALL = 512
F_RET = 1024


@dataclass
class DecodedTrace:
    """Typed flat arrays over one trace window (zero-copy C kernel inputs)."""

    n: int
    ba: array          # 'q' byte addresses
    flags: array       # 'q' F_* bit masks
    ea: array          # 'q' effective addresses (0 for non-memory ops)
    lat: array         # 'd' execution latencies
    dst: array         # 'q' destination registers (0 unless F_WRITES)
    sb_dst: array      # 'q' scoreboard destination (raw dst; -1 for None)
    srcs: array        # 'q' flattened source registers
    srcs_off: array    # 'q' per-instruction offsets into ``srcs`` (n + 1)
    seq: array         # 'q' dynamic trace seq numbers (-1 for None)
    pcs: array         # 'q' per-instruction PCs
    nxt: array         # 'q' dynamic next PCs (control-flow targets)
    num_regs: int      # dense register-file bound for the C scoreboard


_SKIPPABLE_CODES: Optional[frozenset] = None


def _skippable_codes() -> frozenset:
    # Deferred so importing this module never pulls in the DLA package;
    # the set itself is owned by the scoreboard it mirrors.
    global _SKIPPABLE_CODES
    if _SKIPPABLE_CODES is None:
        from repro.dla.value_reuse import ValidationScoreboard

        _SKIPPABLE_CODES = ValidationScoreboard._SKIPPABLE_CODES
    return _SKIPPABLE_CODES


#: Per-StaticInst decoded rows, id-keyed with strong refs retained (statics
#: are shared by every dynamic occurrence and every window over them).
_STATIC_ROWS: Dict[int, tuple] = {}
_STATIC_RETAIN: Dict[int, object] = {}
_STATIC_MAX = 1 << 16


def _decode_static(static) -> tuple:
    packed = 0
    if static.is_branch:
        packed |= F_BRANCH
    if static.is_memory:
        packed |= F_MEM
    if static.is_load:
        packed |= F_LOAD
    if static.is_store:
        packed |= F_STORE
    if static.is_control:
        packed |= F_CONTROL
        opcode = static.opcode
        if opcode is Opcode.CALL:
            packed |= F_CALL
        elif opcode is Opcode.RET:
            packed |= F_RET
    if static.fu_pool == FU_POOL_FP:
        packed |= F_FP
    if static.class_code in _skippable_codes():
        packed |= F_SKIPPABLE
    dst = 0
    max_reg = 0
    if static.writes_register:
        packed |= F_WRITES
        dst = static.dst
        max_reg = dst
    # The scoreboard keys on the *raw* destination: the zero register
    # participates in the validated set even though it never gates reads.
    sb_dst = static.dst if static.dst is not None else -1
    if sb_dst > max_reg:
        max_reg = sb_dst
    for src in static.srcs:
        if src > max_reg:
            max_reg = src
    return (static.byte_address, packed, static.latency_cycles, dst, sb_dst,
            static.srcs, static.pc, max_reg)


def _decode_static_row(static) -> tuple:
    """Decode + memoize one static's row (the C decoder's miss callback)."""
    row = _decode_static(static)
    rows = _STATIC_ROWS
    if len(rows) >= _STATIC_MAX:
        rows.clear()
        _STATIC_RETAIN.clear()
    rows[id(static)] = row
    _STATIC_RETAIN[id(static)] = static
    return row


def _decode_kernel():
    """The compiled kernel when it may carry decoding, else ``None``."""
    from repro.core.compile import fast_pipeline_enabled

    if not fast_pipeline_enabled():
        return None
    from repro.core.compile.build import load_kernel

    kernel = load_kernel()
    if kernel is not None and hasattr(kernel, "decode_trace_flat"):
        return kernel
    return None


def decode_trace(entries: Sequence[DynamicInst]) -> DecodedTrace:
    n = len(entries)
    if isinstance(entries, list):
        kernel = _decode_kernel()
        if kernel is not None:
            (b_ba, b_flags, b_ea, b_lat, b_dst, b_sb, b_srcs, b_off,
             b_seq, b_pcs, b_nxt, num_regs) = kernel.decode_trace_flat(
                entries, _STATIC_ROWS, _decode_static_row)
            return DecodedTrace(
                n=n, ba=array("q", b_ba), flags=array("q", b_flags),
                ea=array("q", b_ea), lat=array("d", b_lat),
                dst=array("q", b_dst), sb_dst=array("q", b_sb),
                srcs=array("q", b_srcs), srcs_off=array("q", b_off),
                seq=array("q", b_seq), pcs=array("q", b_pcs),
                nxt=array("q", b_nxt), num_regs=num_regs,
            )
    ba = array("q", bytes(8 * n))
    flags = array("q", bytes(8 * n))
    ea = array("q", bytes(8 * n))
    lat = array("d", bytes(8 * n))
    dst = array("q", bytes(8 * n))
    sb_dst = array("q", bytes(8 * n))
    srcs = array("q")
    srcs_off = array("q", bytes(8 * (n + 1)))
    seq = array("q", bytes(8 * n))
    pcs = array("q", bytes(8 * n))
    nxt = array("q", bytes(8 * n))
    max_reg = 0
    rows = _STATIC_ROWS
    for i, entry in enumerate(entries):
        static = entry.static
        token = id(static)
        row = rows.get(token)
        if row is None:
            row = _decode_static(static)
            if len(rows) >= _STATIC_MAX:
                rows.clear()
                _STATIC_RETAIN.clear()
            rows[token] = row
            _STATIC_RETAIN[token] = static
        ba[i], flags[i], lat[i], dst[i], sb_dst[i], row_srcs, pcs[i], row_max = row
        if entry.taken:
            flags[i] |= F_TAKEN
        if row_max > max_reg:
            max_reg = row_max
        address = entry.effective_address
        if address is not None:
            ea[i] = address
        nxt[i] = entry.next_pc
        entry_seq = entry.seq
        seq[i] = -1 if entry_seq is None else entry_seq
        srcs_off[i] = len(srcs)
        srcs.extend(row_srcs)
    srcs_off[n] = len(srcs)
    if not len(srcs):
        srcs.append(0)  # keep the buffer non-empty for PyObject_GetBuffer
    return DecodedTrace(
        n=n, ba=ba, flags=flags, ea=ea, lat=lat, dst=dst, sb_dst=sb_dst,
        srcs=srcs, srcs_off=srcs_off, seq=seq, pcs=pcs, nxt=nxt,
        num_regs=max_reg + 1,
    )


class DecodedTraceCache:
    """Bounded id-keyed memo of :class:`DecodedTrace` per entries list."""

    MAX_ENTRIES = 256

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self._decoded: Dict[int, DecodedTrace] = {}
        #: Strong references keeping id()-keyed entry lists alive.
        self._retained: Dict[int, Sequence[DynamicInst]] = {}
        self.max_entries = max_entries
        self.decodes = 0
        self.hits = 0

    def get(self, entries: Sequence[DynamicInst]) -> DecodedTrace:
        token = id(entries)
        decoded = self._decoded.get(token)
        if decoded is not None and len(entries) == decoded.n:
            self.hits += 1
            # LRU: re-insert so hot windows outlive one-shot lists (e.g.
            # the DLA look-ahead's per-simulation filtered skeletons).
            del self._decoded[token]
            self._decoded[token] = decoded
            return decoded
        decoded = decode_trace(entries)
        while len(self._decoded) >= self.max_entries:
            victim = next(iter(self._decoded))
            del self._decoded[victim]
            self._retained.pop(victim, None)
        self._decoded[token] = decoded
        self._retained[token] = entries
        self.decodes += 1
        return decoded

    def clear(self) -> None:
        self._decoded.clear()
        self._retained.clear()


#: Process-wide memo shared by every compiled run.
_DECODED = DecodedTraceCache()


def get_decoded(entries: Sequence[DynamicInst]) -> DecodedTrace:
    return _DECODED.get(entries)


def decoded_cache_stats() -> Dict[str, int]:
    return {"decodes": _DECODED.decodes, "hits": _DECODED.hits}
