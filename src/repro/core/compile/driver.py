"""Driver for the compiled tick loop.

``run_compiled`` marshals one run onto the C kernel: the decoded trace's
flat arrays go in as zero-copy buffers, and every model interaction the
kernel cannot perform itself — cache and TLB state, the branch predictor,
prefetcher training, DLA hooks — comes back out through small per-event
callbacks that communicate over a shared ``array('d')`` buffer (argument
marshalling through object calls would dominate otherwise).

Every callback body is a statement-for-statement transcription of the
corresponding block of :meth:`repro.core.pipeline.OutOfOrderCore.run`; the
golden equivalence suites pin the two paths together bit-for-bit.
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

from repro.branch.btb import BranchTargetBuffer
from repro.branch.predictors import TageLitePredictor
from repro.branch.ras import ReturnAddressStack
from repro.core.results import CoreResult
from repro.emulator.trace import DynamicInst

from repro.core.compile.decoded import get_decoded
from repro.core.compile.plan import SpecializationPlan, plan_run

#: Comm-buffer slots (must match kernel.c).
B_I, B_T0, B_T1, B_OUT0, B_OUT1, B_DUE, B_OUT2 = 0, 1, 2, 3, 4, 5, 6

#: Counter slots (must match kernel.c).
(C_L1I_ACC, C_L1I_MISS, C_L1D_ACC, C_L1D_MISS, C_L2_MISS, C_DRAM,
 C_DECODED, C_EXECUTED, C_COMMITTED, C_FETCH_BOUND,
 C_VALID_SKIP, C_VP_USED, C_VP_MISS, C_SB_SKIP, C_SB_VALID,
 C_BRANCHES, C_BR_MISPRED, C_HINT_MISPRED, C_BTB_MISS,
 C_TICKS, C_COUNT) = range(21)

_NAN = float("nan")
_EMPTY_Q = array("q", (0,))
_EMPTY_B = array("b", (0,))
_EMPTY_U = array("Q", (0,))


def run_compiled(kernel, core, entries: Sequence[DynamicInst], hooks,
                 start_cycle: float, collect_timings: bool
                 ) -> Optional[CoreResult]:
    """Run one simulation on the compiled kernel (``None`` when ineligible)."""
    plan = plan_run(core, hooks, collect_timings)
    if plan is None:
        return None

    cfg = core.config
    result = CoreResult(name=core.name)
    n = len(entries)
    if n == 0:
        return result

    decoded = get_decoded(entries)
    memory = core.memory
    ea = decoded.ea
    pcs = decoded.pcs
    flags = decoded.flags

    comm = array("d", bytes(8 * 8))
    fetch_times = array("d", bytes(8 * n))
    dispatch_times = array("d", bytes(8 * n))
    commit_times = array("d", bytes(8 * n))
    counters = array("q", bytes(8 * C_COUNT))
    hist_capacity = cfg.fetch_buffer_entries
    hist = array("q", bytes(8 * (hist_capacity + 1)))

    recent_load_addresses: list = []
    l1_pf = core.l1_prefetcher
    l2_pf = core.l2_prefetcher
    mem_prefetch = memory.prefetch
    handle_control = core._handle_control
    wrong_path_pollution = core._wrong_path_pollution
    access_data_fast = memory.access_data_fast
    access_inst_fast = memory.access_inst_fast

    # ---------------- instruction-side access ----------------
    ba = decoded.ba

    def cb_icache():
        ready, info = access_inst_fast(ba[int(comm[0])], int(comm[1]))
        comm[3] = ready
        comm[4] = info

    # ---------------- data-side access ----------------
    if plan.use_fast_access:
        def observe_prefetchers(pc, address, info, cycle):
            if l1_pf is not None:
                for request in l1_pf.observe(pc, address, not info & 1, cycle):
                    if mem_prefetch(request.address, cycle, level="l1") is None:
                        l1_pf.notify_drop(request)
            if l2_pf is not None and info & 1:
                for request in l2_pf.observe(pc, address, bool(info & 8), cycle):
                    if mem_prefetch(request.address, cycle,
                                    level=request.level) is None:
                        l2_pf.notify_drop(request)

        has_prefetchers = l1_pf is not None or l2_pf is not None

        def cb_load():
            i = int(comm[0])
            now = int(comm[1])
            address = ea[i]
            ready, info = access_data_fast(address, now, False)
            if has_prefetchers:
                observe_prefetchers(pcs[i], address, info, now)
            recent_load_addresses.append(address)
            if len(recent_load_addresses) > 16:
                del recent_load_addresses[0]
            comm[3] = ready
            comm[4] = info

        def cb_store():
            i = int(comm[0])
            address = ea[i]
            ready, info = access_data_fast(address, int(comm[1]), True)
            if has_prefetchers:
                observe_prefetchers(pcs[i], address, info, int(comm[1]))
            comm[4] = info
    else:
        # An on_memory_access hook observes real AccessResult objects, so
        # these variants go through the reference accessor.
        from repro.memory.hierarchy import AccessType

        memory_access = memory.access
        run_prefetchers = core._run_prefetchers
        has_prefetchers = l1_pf is not None or l2_pf is not None
        hook_on_memory = hooks.on_memory_access
        ACC_LOAD = AccessType.LOAD
        ACC_STORE = AccessType.STORE

        def cb_load():
            i = int(comm[0])
            issue = comm[1]
            address = ea[i]
            access = memory_access(address, int(issue), ACC_LOAD)
            if has_prefetchers:
                run_prefetchers(pcs[i], address, access, issue)
            recent_load_addresses.append(address)
            if len(recent_load_addresses) > 16:
                del recent_load_addresses[0]
            hook_on_memory(entries[i], access, issue)
            comm[3] = float(access.ready_cycle)
            comm[4] = (1 | (2 if access.supplied_by in ("l3", "dram") else 0)
                       | (4 if access.dram_access else 0)) if access.l1_miss \
                else (4 if access.dram_access else 0)

        def cb_store():
            i = int(comm[0])
            commit_time = comm[1]
            address = ea[i]
            access = memory_access(address, int(commit_time), ACC_STORE)
            if has_prefetchers:
                run_prefetchers(pcs[i], address, access, commit_time)
            hook_on_memory(entries[i], access, commit_time)
            comm[4] = (1 | (2 if access.supplied_by in ("l3", "dram") else 0)
                       | (4 if access.dram_access else 0)) if access.l1_miss \
                else (4 if access.dram_access else 0)

    # ---------------- control flow ----------------
    pending_hint = [None]

    def cb_control():
        i = int(comm[0])
        if flags[i] & 1:  # F_BRANCH: consume the hint stashed at fetch
            hint = pending_hint[0]
            pending_hint[0] = None
        else:
            hint = None
        redirect = handle_control(entries[i], comm[1], comm[2], hint, hooks,
                                  result)
        if redirect is None:
            comm[3] = _NAN
        else:
            comm[3] = redirect
            wrong_path_pollution(recent_load_addresses, comm[1], result)

    # ---------------- native branch unit ----------------
    # The kernel runs TAGE/BTB/RAS itself — directly on the Python
    # objects' own flat arrays, so state persists across runs exactly as
    # in the interpreter — when the core carries the stock structures.
    # A subclass or an alternative predictor falls back to cb_control.
    predictor = core.predictor
    btb = core.btb
    ras = core.ras
    ctrl_native = 1 if (type(predictor) is TageLitePredictor
                        and type(btb) is BranchTargetBuffer
                        and type(ras) is ReturnAddressStack) else 0
    cb_hint_miss = None
    cb_redirect = None
    if ctrl_native:
        # The RAS is tiny: marshal it into a flat array for the run and
        # write the result back after (the predictor and BTB are shared
        # zero-copy and need no copies at all).
        ras_stack = array("q", bytes(8 * ras.depth))
        for k, address in enumerate(ras._stack):
            ras_stack[k] = address
        ras_state = array("q", [len(ras._stack), ras.pushes, ras.pops,
                                ras.overflows, ras.underflows])
        hook_hint_miss = hooks.on_hint_mispredict
        if hook_hint_miss is not None:
            def cb_hint_miss():
                hook_hint_miss(entries[int(comm[0])], comm[1])

        def cb_redirect():
            wrong_path_pollution(recent_load_addresses, comm[1], result)

        native_spec = dict(
            tage_base_n=predictor.base.entries,
            tage_base_thresh=predictor.base.threshold,
            tage_base_max=predictor.base.max_value,
            tage_nt=predictor.num_tables,
            tage_te=predictor.table_entries,
            tage_tag_mask=predictor.tag_mask,
            tage_base=predictor.base._table,
            tage_present=predictor._present,
            tage_tags=predictor._tag_arr,
            tage_ctr=predictor._ctr,
            tage_useful=predictor._useful,
            tage_hist=predictor._hist,
            tage_masks=predictor._masks_arr,
            btb_sets=btb.num_sets,
            btb_assoc=btb.associativity,
            btb_tag=btb._tag,
            btb_target=btb._target,
            btb_use=btb._last_use,
            btb_count=btb._count,
            ras_depth=ras.depth,
            ras_stack=ras_stack,
            ras_state=ras_state,
        )
    else:
        ras_stack = _EMPTY_Q
        ras_state = array("q", bytes(8 * 5))
        native_spec = dict(
            tage_base_n=1, tage_base_thresh=0, tage_base_max=0,
            tage_nt=0, tage_te=1, tage_tag_mask=0,
            tage_base=_EMPTY_Q, tage_present=_EMPTY_B, tage_tags=_EMPTY_Q,
            tage_ctr=_EMPTY_Q, tage_useful=_EMPTY_Q, tage_hist=_EMPTY_U,
            tage_masks=_EMPTY_U,
            btb_sets=1, btb_assoc=1,
            btb_tag=_EMPTY_Q, btb_target=_EMPTY_Q, btb_use=_EMPTY_Q,
            btb_count=_EMPTY_Q,
            ras_depth=1, ras_stack=ras_stack, ras_state=ras_state,
        )

    # ---------------- optional hook callbacks ----------------
    #: Sparse-firing declarations from the hook source (None for generic
    #: hooks, which keep the fire-on-every-instruction contract).
    fast = hooks.fast_hints

    cb_branch_hint = None
    if plan.has_branch_hint:
        hook_branch_hint = hooks.branch_hint

        def cb_branch_hint():
            i = int(comm[0])
            fetch_time = comm[1]
            hint = hook_branch_hint(entries[i])
            pending_hint[0] = hint
            if hint is None:
                comm[4] = 0.0
            else:
                comm[4] = float(1 | (2 if hint.correct else 0)
                                | (4 if hint.has_target else 0))
                if hint.available > fetch_time:
                    result.fetch_stall_on_hint += hint.available - fetch_time
                    fetch_time = hint.available
            comm[3] = fetch_time

    cb_on_fetch = None
    fetch_gate = 0
    if plan.has_on_fetch:
        hook_on_fetch = hooks.on_fetch
        next_due = fast.fetch_next_due if fast is not None else None
        if next_due is not None:
            # Gated: the kernel fires only for branches and once fetch
            # reaches the next-due cycle; every fired call refreshes it.
            fetch_gate = 1
            comm[B_DUE] = next_due()

            def cb_on_fetch():
                hook_on_fetch(entries[int(comm[0])], comm[1])
                comm[B_DUE] = next_due()
        else:
            def cb_on_fetch():
                hook_on_fetch(entries[int(comm[0])], comm[1])

    cb_on_commit = None
    commit_filter = 0
    commit_mask = 0
    commit_pcs = _EMPTY_Q
    n_commit_pcs = 0
    if plan.has_on_commit:
        hook_on_commit = hooks.on_commit
        mask = fast.commit_flag_mask if fast is not None else None
        if mask is not None:
            commit_filter = 1
            commit_mask = mask
            if fast.commit_pcs:
                commit_pcs = array("q", sorted(fast.commit_pcs))
                n_commit_pcs = len(commit_pcs)

        def cb_on_commit():
            hook_on_commit(entries[int(comm[0])], comm[1])

    cb_value_hint = None
    sb_enable = 0
    vt_seqs = _EMPTY_Q
    n_vt_seqs = 0
    scoreboard = None
    if plan.has_value_hint:
        value_request = fast.value_request if fast is not None else None
        if value_request is not None:
            # Split protocol: Python delivers predictions for the declared
            # seqs only; the kernel runs the validation scoreboard (and its
            # counters come back through C_SB_SKIP / C_SB_VALID).
            sb_enable = 1
            scoreboard = fast.scoreboard
            targets = fast.value_target_seqs or ()
            n_vt_seqs = len(targets)
            if targets:
                vt_seqs = array("q", targets)

            def cb_value_hint():
                hint = value_request(entries[int(comm[0])])
                if hint is None:
                    comm[3] = 0.0
                else:
                    comm[3] = 1.0
                    comm[4] = hint[0]
                    comm[6] = 1.0 if hint[1] else 0.0
        else:
            hook_value_hint = hooks.value_hint

            def cb_value_hint():
                candidate = hook_value_hint(entries[int(comm[0])])
                if candidate is None or candidate.available > comm[1]:
                    comm[3] = 0.0
                elif candidate.skip_validation:
                    comm[3] = 1.0
                elif candidate.correct:
                    comm[3] = 2.0
                else:
                    comm[3] = 3.0

    spec = dict(
        n=n,
        start_cycle=float(start_cycle),
        fetch_inc=1.0 / cfg.fetch_width,
        dispatch_inc=1.0 / cfg.decode_width,
        commit_inc=1.0 / cfg.commit_width,
        frontend_latency=float(cfg.frontend_latency),
        value_mispredict_penalty=float(cfg.value_mispredict_penalty),
        fetch_buffer_entries=cfg.fetch_buffer_entries,
        rob_entries=cfg.rob_entries,
        lsq_entries=cfg.lsq_entries,
        block_bytes=core._block_bytes,
        num_int_alus=cfg.num_int_alus,
        num_mem_ports=cfg.num_mem_ports,
        num_fp_units=cfg.num_fp_units,
        num_regs=decoded.num_regs,
        hist_capacity=hist_capacity,
        hist_sample=4,
        sb_enable=sb_enable, fetch_gate=fetch_gate,
        commit_filter=commit_filter, commit_mask=commit_mask,
        n_vt_seqs=n_vt_seqs, n_commit_pcs=n_commit_pcs,
        ctrl_native=ctrl_native,
        branch_mispredict_penalty=float(cfg.branch_mispredict_penalty),
        ba=decoded.ba, flags=decoded.flags, ea=decoded.ea, lat=decoded.lat,
        dst=decoded.dst, srcs=decoded.srcs, srcs_off=decoded.srcs_off,
        sb_dst=decoded.sb_dst, seq=decoded.seq, pc=decoded.pcs,
        nxt=decoded.nxt,
        vt_seqs=vt_seqs, commit_pcs=commit_pcs,
        fetch_times=fetch_times, dispatch_times=dispatch_times,
        commit_times=commit_times, counters=counters, hist=hist, comm=comm,
        cb_icache=cb_icache, cb_load=cb_load, cb_store=cb_store,
        cb_control=None if ctrl_native else cb_control,
        cb_branch_hint=cb_branch_hint,
        cb_on_fetch=cb_on_fetch, cb_on_commit=cb_on_commit,
        cb_value_hint=cb_value_hint,
        cb_hint_miss=cb_hint_miss, cb_redirect=cb_redirect,
        **native_spec,
    )
    kernel.run_tick_loop(spec)

    if ctrl_native:
        ras._stack = list(ras_stack[:ras_state[0]])
        ras.pushes = ras_state[1]
        ras.pops = ras_state[2]
        ras.overflows = ras_state[3]
        ras.underflows = ras_state[4]

    result.l1i_accesses += counters[C_L1I_ACC]
    result.l1i_misses += counters[C_L1I_MISS]
    result.l1d_accesses += counters[C_L1D_ACC]
    result.l1d_misses += counters[C_L1D_MISS]
    result.l2_misses += counters[C_L2_MISS]
    result.dram_accesses += counters[C_DRAM]
    result.decoded += counters[C_DECODED]
    result.executed += counters[C_EXECUTED]
    result.committed += counters[C_COMMITTED]
    result.validations_skipped += counters[C_VALID_SKIP]
    result.value_predictions_used += counters[C_VP_USED]
    result.value_mispredictions += counters[C_VP_MISS]
    result.branches += counters[C_BRANCHES]
    result.branch_mispredicts += counters[C_BR_MISPRED]
    result.hint_mispredicts += counters[C_HINT_MISPRED]
    result.btb_misses += counters[C_BTB_MISS]
    if scoreboard is not None:
        scoreboard.skips += counters[C_SB_SKIP]
        scoreboard.validations += counters[C_SB_VALID]
    result.cycles = commit_times[-1] - start_cycle
    result.tlb_misses = memory.tlb.stats.misses
    result.fetch_bubbles = float(n - counters[C_FETCH_BOUND])
    result.timings = None
    for occupancy, count in enumerate(hist):
        if count:
            result.fetch_queue_histogram[occupancy] = (
                result.fetch_queue_histogram.get(occupancy, 0) + count
            )
    return result
