"""Sparse-firing metadata a hook source may attach to its CoreHooks.

The reference interpreter calls ``on_fetch``/``on_commit``/``value_hint``
once per instruction; for the DLA hint sources the overwhelming majority of
those calls are no-ops (the fetch hook only drains due prefetch hints and
records branches, the commit hooks only act on loads / branches / value
targets, the value hook only predicts a small seq set).  A hook source that
knows this can declare it here; the compiled kernel then fires the Python
callback only when it could do work and keeps the cheap residual logic —
the validation scoreboard, the flag/PC membership tests — on the C side.

The declarations are *promises of equivalence*: a skipped call must be an
observable no-op.  The reference interpreter ignores this object entirely,
and the golden equivalence suites pin the two paths together bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple


@dataclass
class CompiledHookSpec:
    """Optional kernel-side gating contract for one set of CoreHooks."""

    #: Split of ``value_hint``: called only for dynamic instructions whose
    #: seq is in :attr:`value_target_seqs`; returns ``None`` (no prediction)
    #: or ``(available_cycle, correct)``.  The validation scoreboard runs in
    #: the kernel for *every* instruction, exactly as the unsplit hook would
    #: have run it, and its skip/validation counters are added back to
    #: :attr:`scoreboard` after the run.
    value_request: Optional[Callable] = None
    #: Sorted dynamic seqs that can carry a value prediction.
    value_target_seqs: Optional[Tuple[int, ...]] = None
    #: ValidationScoreboard receiving the kernel's skip/validation counts.
    scoreboard: Optional[object] = None

    #: ``on_fetch`` gate: the kernel fires the hook for every branch, and
    #: for non-branches only once the fetch cycle reaches this callable's
    #: value (the availability of the next pending prefetch hint;
    #: ``math.inf`` when drained).  Re-read after every fired call.
    fetch_next_due: Optional[Callable[[], float]] = None

    #: ``on_commit`` filter: fire only when the instruction's decoded flags
    #: intersect the mask or its PC is in the sorted tuple.
    commit_flag_mask: Optional[int] = None
    commit_pcs: Tuple[int, ...] = ()
