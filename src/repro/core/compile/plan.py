"""Specialization planning: which compiled variant (if any) fits a run.

The pass pipeline is deliberately small: ``plan_run`` resolves every
run-invariant decision once — which hook callbacks the kernel must fire,
whether the memory callbacks can use the tuple-returning fast accessors or
must construct real :class:`AccessResult` objects (an ``on_memory_access``
hook observes them), and which prefetchers train — so the per-instruction
loop carries no residual config branches on the Python side.  The plan's
fingerprint keys in-process caches of anything derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SpecializationPlan:
    """Run-invariant shape of one compiled simulation."""

    has_branch_hint: bool
    has_value_hint: bool
    has_on_commit: bool
    has_on_fetch: bool
    has_on_memory: bool
    has_l1_prefetcher: bool
    has_l2_prefetcher: bool
    #: Tuple-returning accessors are only sound when no hook inspects the
    #: AccessResult objects.
    use_fast_access: bool

    @property
    def fingerprint(self) -> int:
        bits = 0
        for shift, flag in enumerate((
            self.has_branch_hint, self.has_value_hint, self.has_on_commit,
            self.has_on_fetch, self.has_on_memory, self.has_l1_prefetcher,
            self.has_l2_prefetcher, self.use_fast_access,
        )):
            if flag:
                bits |= 1 << shift
        return bits


def plan_run(core, hooks, collect_timings: bool) -> Optional[SpecializationPlan]:
    """Build the plan for one run, or ``None`` when ineligible.

    Only per-instruction timing collection forces the reference
    interpreter: it materialises an :class:`InstructionTiming` per entry,
    which would erase the compiled loop's advantage anyway.
    """
    if collect_timings:
        return None
    has_on_memory = hooks.on_memory_access is not None
    return SpecializationPlan(
        has_branch_hint=hooks.branch_hint is not None,
        has_value_hint=hooks.value_hint is not None,
        has_on_commit=hooks.on_commit is not None,
        has_on_fetch=hooks.on_fetch is not None,
        has_on_memory=has_on_memory,
        has_l1_prefetcher=core.l1_prefetcher is not None,
        has_l2_prefetcher=core.l2_prefetcher is not None,
        use_fast_access=not has_on_memory,
    )
