"""Victim write-buffer sensitivity — when do writebacks throttle the machine?

Varies the per-level victim write-buffer depth (1/2/4/8/off, on L1D/L2/L3)
for the baseline and R3-DLA and reports throughput relative to the
bufferless (instant-drain) reference, plus the contention stall telemetry.
With a buffer modelled, dirty victims occupy a slot until their write lands
at the next level down, and a full buffer back-pressures fills — the first
time ``CacheStats.writebacks`` is a timing-relevant event.

Shape to expect: store-heavy workloads with poor locality feel single-entry
buffers (every dirty eviction serialises on the previous drain); by 8
entries the curves sit on the instant-drain reference.

One axis binding of :mod:`repro.experiments.memsys_sweep` — see there for
the shared machinery and the sibling ``mshr``/``dramq`` axes.
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.memsys_sweep import (
    AXIS_WB,
    WB_SETTINGS,
    MemsysSweepResult,
    artifact_tables,
    axis_variants,
    run_axis,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["WB_SETTINGS", "run", "CAMPAIGN", "artifact_tables"]


def run(runner: Optional[ExperimentRunner] = None) -> MemsysSweepResult:
    runner = runner or ExperimentRunner(quick=True)
    return run_axis(runner, AXIS_WB)


CAMPAIGN = CampaignSpec(
    name="wb-sweep",
    title="Write-buffer sweep — victim drain sensitivity of BL vs R3-DLA",
    experiment=__name__,
    description="Throughput of the baseline and R3-DLA with per-level victim "
                "write buffers of 1/2/4/8/no-buffer entries, relative to the "
                "instant-drain (bufferless) machine.",
    variants=axis_variants(AXIS_WB),
    tags=("sweep", "memsys", "memory"),
)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
