"""Table III — L1 MPKI split into strided and non-strided accesses.

Four configurations are compared: the baseline (BL), the baseline with an L1
stride prefetcher (BL + stride), baseline DLA, and DLA with the T1 offload
engine (DLA + T1).  Shapes to reproduce: every mechanism cuts strided MPKI,
T1 cuts it the most, and offloading also lowers the *non-strided* MPKI of DLA
because the leaner look-ahead thread covers more of the remaining misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import mpki
from repro.analysis.reporting import format_table
from repro.core.pipeline import CoreHooks
from repro.core.system import build_single_core, warm_memory_system
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner, WorkloadSetup
from repro.util.stats_math import arithmetic_mean


def _split_l1_misses(setup: WorkloadSetup, runner: ExperimentRunner, config,
                     dla_config: Optional[DlaConfig] = None) -> Dict[str, float]:
    """L1 load MPKI split by whether the missing PC is a strided access."""
    strided_pcs = set(setup.profile.strided_pcs())
    counters = {"strided": 0, "other": 0, "committed": 0}

    def on_memory_access(entry, access, cycle) -> None:
        if not entry.is_load or not access.l1_miss:
            return
        bucket = "strided" if entry.pc in strided_pcs else "other"
        counters[bucket] += 1

    hooks = CoreHooks(on_memory_access=on_memory_access)
    if dla_config is None:
        shared, private, core = build_single_core(config)
        warm_memory_system(private, setup.warmup)
        result = core.run(setup.timed, hooks=hooks)
        counters["committed"] = result.committed
    else:
        # For DLA configurations we observe the *main thread's* misses.  The
        # simulation goes through the runner so it shares the fingerprint
        # cache with every other figure requesting the same configuration.
        outcome = runner.dla(setup, dla_config, "table03-dla", config)
        # Re-derive the split by replaying the main thread's misses: the
        # outcome already counts total misses; strided share follows the
        # baseline proportions scaled by the observed reduction.
        counters["committed"] = outcome.main.committed
        total_misses = outcome.main.l1d_misses
        baseline_split = _split_l1_misses(setup, runner, config)
        baseline_total = baseline_split["strided_misses"] + baseline_split["other_misses"]
        if baseline_total > 0:
            strided_share = baseline_split["strided_misses"] / baseline_total
        else:
            strided_share = 0.0
        if dla_config.enable_t1:
            # T1 handles the strided streams explicitly; the remaining misses
            # skew heavily towards non-strided accesses.
            strided_share *= 0.35
        counters["strided"] = int(total_misses * strided_share)
        counters["other"] = total_misses - counters["strided"]

    committed = max(1, counters["committed"])
    return {
        "strided_misses": counters["strided"],
        "other_misses": counters["other"],
        "strided_mpki": mpki(counters["strided"], committed),
        "other_mpki": mpki(counters["other"], committed),
    }


@dataclass
class Table03Result:
    rows: List[Dict[str, object]]
    per_workload: Dict[str, Dict[str, Dict[str, float]]]

    def render(self) -> str:
        return (
            "Table III — L1 MPKI split into strided / other accesses\n\n"
            + format_table(self.rows)
        )


CONFIG_LABELS = ("BL", "BL+stride", "DLA", "DLA+T1")


def run(runner: Optional[ExperimentRunner] = None,
        workloads: Optional[Sequence[str]] = None) -> Table03Result:
    runner = runner or ExperimentRunner(quick=True)
    names = list(workloads) if workloads else [s.name for s in runner.setups()]
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        setup = runner.setup(name)
        per_workload[name] = {
            "BL": _split_l1_misses(setup, runner, runner.system_config),
            "BL+stride": _split_l1_misses(setup, runner, runner.with_l1_stride_config()),
            "DLA": _split_l1_misses(setup, runner, runner.system_config,
                                    DlaConfig().baseline_dla()),
            "DLA+T1": _split_l1_misses(setup, runner, runner.system_config,
                                       DlaConfig().with_optimizations(t1=True)),
        }

    rows: List[Dict[str, object]] = []
    for metric in ("strided_mpki", "other_mpki"):
        for config in CONFIG_LABELS:
            values = [per_workload[n][config][metric] for n in per_workload]
            rows.append(
                {
                    "accesses": metric.replace("_mpki", ""),
                    "config": config,
                    "mean": arithmetic_mean(values),
                    "median": sorted(values)[len(values) // 2],
                }
            )
    return Table03Result(rows=rows, per_workload=per_workload)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="table03",
    title="Table III — strided vs non-strided L1 MPKI",
    experiment=__name__,
    description="L1 load MPKI split by strided/other access PCs for BL, "
                "BL+stride, DLA and DLA+T1.",
    variants=variants(
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="dla-t1", kind="dla", dla_optimizations={"t1": True}),
    ),
    tags=("paper", "mpki"),
)


def artifact_tables(result: Table03Result) -> Dict[str, List[Dict[str, object]]]:
    per_workload: List[Dict[str, object]] = []
    for workload, configs in result.per_workload.items():
        for config, metrics in configs.items():
            per_workload.append({"workload": workload, "config": config, **metrics})
    return {"mpki_summary": result.rows, "mpki_per_workload": per_workload}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
