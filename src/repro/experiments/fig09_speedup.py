"""Fig. 9 — overall performance of DLA and R3-DLA.

(a) Speedup of six configurations over the baseline-with-BOP:
    BL(noPF), BL, DLA(noPF), DLA, R3-DLA(noPF), R3-DLA — per suite geomean
    with min/max range.
(b) Comparison with related approaches: B-Fetch, SlipStream, CRE, DLA,
    R3-DLA (suite-wide geomean).

Shapes to reproduce: R3-DLA > DLA > BL everywhere; removing the hardware
prefetcher hurts the baseline far more than it hurts the DLA variants; the
related approaches land between the baseline and full R3-DLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import SpeedupTable
from repro.analysis.reporting import format_table
from repro.baselines import simulate_bfetch, simulate_cre, simulate_slipstream
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.workloads.suites import SUITES


@dataclass
class Fig09Result:
    table: SpeedupTable
    related: SpeedupTable

    def render(self) -> str:
        lines = ["Fig. 9-a — speedup over baseline with BOP", ""]
        lines.append(format_table(self.table.summary_rows(list(SUITES))))
        lines.append("")
        lines.append("Fig. 9-b — related approaches (suite-wide geomean)")
        lines.append(format_table(self.related.summary_rows([])))
        return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None,
        include_related: bool = True) -> Fig09Result:
    runner = runner or ExperimentRunner(quick=True)
    nopf = runner.no_prefetch_config()
    table = SpeedupTable()
    related = SpeedupTable()

    for setup in runner.setups():
        reference = runner.baseline(setup, "bl")
        ref_cycles = reference.cycles

        bl_nopf = runner.baseline(setup, "bl-nopf", nopf)
        dla = runner.dla(setup, DlaConfig().baseline_dla(), "dla")
        dla_nopf = runner.dla(setup, DlaConfig().baseline_dla(), "dla-nopf", nopf)
        r3 = runner.dla(setup, DlaConfig().r3(), "r3")
        r3_nopf = runner.dla(setup, DlaConfig().r3(), "r3-nopf", nopf)

        table.record("BL (noPF)", setup.name, ref_cycles / bl_nopf.cycles, setup.suite)
        table.record("BL", setup.name, 1.0, setup.suite)
        table.record("DLA (noPF)", setup.name, ref_cycles / dla_nopf.cycles, setup.suite)
        table.record("DLA", setup.name, ref_cycles / dla.cycles, setup.suite)
        table.record("R3-DLA (noPF)", setup.name, ref_cycles / r3_nopf.cycles, setup.suite)
        table.record("R3-DLA", setup.name, ref_cycles / r3.cycles, setup.suite)

        if include_related:
            # Related approaches go through the runner's auxiliary cache so
            # campaign reruns and resumes skip them like every other cell.
            bfetch = runner.auxiliary(setup, "bfetch", lambda s=setup: simulate_bfetch(
                s.timed, runner.system_config, warmup_entries=s.warmup))
            slip = runner.auxiliary(setup, "slipstream", lambda s=setup: simulate_slipstream(
                s.program, s.timed, s.profile, runner.system_config,
                warmup_entries=s.warmup))
            cre = runner.auxiliary(setup, "cre", lambda s=setup: simulate_cre(
                s.program, s.timed, s.profile, runner.system_config,
                warmup_entries=s.warmup))
            related.record("B-Fetch", setup.name, ref_cycles / bfetch.cycles, setup.suite)
            related.record("S-Stream", setup.name, ref_cycles / slip.cycles, setup.suite)
            related.record("CRE", setup.name, ref_cycles / cre.cycles, setup.suite)
            related.record("DLA", setup.name, ref_cycles / dla.cycles, setup.suite)
            related.record("R3-DLA", setup.name, ref_cycles / r3.cycles, setup.suite)

    return Fig09Result(table=table, related=related)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig09",
    title="Fig. 9 — overall performance of DLA and R3-DLA",
    experiment=__name__,
    description="Speedup of {BL, DLA, R3-DLA} x {BOP, noPF} over the "
                "baseline-with-BOP, plus related approaches.",
    variants=variants(
        dict(name="bl", kind="baseline"),
        dict(name="bl-nopf", kind="baseline", prefetch="none"),
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="dla-nopf", kind="dla", dla_preset="dla", prefetch="none"),
        dict(name="r3", kind="dla", dla_preset="r3"),
        dict(name="r3-nopf", kind="dla", dla_preset="r3", prefetch="none"),
    ),
    tags=("paper", "headline"),
)


def artifact_tables(result: Fig09Result) -> Dict[str, List[Dict[str, object]]]:
    return {
        "speedup": result.table.summary_rows(list(SUITES)),
        "related": result.related.summary_rows([]),
    }


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
