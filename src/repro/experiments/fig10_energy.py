"""Fig. 10 — CPU and DRAM energy of DLA and R3-DLA, normalised to baseline.

Shapes to reproduce: the two-thread system costs extra CPU energy (the paper
reports ~1.1x geomean for R3-DLA, less than DLA's overhead because the
skeleton is leaner), while DRAM energy *drops* below baseline (~0.9x) because
the shorter run time cuts background energy and wrong-path traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean
from repro.workloads.suites import SUITES


@dataclass
class Fig10Result:
    rows: List[Dict[str, object]]
    per_workload: Dict[str, Dict[str, float]]

    def render(self) -> str:
        return "Fig. 10 — energy normalised to baseline (geomean per suite)\n\n" + format_table(
            self.rows
        )


def run(runner: Optional[ExperimentRunner] = None) -> Fig10Result:
    runner = runner or ExperimentRunner(quick=True)
    per_workload: Dict[str, Dict[str, float]] = {}
    suite_of: Dict[str, str] = {}
    for setup in runner.setups():
        baseline = runner.baseline(setup, "bl")
        base_cpu = baseline.energy.total
        base_dram = baseline.dram_energy
        dla = runner.dla(setup, DlaConfig().baseline_dla(), "dla")
        r3 = runner.dla(setup, DlaConfig().r3(), "r3")
        per_workload[setup.name] = {
            "DLA cpu": dla.cpu_energy / max(1e-9, base_cpu),
            "R3-DLA cpu": r3.cpu_energy / max(1e-9, base_cpu),
            "DLA dram": dla.dram_energy / max(1e-9, base_dram),
            "R3-DLA dram": r3.dram_energy / max(1e-9, base_dram),
        }
        suite_of[setup.name] = setup.suite

    rows: List[Dict[str, object]] = []
    suites_present = [s for s in SUITES if any(v == s for v in suite_of.values())]
    for suite in suites_present + [None]:
        names = [n for n in per_workload if suite is None or suite_of[n] == suite]
        if not names:
            continue
        row: Dict[str, object] = {"suite": suite or "all"}
        for metric in ("DLA cpu", "R3-DLA cpu", "DLA dram", "R3-DLA dram"):
            row[metric] = geometric_mean([per_workload[n][metric] for n in names])
        rows.append(row)
    return Fig10Result(rows=rows, per_workload=per_workload)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig10",
    title="Fig. 10 — CPU and DRAM energy normalised to baseline",
    experiment=__name__,
    description="Two-thread CPU energy overhead and DRAM energy savings of "
                "DLA and R3-DLA.",
    variants=variants(
        dict(name="bl", kind="baseline"),
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="r3", kind="dla", dla_preset="r3"),
    ),
    tags=("paper", "energy"),
)


def artifact_tables(result: Fig10Result) -> Dict[str, List[Dict[str, object]]]:
    per_workload = [
        {"workload": name, **values}
        for name, values in result.per_workload.items()
    ]
    return {"energy_summary": result.rows, "energy_per_workload": per_workload}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
