"""Fig. 15 — distribution of skeleton versions chosen by the recycle controller.

For each workload, the recycle controller tunes one skeleton version per loop
unit; the figure shows, per workload, what fraction of the execution ran
under each version.  Shape to reproduce: no single version dominates across
all workloads — different programs (and different loops within a program)
prefer different skeletons, which is the motivation for recycling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner


@dataclass
class Fig15Result:
    #: workload -> {version name: fraction of instructions}
    distributions: Dict[str, Dict[str, float]]
    version_names: List[str]

    def render(self) -> str:
        rows = artifact_tables(self)["version_distribution"]
        return (
            "Fig. 15 — distribution of skeleton versions chosen during tuning\n\n"
            + format_table(rows)
        )


def run(runner: Optional[ExperimentRunner] = None,
        max_workloads: Optional[int] = None) -> Fig15Result:
    runner = runner or ExperimentRunner(quick=True)
    setups = runner.setups()
    if max_workloads is None:
        max_workloads = 5 if runner.quick else len(setups)
    distributions: Dict[str, Dict[str, float]] = {}
    version_names: List[str] = []
    config = DlaConfig().r3()
    for setup in setups[:max_workloads]:
        segmented = runner.dla_segmented(setup, config, dynamic=True,
                                         label="recycle-dynamic")
        version_names = list(segmented.version_names)
        distributions[setup.name] = {
            version_names[index]: fraction
            for index, fraction in segmented.version_distribution.items()
        }
    return Fig15Result(distributions=distributions, version_names=version_names)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig15",
    title="Fig. 15 — distribution of skeleton versions chosen",
    experiment=__name__,
    description="Per-workload fraction of execution run under each skeleton "
                "version during dynamic recycle tuning.",
    variants=variants(
        dict(name="recycle-dynamic", kind="segmented", dla_preset="r3",
             dynamic=True),
    ),
    max_cell_workloads_quick=5,
    tags=("paper", "recycle"),
)


def artifact_tables(result: Fig15Result) -> Dict[str, List[Dict[str, object]]]:
    rows: List[Dict[str, object]] = []
    for workload, dist in result.distributions.items():
        row: Dict[str, object] = {"workload": workload}
        for name in result.version_names:
            row[name] = dist.get(name, 0.0)
        rows.append(row)
    return {"version_distribution": rows}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
