"""Fig. 15 — distribution of skeleton versions chosen by the recycle controller.

For each workload, the recycle controller tunes one skeleton version per loop
unit; the figure shows, per workload, what fraction of the execution ran
under each version.  Shape to reproduce: no single version dominates across
all workloads — different programs (and different loops within a program)
prefer different skeletons, which is the motivation for recycling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.config import DlaConfig
from repro.dla.recycle import RecycleController, build_skeleton_versions
from repro.dla.system import DlaSystem
from repro.experiments.runner import ExperimentRunner


@dataclass
class Fig15Result:
    #: workload -> {version name: fraction of instructions}
    distributions: Dict[str, Dict[str, float]]
    version_names: List[str]

    def render(self) -> str:
        rows = []
        for workload, dist in self.distributions.items():
            row: Dict[str, object] = {"workload": workload}
            for name in self.version_names:
                row[name] = dist.get(name, 0.0)
            rows.append(row)
        return (
            "Fig. 15 — distribution of skeleton versions chosen during tuning\n\n"
            + format_table(rows)
        )


def run(runner: Optional[ExperimentRunner] = None,
        max_workloads: Optional[int] = None) -> Fig15Result:
    runner = runner or ExperimentRunner(quick=True)
    setups = runner.setups()
    if max_workloads is None:
        max_workloads = 5 if runner.quick else len(setups)
    distributions: Dict[str, Dict[str, float]] = {}
    version_names: List[str] = []
    config = DlaConfig().r3()
    for setup in setups[:max_workloads]:
        system = DlaSystem(setup.program, runner.system_config, config,
                           profile=setup.profile)
        versions = build_skeleton_versions(system.builder, enable_t1=True)
        version_names = [skeleton.options.name for skeleton in versions]
        controller = RecycleController(versions, config, setup.profile.loop_branch_pcs)
        plan = controller.plan(system, setup.timed, dynamic=True)
        distributions[setup.name] = {
            version_names[index]: fraction
            for index, fraction in plan.version_distribution.items()
        }
    return Fig15Result(distributions=distributions, version_names=version_names)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
