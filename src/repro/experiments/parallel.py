"""Parallel, fingerprint-keyed experiment execution.

``ParallelExperimentRunner`` fans independent (workload, configuration)
simulations out over ``multiprocessing`` worker processes and merges the
results back into the ordinary in-memory/on-disk caches in deterministic
(request) order.  Because every simulation is deterministic — programs are
seeded with content-stable hashes, traces replay identically, and all hint
errors come from :class:`~repro.util.rng.DeterministicRng` — a parallel
campaign produces bit-identical outcomes to a serial one, just sooner.

Workers are grouped by workload so each worker process builds a workload's
program/trace/profile once and then runs every configuration requested for
it; only small, stripped result objects cross the process boundary.

This is what makes ``REPRO_FULL_EVAL=1`` practical: the full-suite matrix is
embarrassingly parallel at the (workload, config) level and scales with
cores.  On a single-core host (or with ``processes=1``) the runner degrades
to inline execution with no multiprocessing overhead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner, strip_outcome

#: Environment variable overriding the worker-process count.
PROCESSES_ENV = "REPRO_PROCESSES"


@dataclass(frozen=True)
class SimRequest:
    """One independent simulation of the standard experiment matrix."""

    workload: str
    kind: str                                    # "baseline" | "dla" | "segmented"
    label: str = ""
    system_config: Optional[SystemConfig] = None  # None -> runner default
    dla_config: Optional[DlaConfig] = None
    #: Segmented requests only: on-line (dynamic) vs off-line recycle tuning.
    dynamic: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("baseline", "dla", "segmented"):
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.kind in ("dla", "segmented") and self.dla_config is None:
            raise ValueError(f"{self.kind} requests need a dla_config")
        if self.kind != "segmented" and self.dynamic:
            # dynamic is not part of the baseline/dla cache keys; accepting
            # it would silently alias with the dynamic=False request.
            raise ValueError("dynamic tuning is a segmented-only knob")


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#: Per-worker runner, keyed by a content fingerprint of the constructor
#: kwargs that define it (including the base system config).  A pool worker
#: serves one campaign, so this only ever holds one entry; the dict avoids
#: rebuilding setups when a worker receives several groups of one campaign
#: while never aliasing runners across campaigns with different configs.
_WORKER_RUNNERS: Dict[str, ExperimentRunner] = {}


def _worker_runner(ctor_kwargs: dict) -> ExperimentRunner:
    from repro.experiments.fingerprint import fingerprint

    key = fingerprint(ctor_kwargs)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(**ctor_kwargs)
        _WORKER_RUNNERS.clear()   # one campaign per worker: drop stale state
        _WORKER_RUNNERS[key] = runner
    return runner


def _setup_key(runner: ExperimentRunner, setup, request: SimRequest) -> str:
    """Content key of ``request`` against an already-built setup."""
    if request.kind == "baseline":
        return runner.baseline_key(setup, request.system_config)
    if request.kind == "segmented":
        return runner.segmented_key(setup, request.dla_config, request.dynamic,
                                    request.system_config)
    return runner.dla_key(setup, request.dla_config, request.system_config)


def _simulate_request(runner: ExperimentRunner, setup, request: SimRequest):
    """Run one request against an already-built setup; returns the outcome."""
    if request.kind == "baseline":
        return strip_outcome(
            runner.baseline(setup, request.label or "bl", request.system_config)
        )
    if request.kind == "segmented":
        return runner.dla_segmented(
            setup, request.dla_config, request.dynamic,
            request.label or "recycle", request.system_config
        )
    return runner.dla(
        setup, request.dla_config, request.label or "dla", request.system_config
    )


def _request_content_key(runner: ExperimentRunner, request: SimRequest) -> str:
    """Content key of ``request`` from workload *definitions* only — no
    trace/profile building, so it is safe to compute before a setup exists
    (fault probes and failure records need the key even when setup fails)."""
    from repro.workloads.suites import get_workload

    workload = get_workload(request.workload)
    if request.kind == "segmented":
        return runner.segmented_key_for(
            workload, request.dla_config, request.dynamic, request.system_config
        )
    return runner.workload_key(
        workload, request.kind, request.system_config, request.dla_config,
    )


def _failure_payload(request: SimRequest, error: BaseException,
                     duration_seconds: float) -> Dict[str, object]:
    """The picklable record of one isolated cell failure."""
    from repro.campaign.health import exception_info

    info = exception_info(error, duration_seconds)
    info.update({
        "workload": request.workload,
        "kind": request.kind,
        "label": request.label,
    })
    return info


def _run_group(payload: Tuple[dict, str, List[SimRequest]]):
    """Execute every request of one workload group in a worker process.

    ``payload`` is ``(ctor_kwargs, workload, requests)`` — optionally
    followed by an options dict ``{"isolate": bool, "attempts": {key: n}}``.
    With ``isolate`` on, a request whose simulation raises does not poison
    the group: the exception is captured as a ``("failed", key, info)``
    result entry and the remaining requests still run.  Fault-injection
    probes (:data:`repro.util.faults.SITE_CELL_SIMULATE`) fire only on this
    isolated path, so the default warm path stays byte-for-byte untouched.
    """
    from repro.core.system import warm_memo_stats

    ctor_kwargs, workload, requests, *rest = payload
    options = rest[0] if rest else {}
    isolate = bool(options.get("isolate"))
    attempts: Dict[str, int] = options.get("attempts", {})
    runner = _worker_runner(ctor_kwargs)
    # The runner (and its stats) persists across the groups this worker
    # serves; report only this group's delta or the parent's merge would
    # prefix-sum-overcount every earlier group.
    stats_before = runner.stats.copy()
    warm_before = warm_memo_stats()
    results = []
    if not isolate:
        setup = runner.setup(workload)
        for request in requests:
            key = _setup_key(runner, setup, request)
            results.append((request.kind, key,
                            _simulate_request(runner, setup, request)))
    else:
        from repro.util import faults

        setup = None
        for request in requests:
            key = _request_content_key(runner, request)
            started = time.monotonic()
            try:
                faults.probe(faults.SITE_CELL_SIMULATE, key=key,
                             attempt=attempts.get(key, 0))
                if setup is None:
                    setup = runner.setup(workload)
                results.append((request.kind, key,
                                _simulate_request(runner, setup, request)))
            except Exception as error:   # isolation boundary — keep going
                results.append(("failed", key, _failure_payload(
                    request, error, time.monotonic() - started)))
    warm_delta = {
        name: value - warm_before[name]
        for name, value in warm_memo_stats().items()
    }
    return workload, results, runner.stats.since(stats_before), warm_delta


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that can pre-compute request batches in
    parallel worker processes.

    All single-request entry points (:meth:`setup`, :meth:`baseline`,
    :meth:`dla`) are inherited unchanged — figures keep calling them and hit
    the caches :meth:`warm` filled.
    """

    def __init__(self, *args, processes: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if processes is None:
            env = os.environ.get(PROCESSES_ENV, "")
            processes = int(env) if env.isdigit() and int(env) > 0 else None
        self.processes = processes
        #: Warm-memo counters accumulated from worker processes (each worker
        #: has its own process-wide memo; see warm_memo_totals()).
        self._worker_warm: Dict[str, int] = {"warm_replays": 0, "warm_restores": 0}

    def warm_memo_totals(self) -> Dict[str, int]:
        """Warm-memo replay/restore counts across this process and workers."""
        from repro.core.system import warm_memo_stats

        totals = dict(warm_memo_stats())
        for name, value in self._worker_warm.items():
            totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------------
    def _ctor_kwargs(self) -> dict:
        return {
            "quick": self.quick,
            "workload_names": list(self.workload_names),
            "warmup_instructions": self.warmup_instructions,
            "timed_instructions": self.timed_instructions,
            "system_config": self.system_config,
            # Workers read/write the shared disk cache directly; with it
            # disabled they return everything through the merge below.
            "disk_cache": self.disk_cache is not None,
        }

    def default_processes(self) -> int:
        cpus = os.cpu_count() or 1
        # Leave one core for the merging parent on bigger machines.
        return cpus if cpus <= 2 else cpus - 1

    # ------------------------------------------------------------------
    def standard_requests(self) -> List[SimRequest]:
        """The core configuration matrix of the paper's headline figures.

        Six configurations per workload: {BL, DLA, R3-DLA} x {BOP prefetcher,
        no prefetcher}.  Everything else (fetch-buffer sweeps, single-
        optimization ablations) is cheap by comparison and computed on
        demand — where its fingerprint matches one of these, it is a cache
        hit anyway.
        """
        nopf = self.no_prefetch_config()
        dla = DlaConfig().baseline_dla()
        r3 = DlaConfig().r3()
        requests: List[SimRequest] = []
        for name in self.workload_names:
            requests.append(SimRequest(name, "baseline", "bl"))
            requests.append(SimRequest(name, "baseline", "bl-nopf", system_config=nopf))
            requests.append(SimRequest(name, "dla", "dla", dla_config=dla))
            requests.append(SimRequest(name, "dla", "dla-nopf", system_config=nopf, dla_config=dla))
            requests.append(SimRequest(name, "dla", "r3", dla_config=r3))
            requests.append(SimRequest(name, "dla", "r3-nopf", system_config=nopf, dla_config=r3))
        return requests

    # ------------------------------------------------------------------
    def warm(self, requests: Optional[Sequence[SimRequest]] = None,
             processes: Optional[int] = None) -> int:
        """Pre-compute ``requests`` (default: the standard matrix).

        Returns the number of simulations that were actually executed (the
        rest were already cached).  Results are merged into the caches in
        request order, so subsequent figure code sees exactly the same
        objects regardless of worker scheduling.
        """
        requests = list(requests if requests is not None else self.standard_requests())
        pending = self._pending_groups(requests)
        if not pending:
            return 0
        processes = processes or self.processes or self.default_processes()
        processes = min(processes, len(pending))
        simulations_before = self.stats.simulations

        if processes <= 1:
            # Inline execution: run directly on this runner — its setups and
            # caches are exactly what the figures will use afterwards, so
            # nothing is built twice.
            for _workload, group in pending:
                for request in group:
                    setup = self.setup(request.workload)
                    if request.kind == "baseline":
                        self.baseline(setup, request.label or "bl", request.system_config)
                    elif request.kind == "segmented":
                        self.dla_segmented(setup, request.dla_config, request.dynamic,
                                           request.label or "recycle",
                                           request.system_config)
                    else:
                        self.dla(setup, request.dla_config, request.label or "dla",
                                 request.system_config)
            return self.stats.simulations - simulations_before

        import multiprocessing

        from repro.core.compile.build import load_kernel

        # Build/load the compiled tick kernel once before fanning out:
        # forked workers inherit the loaded module, spawned workers find the
        # cached artifact on disk — either way no worker pays (or races) the
        # C compile inside its measured simulation time.
        load_kernel()

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        payloads = [(self._ctor_kwargs(), workload, group) for workload, group in pending]
        with ctx.Pool(processes=processes) as pool:
            # ``map`` preserves payload order -> deterministic merge order.
            for result in pool.map(_run_group, payloads):
                self._merge_group(result)
        return self.stats.simulations - simulations_before

    # ------------------------------------------------------------------
    def warm_isolated(
        self,
        requests: Optional[Sequence[SimRequest]] = None,
        processes: Optional[int] = None,
        attempts: Optional[Dict[str, int]] = None,
    ) -> Tuple[int, Dict[str, Dict[str, object]]]:
        """Fault-isolated :meth:`warm`: capture per-cell failures, keep going.

        Returns ``(executed, failures)`` where ``failures`` maps content key
        to a structured failure payload (exception type, message, traceback
        digest, monotonic duration) for every request whose simulation — or
        setup — raised.  Successful cells land in the caches exactly as with
        :meth:`warm`; failed cells land nowhere, so a later retry re-runs
        only them.  ``attempts`` (key -> prior failure count) is forwarded
        to the fault-injection probe so attempt-gated transient faults stop
        firing once a cell has been retried past their budget.

        This is the campaign scheduler's execution primitive; direct
        :meth:`warm` keeps its raise-through semantics for the figure
        modules, where an exception is a bug to surface, not route around.
        """
        requests = list(requests if requests is not None else self.standard_requests())
        attempts = attempts or {}
        keys = [self._request_key(request) for request in requests]
        availability = self.screen(requests, keys=keys)
        groups: Dict[str, List[Tuple[SimRequest, str]]] = {}
        for request, key in zip(requests, keys):
            if availability[key]:
                continue
            groups.setdefault(request.workload, []).append((request, key))
        pending = list(groups.items())
        if not pending:
            return 0, {}
        processes = processes or self.processes or self.default_processes()
        processes = min(processes, len(pending))
        simulations_before = self.stats.simulations
        failures: Dict[str, Dict[str, object]] = {}

        if processes <= 1:
            from repro.util import faults

            for workload, pairs in pending:
                setup = None
                for request, key in pairs:
                    started = time.monotonic()
                    try:
                        faults.probe(faults.SITE_CELL_SIMULATE, key=key,
                                     attempt=attempts.get(key, 0))
                        if setup is None:
                            setup = self.setup(workload)
                        _simulate_request(self, setup, request)
                    except Exception as error:
                        failures[key] = _failure_payload(
                            request, error, time.monotonic() - started)
            return self.stats.simulations - simulations_before, failures

        import multiprocessing

        from repro.core.compile.build import load_kernel

        # Same pre-fork kernel build as :meth:`warm` (see there).
        load_kernel()

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        payloads = [
            (self._ctor_kwargs(), workload, [request for request, _key in pairs],
             {"isolate": True,
              "attempts": {key: attempts.get(key, 0) for _request, key in pairs}})
            for workload, pairs in pending
        ]
        with ctx.Pool(processes=processes) as pool:
            for result in pool.map(_run_group, payloads):
                failures.update(self._merge_group(result))
        return self.stats.simulations - simulations_before, failures

    # ------------------------------------------------------------------
    def request_key(self, request: SimRequest) -> str:
        """Public content key of a request (used by the campaign scheduler)."""
        return self._request_key(request)

    def _request_key(self, request: SimRequest) -> str:
        """Content key of a request — no trace/profile building required."""
        return _request_content_key(self, request)

    def screen(self, requests: Sequence[SimRequest],
               keys: Optional[Sequence[str]] = None) -> Dict[str, bool]:
        """Cell-granular cache probe: request key -> "result available".

        Disk-cached results are pulled into the in-memory caches on the way
        (so a later :meth:`warm` or figure call is a memory hit), but nothing
        is ever simulated.  This is what sharded execution polls: a cell is
        *done* exactly when its key screens True here, regardless of which
        worker (or host, via a shared/synced cache directory) computed it.

        ``keys`` — when the caller already holds the content keys (aligned
        with ``requests``) — skips recomputing the fingerprints.
        """
        availability: Dict[str, bool] = {}
        for index, request in enumerate(requests):
            key = keys[index] if keys is not None else self._request_key(request)
            has, inject = self._cache_ops(request.kind)
            if has(key):
                availability[key] = True
                continue
            if self.disk_cache is not None:
                stored = self.disk_cache.get(self._disk_key(key))
                if stored is not None:
                    self.stats.disk_hits += 1
                    inject(key, stored, persist=False)
                    availability[key] = True
                    continue
            availability[key] = False
        return availability

    def _pending_groups(self, requests: Sequence[SimRequest]):
        """Group not-yet-cached requests by workload, preserving order.

        Keys are derived from workload *definitions*, so screening a fully
        cached campaign costs no setup work at all.
        """
        keys = [self._request_key(request) for request in requests]
        availability = self.screen(requests, keys=keys)
        groups: Dict[str, List[SimRequest]] = {}
        for request, key in zip(requests, keys):
            if availability[key]:
                continue
            groups.setdefault(request.workload, []).append(request)
        return list(groups.items())

    def _cache_ops(self, kind: str):
        """(has, inject) cache accessors for one request kind."""
        if kind == "baseline":
            return self.has_baseline, self.inject_baseline
        if kind == "segmented":
            return self.has_segmented, self.inject_segmented
        return self.has_dla, self.inject_dla

    def _merge_group(self, result) -> Dict[str, Dict[str, object]]:
        _workload, outcomes, worker_stats, warm_delta = result
        # Workers share this runner's disk-cache setting (see _ctor_kwargs):
        # if the disk cache is on, every fresh outcome was already persisted
        # by the worker that computed it — don't pickle it all again here.
        failures: Dict[str, Dict[str, object]] = {}
        for kind, key, outcome in outcomes:
            if kind == "failed":
                # Isolated-mode sentinel: ``outcome`` is a failure payload,
                # not a result.  Nothing is cached — the cell stays pending.
                failures[key] = outcome
                continue
            _has, inject = self._cache_ops(kind)
            inject(key, outcome, persist=False)
        self.stats.merge(worker_stats)
        for name, value in warm_delta.items():
            self._worker_warm[name] = self._worker_warm.get(name, 0) + value
        return failures
