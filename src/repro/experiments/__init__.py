"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(runner=None)`` returning a result
object with the raw rows plus a ``render()``-style text table, and can also
be executed as a script (``python -m repro.experiments.fig09_speedup``).
The shared :class:`~repro.experiments.runner.ExperimentRunner` caches
workload traces, profiles and baseline simulations so that running the whole
benchmark suite does not repeat work.

Mapping to the paper (see DESIGN.md for the full index):

========================  =====================================
Module                    Paper artefact
========================  =====================================
``fig01_ilp``             Fig. 1 (implicit parallelism)
``fig05_fetch_model``     Fig. 5 (analytic fetch-buffer model)
``fig09_speedup``         Fig. 9-a and 9-b (overall speedups)
``table02_activity``      Table II (activity / energy / power)
``fig10_energy``          Fig. 10 (CPU and DRAM energy)
``fig11_smt``             Fig. 11 (SMT-core scenarios)
``table03_mpki``          Table III (strided vs. other L1 MPKI)
``fig12_t1``              Fig. 12 (T1 vs. stride prefetcher)
``fig13_breakdown``       Fig. 13-a/b/c (FB, recycle, synergy)
``fig14_queue_validation`` Fig. 14 (model vs. simulated queue)
``fig15_recycle_dist``    Fig. 15 (skeleton version distribution)
========================  =====================================
"""

from repro.experiments.cache import ResultDiskCache
from repro.experiments.fingerprint import code_salt, fingerprint
from repro.experiments.parallel import ParallelExperimentRunner, SimRequest
from repro.experiments.runner import (
    ExperimentRunner,
    RunnerStats,
    SegmentedOutcome,
    WorkloadSetup,
)

__all__ = [
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "ResultDiskCache",
    "RunnerStats",
    "SegmentedOutcome",
    "SimRequest",
    "WorkloadSetup",
    "code_salt",
    "fingerprint",
]
