"""Fig. 13 — individual optimizations and their synergy.

(a) A fetch buffer added to the baseline vs added to DLA: BOQ-driven fetch
    makes the larger buffer far more useful (and never harmful).
(b) Skeleton recycling with dynamic (on-line) vs static (off-line) tuning:
    both help; static tuning is consistently at least as good because it
    never pays for trying suboptimal versions.
(c) Each technique applied *first* (on top of baseline DLA) vs applied
    *last* (added to a system that already has the other techniques): the
    last-applied increment is larger, demonstrating the synergy argument of
    Sec. IV-C4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean


@dataclass
class Fig13Result:
    fetch_buffer_rows: List[Dict[str, object]]
    recycle_rows: List[Dict[str, object]]
    synergy_rows: List[Dict[str, object]]

    def render(self) -> str:
        lines = ["Fig. 13-a — fetch buffer over BL vs over DLA", ""]
        lines.append(format_table(self.fetch_buffer_rows))
        lines.append("")
        lines.append("Fig. 13-b — dynamic vs static recycle tuning")
        lines.append(format_table(self.recycle_rows))
        lines.append("")
        lines.append("Fig. 13-c — technique applied first vs last")
        lines.append(format_table(self.synergy_rows))
        return "\n".join(lines)


def _fetch_buffer_study(runner: ExperimentRunner) -> List[Dict[str, object]]:
    bl_gains, dla_gains = [], []
    for setup in runner.setups():
        small = runner.baseline(setup, "bl")
        big_cfg = runner.system_config.with_overrides(fetch_buffer_entries=32)
        big = runner.baseline(setup, "bl-fb32", big_cfg)
        bl_gains.append(small.cycles / big.cycles)

        dla_small = runner.dla(setup, DlaConfig().baseline_dla(), "dla")
        dla_big = runner.dla(setup, DlaConfig().with_optimizations(fetch_buffer=True), "dla-fb")
        dla_gains.append(dla_small.cycles / dla_big.cycles)
    return [
        {"configuration": "FB over BL", "geomean": geometric_mean(bl_gains),
         "min": min(bl_gains), "max": max(bl_gains)},
        {"configuration": "FB over DLA", "geomean": geometric_mean(dla_gains),
         "min": min(dla_gains), "max": max(dla_gains)},
    ]


def _recycle_study(runner: ExperimentRunner) -> List[Dict[str, object]]:
    dynamic_gains, static_gains = [], []
    for setup in runner.setups():
        base = runner.dla(setup, DlaConfig().with_optimizations(t1=True, value_reuse=True,
                                                                fetch_buffer=True), "r3-no-recycle")
        config = DlaConfig().r3()
        for dynamic, sink, label in ((False, static_gains, "recycle-static"),
                                     (True, dynamic_gains, "recycle-dynamic")):
            outcome = runner.dla_segmented(setup, config, dynamic=dynamic, label=label)
            sink.append(base.cycles / outcome.cycles)
    return [
        {"configuration": "Dynamic", "geomean": geometric_mean(dynamic_gains),
         "min": min(dynamic_gains), "max": max(dynamic_gains)},
        {"configuration": "Static", "geomean": geometric_mean(static_gains),
         "min": min(static_gains), "max": max(static_gains)},
    ]


_TECHNIQUES = {
    "AS": "t1",             # the paper labels T1 offloading "AS" in Fig. 13-c
    "VR": "value_reuse",
    "FB": "fetch_buffer",
}


def _synergy_study(runner: ExperimentRunner) -> List[Dict[str, object]]:
    rows = []
    for label, flag in _TECHNIQUES.items():
        first_gains, last_gains = [], []
        for setup in runner.setups():
            base = runner.dla(setup, DlaConfig().baseline_dla(), "dla")
            only = runner.dla(setup, DlaConfig().with_optimizations(**{flag: True}),
                              f"dla-{flag}")
            first_gains.append(base.cycles / only.cycles)

            all_flags = {v: True for v in _TECHNIQUES.values()}
            full = runner.dla(setup, DlaConfig().with_optimizations(**all_flags), "dla-all3")
            without = dict(all_flags)
            without[flag] = False
            others = runner.dla(setup, DlaConfig().with_optimizations(**without),
                                f"dla-not-{flag}")
            last_gains.append(others.cycles / full.cycles)
        rows.append({
            "technique": label,
            "first": geometric_mean(first_gains),
            "last": geometric_mean(last_gains),
        })
    return rows


def run(runner: Optional[ExperimentRunner] = None,
        include_recycle: bool = True) -> Fig13Result:
    runner = runner or ExperimentRunner(quick=True)
    fetch_rows = _fetch_buffer_study(runner)
    recycle_rows = _recycle_study(runner) if include_recycle else []
    synergy_rows = _synergy_study(runner)
    return Fig13Result(
        fetch_buffer_rows=fetch_rows,
        recycle_rows=recycle_rows,
        synergy_rows=synergy_rows,
    )


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig13",
    title="Fig. 13 — individual optimizations and their synergy",
    experiment=__name__,
    description="Fetch buffer over BL vs DLA, dynamic vs static recycle "
                "tuning, and each technique applied first vs last.",
    variants=variants(
        dict(name="bl", kind="baseline"),
        dict(name="bl-fb32", kind="baseline",
             core_overrides={"fetch_buffer_entries": 32}),
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="dla-fb", kind="dla", dla_optimizations={"fetch_buffer": True}),
        dict(name="dla-t1", kind="dla", dla_optimizations={"t1": True}),
        dict(name="dla-vr", kind="dla", dla_optimizations={"value_reuse": True}),
        dict(name="dla-t1-vr", kind="dla",
             dla_optimizations={"t1": True, "value_reuse": True}),
        dict(name="dla-t1-fb", kind="dla",
             dla_optimizations={"t1": True, "fetch_buffer": True}),
        dict(name="dla-vr-fb", kind="dla",
             dla_optimizations={"value_reuse": True, "fetch_buffer": True}),
        dict(name="r3-no-recycle", kind="dla",
             dla_optimizations={"t1": True, "value_reuse": True,
                                "fetch_buffer": True}),
        dict(name="recycle-static", kind="segmented", dla_preset="r3"),
        dict(name="recycle-dynamic", kind="segmented", dla_preset="r3",
             dynamic=True),
    ),
    tags=("paper", "ablation", "recycle"),
)


def artifact_tables(result: Fig13Result) -> Dict[str, List[Dict[str, object]]]:
    return {
        "fetch_buffer": result.fetch_buffer_rows,
        "recycle": result.recycle_rows,
        "synergy": result.synergy_rows,
    }


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
