"""Fig. 12 — offloading strided prefetch: DLA+stride vs DLA+T1.

Two ways of covering strided accesses on top of baseline DLA are compared:
adding a conventional L1 stride prefetcher (DLA + Stride) versus offloading
to the T1 engine (DLA + T1).  Both speedup over plain DLA (a) and total
memory traffic normalised to plain DLA (b) are reported.  Shapes to
reproduce: T1 delivers a higher mean speedup and never slows a workload
down, while the stride prefetcher's speculative prefetches generate more
memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import SpeedupTable
from repro.analysis.reporting import format_table
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.workloads.suites import SUITES


@dataclass
class Fig12Result:
    speedup: SpeedupTable
    traffic: SpeedupTable

    def render(self) -> str:
        lines = ["Fig. 12-a — speedup over plain DLA", ""]
        lines.append(format_table(self.speedup.summary_rows(list(SUITES))))
        lines.append("")
        lines.append("Fig. 12-b — memory traffic normalised to plain DLA")
        lines.append(format_table(self.traffic.summary_rows(list(SUITES))))
        return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None) -> Fig12Result:
    runner = runner or ExperimentRunner(quick=True)
    speedup = SpeedupTable()
    traffic = SpeedupTable()
    stride_config = runner.with_l1_stride_config()
    for setup in runner.setups():
        dla = runner.dla(setup, DlaConfig().baseline_dla(), "dla")
        dla_stride = runner.dla(setup, DlaConfig().baseline_dla(), "dla-stride", stride_config)
        dla_t1 = runner.dla(setup, DlaConfig().with_optimizations(t1=True), "dla-t1")

        speedup.record("DLA + Stride", setup.name, dla.cycles / dla_stride.cycles, setup.suite)
        speedup.record("DLA + T1", setup.name, dla.cycles / dla_t1.cycles, setup.suite)
        base_traffic = max(1, dla.memory_traffic)
        traffic.record("DLA + Stride", setup.name,
                       dla_stride.memory_traffic / base_traffic, setup.suite)
        traffic.record("DLA + T1", setup.name,
                       dla_t1.memory_traffic / base_traffic, setup.suite)
    return Fig12Result(speedup=speedup, traffic=traffic)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig12",
    title="Fig. 12 — offloading strided prefetch: DLA+stride vs DLA+T1",
    experiment=__name__,
    description="Speedup over plain DLA and memory traffic of an L1 stride "
                "prefetcher vs the T1 offload engine.",
    variants=variants(
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="dla-stride", kind="dla", dla_preset="dla", prefetch="l1stride"),
        dict(name="dla-t1", kind="dla", dla_optimizations={"t1": True}),
    ),
    tags=("paper", "prefetch"),
)


def artifact_tables(result: Fig12Result) -> Dict[str, List[Dict[str, object]]]:
    return {
        "speedup": result.speedup.summary_rows(list(SUITES)),
        "traffic": result.traffic.summary_rows(list(SUITES)),
    }


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
