"""On-disk result cache for experiment campaigns.

Large evaluation campaigns re-run the same (workload, configuration) pairs
across many figures, pytest sessions and sweep scripts.  The disk cache
persists finished :class:`~repro.core.system.SimulationOutcome` /
:class:`~repro.dla.system.DlaOutcome` objects under ``.repro_cache/`` keyed
by content fingerprint plus a source-code salt (see
:mod:`repro.experiments.fingerprint`), so repeated campaigns skip straight
to result assembly while code changes transparently invalidate everything.

Writes are atomic (temp file + ``os.replace``) so concurrent experiment
processes can share one cache directory safely.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Optional

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to ``0`` to disable the disk cache entirely.
CACHE_ENABLE_ENV = "REPRO_DISK_CACHE"
DEFAULT_CACHE_DIR = ".repro_cache"


def disk_cache_enabled() -> bool:
    """Whether the on-disk cache is enabled for this process (default: yes)."""
    return os.environ.get(CACHE_ENABLE_ENV, "1") not in ("0", "false", "no")


def salted_key(key: str) -> str:
    """The on-disk form of a content ``key``: code-salt prefixed.

    The single definition of the disk-key format — the runner's cache path
    and the campaign store's status probes must stay in lockstep.
    """
    from repro.experiments.fingerprint import code_salt

    return f"{code_salt()}-{key}"


class ResultDiskCache:
    """A tiny content-addressed pickle store with atomic writes."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = Path(
            directory or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Cheap presence probe (no unpickling; no hit/miss accounting)."""
        return self._path(key).exists()

    def get(self, key: str) -> Optional[Any]:
        """The cached object for ``key`` or ``None``.

        Any deserialisation problem (truncated file, schema drift, ...) is
        treated as a miss: the cache is an accelerator, never a source of
        errors.
        """
        try:
            with open(self._path(key), "rb") as fh:
                obj = pickle.load(fh)
        except Exception:
            # Unpickling a truncated/corrupted/stale file can raise nearly
            # anything (OSError, UnpicklingError, ValueError, ImportError,
            # ...); all of it means the same thing here: not cached.
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def put(self, key: str, obj: Any) -> None:
        """Store ``obj`` under ``key`` (atomic, last-writer-wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self._path(key)
        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, final)
        except Exception:
            # A read-only/full filesystem or an unpicklable outcome silently
            # degrades to no caching — same contract as get(): the cache is
            # an accelerator, never a source of errors.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
