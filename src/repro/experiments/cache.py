"""On-disk result cache for experiment campaigns.

Large evaluation campaigns re-run the same (workload, configuration) pairs
across many figures, pytest sessions and sweep scripts.  The disk cache
persists finished :class:`~repro.core.system.SimulationOutcome` /
:class:`~repro.dla.system.DlaOutcome` objects under ``.repro_cache/`` keyed
by content fingerprint plus a source-code salt (see
:mod:`repro.experiments.fingerprint`), so repeated campaigns skip straight
to result assembly while code changes transparently invalidate everything.

Integrity contract (what makes the cache safe to *share* across crashing
workers and synced directories):

* every entry is framed as ``magic + CRC-32 + pickle body`` and the
  checksum is verified on read; a truncated, bit-rotted or stale-format
  entry is **quarantined** — moved to ``.repro_cache/quarantine/``, never
  deleted, so corruption stays inspectable — and treated as a miss, which
  simply re-simulates the cell;
* writes are crash-consistent: temp file + fsync *before* the atomic
  ``os.replace`` (plus a best-effort directory fsync after it), so a crash
  can never promote unsynced bytes to a final cache name;
* aged ``*.tmp.*`` debris left by killed writers is swept on cache open.

The cache therefore remains what it always was — an accelerator, never a
source of errors — under partial writes, kill -9, and hostile filesystems.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Optional

from repro.util.durability import atomic_write_bytes, sweep_orphan_tmps

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to ``0`` to disable the disk cache entirely.
CACHE_ENABLE_ENV = "REPRO_DISK_CACHE"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory corrupt entries are moved to (never deleted).
QUARANTINE_DIR = "quarantine"

#: Entry framing: magic + big-endian CRC-32 of the pickle body.
ENTRY_MAGIC = b"RPRC1\n"
_CRC_STRUCT = struct.Struct(">I")
_HEADER_LEN = len(ENTRY_MAGIC) + _CRC_STRUCT.size


def disk_cache_enabled() -> bool:
    """Whether the on-disk cache is enabled for this process (default: yes)."""
    return os.environ.get(CACHE_ENABLE_ENV, "1") not in ("0", "false", "no")


def salted_key(key: str) -> str:
    """The on-disk form of a content ``key``: code-salt prefixed.

    The single definition of the disk-key format — the runner's cache path
    and the campaign store's status probes must stay in lockstep.
    """
    from repro.experiments.fingerprint import code_salt

    return f"{code_salt()}-{key}"


def encode_entry(body: bytes) -> bytes:
    """Frame a pickle body with magic + CRC-32 (the on-disk entry format)."""
    return ENTRY_MAGIC + _CRC_STRUCT.pack(zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_entry(data: bytes) -> Optional[bytes]:
    """The verified pickle body of a framed entry, or ``None`` on any
    integrity problem (bad magic, short header, checksum mismatch)."""
    if not data.startswith(ENTRY_MAGIC) or len(data) < _HEADER_LEN:
        return None
    (crc,) = _CRC_STRUCT.unpack_from(data, len(ENTRY_MAGIC))
    body = data[_HEADER_LEN:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    return body


class ResultDiskCache:
    """A content-addressed pickle store with checksums and atomic writes."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = Path(
            directory or os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        )
        self.hits = 0
        self.misses = 0
        #: Entries quarantined by this instance (integrity failures on read).
        self.quarantined = 0
        # Hygiene: a writer killed mid-put leaves `<key>.pkl.tmp.<pid>`
        # behind; sweep aged debris so it cannot accumulate (age-gated, so
        # concurrent live writers are never raced).
        sweep_orphan_tmps(self.directory)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    @property
    def quarantine_path(self) -> Path:
        return self.directory / QUARANTINE_DIR

    def contains(self, key: str) -> bool:
        """Cheap presence probe (no read; no hit/miss accounting).

        Optimistic by design: a corrupt entry still "contains" until the
        first real :meth:`get` quarantines it — exactness here would cost a
        full read per probe, and every consumer that acts on availability
        (the campaign screen) goes through :meth:`get`.
        """
        return self._path(key).exists()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never delete) and count it."""
        try:
            self.quarantine_path.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_path / path.name)
            self.quarantined += 1
        except OSError:
            # Quarantine is best-effort: on failure the entry stays put and
            # keeps reading as a miss (every get() re-fails its checksum).
            pass

    def quarantine_count(self) -> int:
        """Quarantined entries on disk (durable, across all processes)."""
        if not self.quarantine_path.is_dir():
            return 0
        try:
            return sum(1 for _ in self.quarantine_path.glob("*.pkl"))
        except OSError:
            return 0

    def get(self, key: str) -> Optional[Any]:
        """The cached object for ``key`` or ``None``.

        Any integrity or deserialisation problem (truncated file, checksum
        mismatch, schema drift, pre-checksum legacy debris) quarantines the
        entry and is treated as a miss: the cache is an accelerator, never
        a source of errors — and never a source of silently-wrong results.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        body = decode_entry(data)
        if body is None:
            # Bad frame: truncated write, bit rot, or a legacy (unframed)
            # entry from before checksumming.  Either way it is not
            # trustworthy — quarantine it and re-simulate.
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            obj = pickle.loads(body)
        except Exception:
            # The checksum passed but the pickle does not load (schema
            # drift across an un-salted refactor, interpreter mismatch).
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def put(self, key: str, obj: Any) -> None:
        """Store ``obj`` under ``key`` (checksummed, fsynced, atomic)."""
        final = self._path(key)
        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        try:
            body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            data = encode_entry(body)
            from repro.util import faults

            spec = faults.probe(faults.SITE_CACHE_WRITE, key=key)
            if spec is not None and spec.kind == "truncate":
                # Chaos harness: persist a torn write — keep the header so
                # the file looks plausible, cut the body so the checksum
                # verify on the next read must catch it.
                data = data[: max(_HEADER_LEN + 1, len(data) // 2)]
            atomic_write_bytes(final, data, tmp=tmp)
        except Exception:
            # A read-only/full filesystem or an unpicklable outcome silently
            # degrades to no caching — same contract as get(): the cache is
            # an accelerator, never a source of errors.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed.

        Quarantined entries are deliberately kept — they are evidence, and
        ``quarantine/`` is outside the ``*.pkl`` glob."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
