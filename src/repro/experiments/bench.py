"""Throughput reporting for the benchmark harness.

``BENCH_sim_throughput.json`` at the repository root records, per run mode,
how fast the simulator chews through dynamic instructions and how long the
suite took — one number series to watch PR-over-PR for performance
regressions.  The file is read-modify-written so the quick suite, the
``REPRO_FULL_EVAL=1`` suite and the perf smoke script each own one key.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

BENCH_REPORT_NAME = "BENCH_sim_throughput.json"


def repo_root() -> Path:
    """Where the throughput report lives.

    For a source checkout / editable install this is the repository root
    (three levels above this file: ``repo/src/repro/experiments``).  For a
    site-packages install that directory is the interpreter's lib dir —
    littering it would be wrong, so fall back to the current directory.
    """
    candidate = Path(__file__).resolve().parents[3]
    markers = (".git", "pytest.ini", BENCH_REPORT_NAME)
    if any((candidate / marker).exists() for marker in markers):
        return candidate
    return Path.cwd()


def update_bench_report(section: str, payload: Dict[str, object],
                        path: Optional[Path] = None) -> Path:
    """Merge ``payload`` under ``section`` into the throughput report."""
    path = path or repo_root() / BENCH_REPORT_NAME
    try:
        report = json.loads(path.read_text())
        if not isinstance(report, dict):
            report = {}
    except (OSError, ValueError):
        report = {}
    payload = dict(payload)
    payload["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    report[section] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
