"""Fig. 5 — analytic fetch-buffer model.

(a) The steady-state queue-length distribution for capacities 8 and 32 under
    an I-cache and a trace-cache supply distribution;
(b) the expected number of fetch bubbles as the capacity grows.

The paper derives both from the Markov-chain model of Appendix B with
empirically measured demand/supply distributions (povray in the paper; the
most front-end-sensitive of our workloads here).  The shape to reproduce:
larger capacity sharply reduces the probability of an empty queue and drives
expected bubbles from >1 towards a small fraction, while the trace cache adds
little once the buffer is large.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.analytic import FetchBufferModel, empirical_distributions
from repro.experiments.runner import ExperimentRunner

CAPACITIES = (8, 12, 16, 20, 24, 28, 32)
#: The workload standing in for povray (front-end heavy, branchy).
DEFAULT_WORKLOAD = "sjeng"


@dataclass
class Fig05Result:
    queue_distributions: Dict[str, List[float]]
    bubble_curves: Dict[str, Dict[int, float]]

    def render(self) -> str:
        tables = artifact_tables(self)
        lines = ["Fig. 5 — fetch buffer analytic model", ""]
        lines.append("(a) steady-state queue length distribution")
        lines.append(format_table(tables["queue_distribution"]))
        lines.append("")
        lines.append("(b) expected fetch bubbles vs capacity")
        lines.append(format_table(tables["bubbles"]))
        return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None,
        workload: str = DEFAULT_WORKLOAD) -> Fig05Result:
    runner = runner or ExperimentRunner(quick=True)
    setup = runner.setup(workload)
    sample = setup.timed[: min(len(setup.timed), 6000)]
    distributions = empirical_distributions(sample, runner.system_config)

    icache_model = FetchBufferModel(distributions.demand, distributions.supply)
    trace_model = FetchBufferModel(distributions.demand, distributions.trace_cache_supply)

    queue_distributions = {
        "icache_cap8": list(icache_model.steady_state(8)),
        "icache_cap32": list(icache_model.steady_state(32)),
        "trace_cap8": list(trace_model.steady_state(8)),
        "trace_cap32": list(trace_model.steady_state(32)),
    }
    bubble_curves = {
        "icache": icache_model.bubble_curve(CAPACITIES),
        "trace_cache": trace_model.bubble_curve(CAPACITIES),
    }
    return Fig05Result(queue_distributions=queue_distributions, bubble_curves=bubble_curves)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig05",
    title="Fig. 5 — analytic fetch-buffer model",
    experiment=__name__,
    description="Markov-chain queue-length distributions and expected fetch "
                "bubbles vs capacity (I-cache vs trace-cache supply).",
    workloads=(DEFAULT_WORKLOAD,),
    tags=("paper", "analysis"),
)


def artifact_tables(result: Fig05Result) -> Dict[str, List[Dict[str, object]]]:
    length = max(len(d) for d in result.queue_distributions.values())
    queue_rows: List[Dict[str, object]] = []
    for i in range(length):
        row: Dict[str, object] = {"queue_length": i}
        for label, dist in result.queue_distributions.items():
            row[label] = dist[i] if i < len(dist) else 0.0
        queue_rows.append(row)
    bubble_rows: List[Dict[str, object]] = []
    for capacity in CAPACITIES:
        row = {"capacity": capacity}
        for label, curve in result.bubble_curves.items():
            row[label] = curve[capacity]
        bubble_rows.append(row)
    return {"queue_distribution": queue_rows, "bubbles": bubble_rows}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
