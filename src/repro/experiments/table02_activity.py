"""Table II — activity, energy and power of the two threads.

For DLA and R3-DLA, report the look-ahead thread's and main thread's decode
(D), execute (X) and commit (C) activity, dynamic energy, dynamic power,
static power and total power, all normalised to the baseline core running the
same workload.  Shapes to reproduce: the look-ahead thread decodes/executes
roughly a third to a half of the baseline's instructions (less under R3-DLA
than DLA thanks to T1), its dynamic power is well below the baseline's, and
the main thread's activity is slightly below baseline (fewer wrong-path
instructions) while its power is comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.core.energy import EnergyModel
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean


@dataclass
class Table02Result:
    rows: List[Dict[str, object]]

    def render(self) -> str:
        return "Table II — activity / energy / power normalised to baseline\n\n" + format_table(
            self.rows
        )


def _thread_row(label: str, thread_result, thread_energy, baseline, baseline_energy) -> Dict[str, object]:
    return {
        "config": label,
        "D": thread_result.decoded / max(1, baseline.core.decoded),
        "X": thread_result.executed / max(1, baseline.core.executed),
        "C": thread_result.committed / max(1, baseline.core.committed),
        "dyn_energy": thread_energy.dynamic / max(1e-9, baseline_energy.dynamic),
        "dyn_power": thread_energy.dynamic_power / max(1e-9, baseline_energy.dynamic_power),
        "static_power": thread_energy.static_power / max(1e-9, baseline_energy.static_power),
        "power": thread_energy.total_power / max(1e-9, baseline_energy.total_power),
    }


def run(runner: Optional[ExperimentRunner] = None) -> Table02Result:
    runner = runner or ExperimentRunner(quick=True)
    accumulators: Dict[str, List[Dict[str, float]]] = {}
    for setup in runner.setups():
        baseline = runner.baseline(setup, "bl")
        baseline_energy = baseline.energy
        for config_label, dla_config in (
            ("DLA", DlaConfig().baseline_dla()),
            ("R3-DLA", DlaConfig().r3()),
        ):
            outcome = runner.dla(setup, dla_config, config_label.lower())
            for thread_label, result, energy in (
                ("LT", outcome.lookahead, outcome.lookahead_energy),
                ("MT", outcome.main, outcome.main_energy),
            ):
                row = _thread_row(f"{config_label} {thread_label}", result, energy,
                                  baseline, baseline_energy)
                accumulators.setdefault(row["config"], []).append(
                    {k: v for k, v in row.items() if k != "config"}
                )

    rows: List[Dict[str, object]] = []
    for config_label, samples in accumulators.items():
        averaged: Dict[str, object] = {"config": config_label}
        for key in samples[0]:
            values = [max(1e-9, sample[key]) for sample in samples]
            averaged[key] = geometric_mean(values)
        rows.append(averaged)
    return Table02Result(rows=rows)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="table02",
    title="Table II — activity, energy and power of the two threads",
    experiment=__name__,
    description="Decode/execute/commit activity and power of the look-ahead "
                "and main threads, normalised to the baseline core.",
    variants=variants(
        dict(name="bl", kind="baseline"),
        dict(name="dla", kind="dla", dla_preset="dla"),
        dict(name="r3", kind="dla", dla_preset="r3"),
    ),
    tags=("paper", "energy"),
)


def artifact_tables(result: Table02Result) -> Dict[str, List[Dict[str, object]]]:
    return {"activity": result.rows}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
