"""Memory-backend contention sweeps — how much backend does R3-DLA need?

The decoupled look-ahead thread's value proposition is prefetching far ahead
of the main thread, which only pays while the memory backend can absorb the
resulting traffic.  PR 3 made the MSHR files real; this module generalises
that single-axis sweep into one machinery covering every contention resource
of the backend:

* **MSHR capacity** (``mshr`` axis — the original ``mshr-sweep``),
* **victim write-buffer depth** (``wb`` axis — dirty writebacks become
  timing-relevant and back-pressure fills),
* **DRAM controller queue depth** (``dramq`` axis — a full read/write queue
  delays demand fills and write-buffer drains alike),
* and a **machine comparison** (``memsys-sweep``) that pits named machine
  points — uncontended, the stock default, each resource tightened alone,
  and a fully contended machine — against each other.

Every axis sweeps the baseline and R3-DLA and reports throughput relative
to the axis's uncontended reference point, plus the total contention stall
cycles from the unified ``memsys`` telemetry, which show *where* the
backend saturates.  The thin modules :mod:`repro.experiments.mshr_sweep`,
:mod:`repro.experiments.wb_sweep` and :mod:`repro.experiments.dramq_sweep`
bind one axis each so every campaign keeps the one-``run()``-per-module
contract of the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.reporting import format_bar_chart, format_table
from repro.core.config import SystemConfig
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean

#: Swept MSHR-file capacities; ``None`` is the unbounded reference machine.
MSHR_SETTINGS = (4, 8, 16, 32, None)
#: Swept victim write-buffer depths; ``None`` is the bufferless reference.
WB_SETTINGS = (1, 2, 4, 8, None)
#: Swept DRAM read/write queue depths; ``None`` is the unbounded reference.
DRAMQ_SETTINGS = (2, 4, 8, 16, None)


@dataclass(frozen=True)
class SweepAxis:
    """One swept contention knob: settings, labels and materialisation."""

    #: Short axis name (used in variant names: ``bl-<axis>-<label>``).
    name: str
    #: Column header in rendered tables / artifact rows.
    column: str
    #: ``ConfigVariant`` field that declares one setting (0 = the ``None``
    #: setting).
    variant_field: str
    #: Swept settings; must contain ``None`` (the reference machine).
    settings: Tuple[Optional[int], ...]
    #: Label of the ``None`` setting ("inf" for unbounded, "off" for absent).
    none_label: str
    #: ``SystemConfig`` -> setting -> concrete config.
    configure: Callable[[SystemConfig, Optional[int]], SystemConfig]
    title: str = ""

    def label(self, setting: Optional[int]) -> str:
        return self.none_label if setting is None else str(setting)


AXIS_MSHR = SweepAxis(
    name="mshr",
    column="mshr",
    variant_field="mshr_entries",
    settings=MSHR_SETTINGS,
    none_label="inf",
    configure=lambda base, s: base.with_mshr_entries(s),
    title="MSHR sweep — throughput relative to unbounded MSHRs",
)

AXIS_WB = SweepAxis(
    name="wb",
    column="wb",
    variant_field="write_buffer_entries",
    settings=WB_SETTINGS,
    none_label="off",
    configure=lambda base, s: base.with_write_buffer(s),
    title="Write-buffer sweep — throughput relative to instant-drain victims",
)

AXIS_DRAMQ = SweepAxis(
    name="dramq",
    column="dramq",
    variant_field="dram_queue_depth",
    settings=DRAMQ_SETTINGS,
    none_label="inf",
    configure=lambda base, s: base.with_dram_queue(s),
    title="DRAM-queue sweep — throughput relative to unbounded queues",
)

#: Named machine points of the ``memsys-sweep`` comparison.  Knobs absent
#: from a machine's dict keep the runner's base configuration; ``None``
#: means "model off / unbounded" explicitly.  The ``uncontended`` machine is
#: the relative-IPC reference.
MEMSYS_MACHINES: Tuple[Tuple[str, Mapping[str, Optional[int]]], ...] = (
    ("uncontended", dict(mshr_entries=None, mshr_banks=None,
                         write_buffer_entries=None, dram_queue_depth=None)),
    ("default", dict()),
    ("mshr8", dict(mshr_entries=8)),
    ("banked8x2", dict(mshr_entries=8, mshr_banks=2)),
    ("wb4", dict(write_buffer_entries=4)),
    ("dramq8", dict(dram_queue_depth=8)),
    ("contended", dict(mshr_entries=8, mshr_banks=2,
                       write_buffer_entries=4, dram_queue_depth=8)),
)

#: The reference machine every memsys point is normalised against.
MEMSYS_REFERENCE = "uncontended"


def machine_config(base: SystemConfig,
                   knobs: Mapping[str, Optional[int]]) -> SystemConfig:
    """Materialise one named machine point against ``base``."""
    return base.with_memsys(**dict(knobs))


@dataclass
class MemsysSweepResult:
    """Result of one contention sweep (any axis, or the machine comparison).

    ``per_workload`` maps workload -> point label -> ``{"bl": rel IPC,
    "r3": rel IPC, "bl_stall_cycles": ..., "r3_stall_cycles": ...}`` where
    the stall cycles are the *total* contention waits (MSHR + write buffer +
    DRAM queue) from the unified ``memsys`` telemetry.
    """

    column: str
    title: str
    per_workload: Dict[str, Dict[str, Dict[str, float]]]
    #: point label -> geomean relative IPC per machine ("bl"/"r3").
    geomean: Dict[str, Dict[str, float]]

    def render(self) -> str:
        rows: List[Dict[str, object]] = []
        for workload, by_point in self.per_workload.items():
            for label, values in by_point.items():
                row: Dict[str, object] = {"workload": workload, self.column: label}
                row.update(values)
                rows.append(row)
        lines = [self.title, ""]
        lines.append(format_table(rows))
        lines.append("")
        lines.append("geomean relative IPC (baseline):")
        lines.append(format_bar_chart(
            {label: values["bl"] for label, values in self.geomean.items()}
        ))
        lines.append("geomean relative IPC (R3-DLA):")
        lines.append(format_bar_chart(
            {label: values["r3"] for label, values in self.geomean.items()}
        ))
        return "\n".join(lines)


def contention_stall_cycles(memsys: Optional[Mapping]) -> float:
    """Total contention waits in a ``memsys`` telemetry dict.

    Sums every ``stall_cycles`` leaf — MSHR files, write buffers and DRAM
    queues all report their waits under that one key (the point of the
    uniform telemetry spine) — across arbitrarily nested domains
    (single-core, or the DLA's main/lookahead/shared split).
    """
    if not memsys:
        return 0.0
    total = 0.0
    for key, value in memsys.items():
        if key == "stall_cycles":
            total += value
        elif isinstance(value, Mapping):
            total += contention_stall_cycles(value)
    return total


def _geomean_by_label(per_workload, labels) -> Dict[str, Dict[str, float]]:
    return {
        label: {
            machine: geometric_mean([
                by_point[label][machine] for by_point in per_workload.values()
            ])
            for machine in ("bl", "r3")
        }
        for label in labels
    }


def run_points(runner: ExperimentRunner, column: str, title: str,
               points: List[Tuple[str, SystemConfig]],
               reference: str) -> MemsysSweepResult:
    """Sweep named configuration points for BL and R3-DLA.

    ``points`` maps labels to concrete configs; ``reference`` names the
    point both machines are normalised against (requested first so its
    cells cache-alias with the swept copy).
    """
    r3 = DlaConfig().r3()
    by_label = dict(points)
    reference_cfg = by_label[reference]
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}

    for setup in runner.setups():
        bl_ref = runner.baseline(setup, f"bl-{column}-{reference}", reference_cfg)
        r3_ref = runner.dla(setup, r3, f"r3-{column}-{reference}", reference_cfg)
        by_point: Dict[str, Dict[str, float]] = {}
        for label, config in points:
            bl = runner.baseline(setup, f"bl-{column}-{label}", config)
            r3_outcome = runner.dla(setup, r3, f"r3-{column}-{label}", config)
            by_point[label] = {
                "bl": bl.ipc / bl_ref.ipc if bl_ref.ipc else 0.0,
                "r3": r3_outcome.ipc / r3_ref.ipc if r3_ref.ipc else 0.0,
                "bl_stall_cycles": contention_stall_cycles(bl.memsys),
                "r3_stall_cycles": contention_stall_cycles(r3_outcome.memsys),
            }
        per_workload[setup.name] = by_point

    labels = [label for label, _config in points]
    return MemsysSweepResult(
        column=column,
        title=title,
        per_workload=per_workload,
        geomean=_geomean_by_label(per_workload, labels),
    )


def run_axis(runner: ExperimentRunner, axis: SweepAxis) -> MemsysSweepResult:
    """Sweep one contention axis (its ``None`` setting is the reference)."""
    base = runner.system_config
    points = [
        (axis.label(setting), axis.configure(base, setting))
        for setting in axis.settings
    ]
    return run_points(runner, axis.column, axis.title, points,
                      reference=axis.label(None))


def run(runner: Optional[ExperimentRunner] = None) -> MemsysSweepResult:
    """The ``memsys-sweep`` machine comparison (see :data:`MEMSYS_MACHINES`)."""
    runner = runner or ExperimentRunner(quick=True)
    base = runner.system_config
    points = [
        (name, machine_config(base, knobs)) for name, knobs in MEMSYS_MACHINES
    ]
    return run_points(
        runner, "machine",
        "Memory-backend machines — throughput relative to the uncontended "
        "(infinite-resource) machine",
        points, reference=MEMSYS_REFERENCE,
    )


def artifact_tables(result: MemsysSweepResult) -> Dict[str, List[Dict[str, object]]]:
    """Structured tables shared by every sweep campaign of this family."""
    sensitivity = [
        {"workload": workload, result.column: label, **values}
        for workload, by_point in result.per_workload.items()
        for label, values in by_point.items()
    ]
    curve = [
        {result.column: label, **values}
        for label, values in result.geomean.items()
    ]
    return {"sensitivity": sensitivity, "curve": curve}


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402


def axis_variants(axis: SweepAxis) -> tuple:
    """The BL/R3 variant matrix of one axis sweep (0 = the ``None`` point)."""
    specs = []
    for setting in axis.settings:
        label = axis.label(setting)
        declared = 0 if setting is None else setting
        specs.append({
            "name": f"bl-{axis.name}-{label}", "kind": "baseline",
            axis.variant_field: declared,
        })
        specs.append({
            "name": f"r3-{axis.name}-{label}", "kind": "dla",
            "dla_preset": "r3", axis.variant_field: declared,
        })
    return variants(*specs)


def _machine_variants() -> tuple:
    specs = []
    for name, knobs in MEMSYS_MACHINES:
        declared = {
            field: (0 if value is None else value)
            for field, value in knobs.items()
        }
        specs.append({"name": f"bl-{name}", "kind": "baseline", **declared})
        specs.append({"name": f"r3-{name}", "kind": "dla",
                      "dla_preset": "r3", **declared})
    return variants(*specs)


CAMPAIGN = CampaignSpec(
    name="memsys-sweep",
    title="Memory-backend machines — BL vs R3-DLA under contention models",
    experiment=__name__,
    description="Throughput of the baseline and R3-DLA on named "
                "memory-backend machine points (uncontended, stock default, "
                "tight MSHRs, banked MSHRs, victim write buffers, bounded "
                "DRAM queues, and the fully contended machine), relative to "
                "the uncontended reference.",
    variants=_machine_variants(),
    tags=("sweep", "memsys", "memory"),
)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
