"""Fig. 1 — implicit parallelism of integer applications.

For each SPEC-like integer workload, measure the dataflow-limit IPC with
moving windows of 128/512/2048 instructions under ideal and realistic
instruction/data supply.  The paper's observation to reproduce: with a
realistic supply subsystem the exploitable parallelism drops by roughly 5x
on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.ilp import measure_implicit_parallelism
from repro.analysis.reporting import format_table
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean

#: The integer applications shown in Fig. 1 (our analogues).
SPEC_INT_WORKLOADS = [
    "astar", "bzip2", "gobmk", "h264ref", "hmmer",
    "libquantum", "mcf", "omnetpp", "sjeng", "xalancbmk",
]

WINDOWS = (128, 512, 2048)


@dataclass
class Fig01Result:
    rows: List[Dict[str, object]]
    geomean_ratio: Dict[int, float]

    def render(self) -> str:
        lines = ["Fig. 1 — implicit parallelism (IPC), ideal vs real supply", ""]
        lines.append(format_table(self.rows))
        lines.append("")
        for window in WINDOWS:
            lines.append(
                f"window {window}: ideal/real parallelism ratio (geomean) = "
                f"{self.geomean_ratio[window]:.1f}x"
            )
        return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None,
        workloads: Optional[Sequence[str]] = None) -> Fig01Result:
    runner = runner or ExperimentRunner(quick=True)
    if workloads is None:
        workloads = SPEC_INT_WORKLOADS[:4] if runner.quick else SPEC_INT_WORKLOADS
    rows: List[Dict[str, object]] = []
    ratios: Dict[int, List[float]] = {w: [] for w in WINDOWS}
    for name in workloads:
        setup = runner.setup(name)
        result = measure_implicit_parallelism(setup.timed, WINDOWS, runner.system_config)
        row: Dict[str, object] = {"workload": name}
        for window in WINDOWS:
            row[f"ideal:{window}"] = result.ideal[window]
            row[f"real:{window}"] = result.real[window]
            ratios[window].append(result.ratio(window))
        rows.append(row)
    geomean_ratio = {w: geometric_mean(v) for w, v in ratios.items()}
    return Fig01Result(rows=rows, geomean_ratio=geomean_ratio)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig01",
    title="Fig. 1 — implicit parallelism, ideal vs real supply",
    experiment=__name__,
    description="Dataflow-limit IPC with 128/512/2048-instruction windows "
                "under ideal and realistic instruction/data supply.",
    tags=("paper", "analysis"),
)


def artifact_tables(result: Fig01Result) -> Dict[str, List[Dict[str, object]]]:
    return {
        "parallelism": result.rows,
        "ratio_geomean": [
            {"window": window, "ideal_over_real": result.geomean_ratio[window]}
            for window in WINDOWS
        ],
    }


def main() -> None:  # pragma: no cover - console entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
