"""Fig. 11 — R3-DLA on a wide SMT core.

For each workload, compare four ways of spending one wide SMT core:
full-core single thread (FC), DLA across two half-cores, R3-DLA across two
half-cores, and two-copy SMT throughput — all normalised to a single
half-core.  Shape to reproduce: the wide core alone gives a modest average
gain, DLA is sometimes better and sometimes worse, R3-DLA beats both on
average, and two-copy SMT throughput tops the chart (it is a throughput
number, not single-thread performance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_bar_chart, format_table
from repro.core.system import simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.smt import comparison_from_outcomes, simulate_smt_pair, smt_configs
from repro.dla.system import DlaSystem
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean


@dataclass
class Fig11Result:
    per_workload: Dict[str, Dict[str, float]]
    geomean: Dict[str, float]

    def render(self) -> str:
        rows: List[Dict[str, object]] = []
        for name, values in self.per_workload.items():
            row: Dict[str, object] = {"workload": name}
            row.update(values)
            rows.append(row)
        lines = ["Fig. 11 — throughput normalised to a half-core", ""]
        lines.append(format_table(rows))
        lines.append("")
        lines.append("geomean across workloads:")
        lines.append(format_bar_chart(self.geomean))
        return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None,
        max_workloads: Optional[int] = None) -> Fig11Result:
    runner = runner or ExperimentRunner(quick=True)
    setups = runner.setups()
    if max_workloads is None:
        max_workloads = 4 if runner.quick else len(setups)
    per_workload: Dict[str, Dict[str, float]] = {}
    half_cfg, full_cfg = smt_configs(runner.system_config)
    dla_config = DlaConfig()
    for setup in setups[:max_workloads]:
        trace = setup.workload.trace(len(setup.timed) + len(setup.warmup)).window(
            len(setup.warmup), len(setup.timed)
        )
        # Every scenario goes through the runner's auxiliary cache (like
        # fig09's related approaches), so campaign reruns and resumes are
        # free instead of re-simulating the whole SMT matrix.
        half = runner.auxiliary(setup, "smt-hc", lambda: simulate_baseline(
            trace, half_cfg))
        full = runner.auxiliary(setup, "smt-fc", lambda: simulate_baseline(
            trace, full_cfg))
        dla = runner.auxiliary(setup, "smt-dla", lambda: DlaSystem(
            setup.program, half_cfg, dla_config.baseline_dla(),
            profile=setup.profile).simulate(trace))
        r3 = runner.auxiliary(setup, "smt-r3dla", lambda: DlaSystem(
            setup.program, half_cfg, dla_config.r3(),
            profile=setup.profile).simulate(trace))
        pair = runner.auxiliary(setup, "smt-pair", lambda: simulate_smt_pair(
            trace, full_cfg))
        comparison = comparison_from_outcomes(half, full, dla, r3, pair)
        per_workload[setup.name] = comparison.as_dict()
    geomean = {
        mode: geometric_mean([values[mode] for values in per_workload.values()])
        for mode in ("FC", "DLA", "R3-DLA", "SMT")
    }
    return Fig11Result(per_workload=per_workload, geomean=geomean)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig11",
    title="Fig. 11 — R3-DLA on a wide SMT core",
    experiment=__name__,
    description="Full-core, DLA/R3-DLA across two half-cores, and two-copy "
                "SMT throughput, normalised to a single half-core.",
    tags=("paper", "smt"),
)


def artifact_tables(result: Fig11Result) -> Dict[str, List[Dict[str, object]]]:
    throughput = [
        {"workload": name, **values}
        for name, values in result.per_workload.items()
    ]
    geomean = [{"mode": mode, "value": value} for mode, value in result.geomean.items()]
    return {"throughput": throughput, "geomean": geomean}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
