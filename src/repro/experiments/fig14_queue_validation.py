"""Fig. 14 — theoretical vs simulated fetch-buffer queue-length distribution.

The Markov-chain model of Appendix B is validated against the occupancy
histogram collected by the timing model for the same workload and capacity.
Shape to reproduce: the two distributions follow the same general trend
(which is all the paper claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.dla.analytic import (
    FetchBufferModel,
    empirical_distributions,
    simulated_queue_distribution,
)
from repro.experiments.runner import ExperimentRunner

DEFAULT_WORKLOAD = "sjeng"
CAPACITY = 32


@dataclass
class Fig14Result:
    theoretical: List[float]
    simulated: List[float]
    mean_absolute_error: float

    def render(self) -> str:
        rows = artifact_tables(self)["queue_distribution"]
        return (
            "Fig. 14 — queue-length distribution, model vs simulation\n\n"
            + format_table(rows)
            + f"\n\nmean absolute error = {self.mean_absolute_error:.4f}"
        )


def run(runner: Optional[ExperimentRunner] = None,
        workload: str = DEFAULT_WORKLOAD, capacity: int = CAPACITY) -> Fig14Result:
    runner = runner or ExperimentRunner(quick=True)
    setup = runner.setup(workload)
    sample = setup.timed[: min(len(setup.timed), 6000)]

    distributions = empirical_distributions(sample, runner.system_config)
    model = FetchBufferModel(distributions.demand, distributions.supply)
    theoretical = list(model.steady_state(capacity))

    config = runner.system_config.with_overrides(fetch_buffer_entries=capacity)
    outcome = runner.baseline(setup, f"bl-fb{capacity}", config)
    simulated = simulated_queue_distribution(outcome.core.fetch_queue_histogram, capacity)

    error = sum(abs(t - s) for t, s in zip(theoretical, simulated)) / (capacity + 1)
    return Fig14Result(theoretical=theoretical, simulated=simulated,
                       mean_absolute_error=error)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402

CAMPAIGN = CampaignSpec(
    name="fig14",
    title="Fig. 14 — fetch-buffer queue model vs simulation",
    experiment=__name__,
    description="Markov-chain queue-length distribution validated against "
                "the timing model's occupancy histogram.",
    workloads=(DEFAULT_WORKLOAD,),
    variants=variants(
        dict(name="bl-fb32", kind="baseline",
             core_overrides={"fetch_buffer_entries": CAPACITY}),
    ),
    tags=("paper", "validation"),
)


def artifact_tables(result: Fig14Result) -> Dict[str, List[Dict[str, object]]]:
    distribution = [
        {
            "queue_length": i,
            "theoretical": result.theoretical[i],
            "simulated": result.simulated[i],
        }
        for i in range(len(result.theoretical))
    ]
    return {
        "queue_distribution": distribution,
        "summary": [{"mean_absolute_error": result.mean_absolute_error}],
    }


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
