"""MSHR sensitivity — how much memory-level parallelism does R3-DLA need?

This sweep varies the per-level MSHR-file capacity (4/8/16/32/unbounded,
uniform across L1I/L1D/L2/L3) for both the baseline and R3-DLA and reports
throughput relative to the unbounded (infinite-MLP) machine, plus the
contention stall telemetry that shows where the file saturates.

Shape to expect: tiny files (4 entries) throttle both machines, but R3-DLA
degrades faster because the look-ahead thread's prefetches compete with the
main thread's demand misses for the same entries; by 32 entries both curves
are flat against the unbounded reference.

The sweep machinery itself is the generalised memory-backend harness of
:mod:`repro.experiments.memsys_sweep`; this module binds its ``mshr`` axis
(and keeps the original ``mshr-sweep`` campaign name).  The sibling axes
live in :mod:`repro.experiments.wb_sweep` (victim write buffers) and
:mod:`repro.experiments.dramq_sweep` (DRAM controller queues).
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.memsys_sweep import (
    AXIS_MSHR,
    MSHR_SETTINGS,
    MemsysSweepResult,
    artifact_tables,
    axis_variants,
    run_axis,
)
from repro.experiments.runner import ExperimentRunner

__all__ = [
    "MSHR_SETTINGS", "MshrSweepResult", "setting_label",
    "run", "CAMPAIGN", "artifact_tables",
]

#: Back-compat alias: the sweep result is the shared memsys shape now.
MshrSweepResult = MemsysSweepResult


def setting_label(entries: Optional[int]) -> str:
    return AXIS_MSHR.label(entries)


def run(runner: Optional[ExperimentRunner] = None) -> MemsysSweepResult:
    runner = runner or ExperimentRunner(quick=True)
    return run_axis(runner, AXIS_MSHR)


CAMPAIGN = CampaignSpec(
    name="mshr-sweep",
    title="MSHR sweep — MLP sensitivity of BL vs R3-DLA",
    experiment=__name__,
    description="Throughput of the baseline and R3-DLA with per-level MSHR "
                "files of 4/8/16/32/unbounded entries, relative to the "
                "unbounded (infinite-MLP) machine.",
    variants=axis_variants(AXIS_MSHR),
    tags=("sweep", "mshr", "memory"),
)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
