"""MSHR sensitivity — how much memory-level parallelism does R3-DLA need?

The decoupled look-ahead thread's value proposition is prefetching far ahead
of the main thread, which only helps while the memory system can sustain the
resulting outstanding misses.  This sweep varies the per-level MSHR-file
capacity (4/8/16/32/unbounded, uniform across L1I/L1D/L2/L3) for both the
baseline and R3-DLA and reports throughput relative to the unbounded
(infinite-MLP) machine, plus the per-level stall telemetry that shows where
the file saturates.

Shape to expect: tiny files (4 entries) throttle both machines, but R3-DLA
degrades faster because the look-ahead thread's prefetches compete with the
main thread's demand misses for the same entries; by 32 entries both curves
are flat against the unbounded reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_bar_chart, format_table
from repro.dla.config import DlaConfig
from repro.experiments.runner import ExperimentRunner
from repro.util.stats_math import geometric_mean

#: Swept MSHR-file capacities; ``None`` is the unbounded reference machine.
MSHR_SETTINGS = (4, 8, 16, 32, None)


def setting_label(entries: Optional[int]) -> str:
    return "inf" if entries is None else str(entries)


@dataclass
class MshrSweepResult:
    #: workload -> setting label -> {"bl": rel IPC, "r3": rel IPC,
    #: "bl_stall_cycles": ..., "r3_stall_cycles": ...}
    per_workload: Dict[str, Dict[str, Dict[str, float]]]
    #: setting label -> geomean relative IPC per machine ("bl"/"r3").
    geomean: Dict[str, Dict[str, float]]

    def render(self) -> str:
        rows: List[Dict[str, object]] = []
        for workload, by_setting in self.per_workload.items():
            for label, values in by_setting.items():
                row: Dict[str, object] = {"workload": workload, "mshr": label}
                row.update(values)
                rows.append(row)
        lines = ["MSHR sweep — throughput relative to unbounded MSHRs", ""]
        lines.append(format_table(rows))
        lines.append("")
        lines.append("geomean relative IPC (baseline):")
        lines.append(format_bar_chart(
            {label: values["bl"] for label, values in self.geomean.items()}
        ))
        lines.append("geomean relative IPC (R3-DLA):")
        lines.append(format_bar_chart(
            {label: values["r3"] for label, values in self.geomean.items()}
        ))
        return "\n".join(lines)


def _stall_cycles(mshr_telemetry: Optional[Dict]) -> int:
    """Total demand-miss MSHR stall cycles across the reported levels."""
    if not mshr_telemetry:
        return 0
    total = 0
    for counters in mshr_telemetry.values():
        if isinstance(counters, dict) and "stall_cycles" in counters:
            total += counters["stall_cycles"]
        elif isinstance(counters, dict):   # nested (main/lookahead/shared)
            total += _stall_cycles(counters)
    return total


def run(runner: Optional[ExperimentRunner] = None) -> MshrSweepResult:
    runner = runner or ExperimentRunner(quick=True)
    r3 = DlaConfig().r3()
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}

    for setup in runner.setups():
        reference_cfg = runner.system_config.with_mshr_entries(None)
        bl_ref = runner.baseline(setup, "bl-mshr-inf", reference_cfg)
        r3_ref = runner.dla(setup, r3, "r3-mshr-inf", reference_cfg)
        by_setting: Dict[str, Dict[str, float]] = {}
        for entries in MSHR_SETTINGS:
            label = setting_label(entries)
            config = runner.system_config.with_mshr_entries(entries)
            bl = runner.baseline(setup, f"bl-mshr-{label}", config)
            r3_outcome = runner.dla(setup, r3, f"r3-mshr-{label}", config)
            by_setting[label] = {
                "bl": bl.ipc / bl_ref.ipc if bl_ref.ipc else 0.0,
                "r3": r3_outcome.ipc / r3_ref.ipc if r3_ref.ipc else 0.0,
                "bl_stall_cycles": _stall_cycles(bl.mshr),
                "r3_stall_cycles": _stall_cycles(r3_outcome.mshr),
            }
        per_workload[setup.name] = by_setting

    geomean = {
        setting_label(entries): {
            machine: geometric_mean([
                by_setting[setting_label(entries)][machine]
                for by_setting in per_workload.values()
            ])
            for machine in ("bl", "r3")
        }
        for entries in MSHR_SETTINGS
    }
    return MshrSweepResult(per_workload=per_workload, geomean=geomean)


# ---------------------------------------------------------------------------
# campaign registration (see repro.campaign)
# ---------------------------------------------------------------------------
from repro.campaign.spec import CampaignSpec, variants  # noqa: E402


def _sweep_variants():
    specs = []
    for entries in MSHR_SETTINGS:
        label = setting_label(entries)
        declared = 0 if entries is None else entries   # 0 = unbounded in specs
        specs.append(dict(name=f"bl-mshr-{label}", kind="baseline",
                          mshr_entries=declared))
        specs.append(dict(name=f"r3-mshr-{label}", kind="dla", dla_preset="r3",
                          mshr_entries=declared))
    return variants(*specs)


CAMPAIGN = CampaignSpec(
    name="mshr-sweep",
    title="MSHR sweep — MLP sensitivity of BL vs R3-DLA",
    experiment=__name__,
    description="Throughput of the baseline and R3-DLA with per-level MSHR "
                "files of 4/8/16/32/unbounded entries, relative to the "
                "unbounded (infinite-MLP) machine.",
    variants=_sweep_variants(),
    tags=("sweep", "mshr", "memory"),
)


def artifact_tables(result: MshrSweepResult) -> Dict[str, List[Dict[str, object]]]:
    sensitivity = [
        {"workload": workload, "mshr": label, **values}
        for workload, by_setting in result.per_workload.items()
        for label, values in by_setting.items()
    ]
    curve = [
        {"mshr": label, **values} for label, values in result.geomean.items()
    ]
    return {"sensitivity": sensitivity, "curve": curve}


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
