"""DRAM-queue sensitivity — when does the controller throttle look-ahead?

Varies the DRAM controller read/write queue depth (2/4/8/16/unbounded per
bank group) for the baseline and R3-DLA and reports throughput relative to
the unbounded-queue reference, plus the contention stall telemetry.  A full
queue delays demand fills and write-buffer drains alike, so this axis is
where the look-ahead thread's extra traffic and the main thread's demand
misses contend most directly.

Shape to expect: R3-DLA leans on deep queues harder than the baseline (its
prefetch traffic rides the same queues); shallow 2-entry queues hurt it
disproportionately on memory-bound workloads.

One axis binding of :mod:`repro.experiments.memsys_sweep` — see there for
the shared machinery and the sibling ``mshr``/``wb`` axes.
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.experiments.memsys_sweep import (
    AXIS_DRAMQ,
    DRAMQ_SETTINGS,
    MemsysSweepResult,
    artifact_tables,
    axis_variants,
    run_axis,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["DRAMQ_SETTINGS", "run", "CAMPAIGN", "artifact_tables"]


def run(runner: Optional[ExperimentRunner] = None) -> MemsysSweepResult:
    runner = runner or ExperimentRunner(quick=True)
    return run_axis(runner, AXIS_DRAMQ)


CAMPAIGN = CampaignSpec(
    name="dramq-sweep",
    title="DRAM-queue sweep — controller queue sensitivity of BL vs R3-DLA",
    experiment=__name__,
    description="Throughput of the baseline and R3-DLA with DRAM controller "
                "read/write queues of 2/4/8/16/unbounded entries per bank "
                "group, relative to the unbounded-queue machine.",
    variants=axis_variants(AXIS_DRAMQ),
    tags=("sweep", "memsys", "memory"),
)


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
