"""Content fingerprints for simulation requests.

Experiment results used to be cached under ad-hoc string labels, which had
two failure modes: two *different* configurations passed under one label
silently returned the first result, and one configuration passed under two
labels (e.g. ``"bl"`` in Fig. 9 and ``"bl-fb8"`` in Fig. 14) re-simulated.
A fingerprint is a stable digest of the *content* of the objects that
determine a simulation's outcome — workload, :class:`SystemConfig`,
:class:`DlaConfig`, trace window — so structurally identical requests share
one cache slot no matter what they are called.

Fingerprints are also the on-disk cache key.  To guarantee a stale cache can
never resurface results computed by older simulator code, every key is
salted with a digest of the ``repro`` package sources (:func:`code_salt`):
any source change invalidates the whole disk cache automatically.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Dataclasses become ``{"__type__": name, field: value, ...}`` using only
    their comparison fields (derived/cached fields marked ``compare=False``
    are excluded); enums become their type and member name; sets are sorted.
    Unknown objects fall back to ``repr``, which is stable for everything
    this codebase configures simulations with.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            if not f.compare:
                continue
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.name]
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (json.dumps(canonicalize(k), sort_keys=True), canonicalize(v))
                for k, v in obj.items()
            )
        }
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(v), sort_keys=True) for v in obj)}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return {"__repr__": repr(obj)}


def fingerprint(*objects: Any) -> str:
    """A hex digest identifying the content of ``objects``."""
    payload = json.dumps([canonicalize(o) for o in objects], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


_CODE_SALT: str = ""


def code_salt() -> str:
    """Digest of every ``repro`` source file, computed once per process.

    Folding this into disk-cache keys means a cached result can only ever be
    returned to the exact simulator code that produced it.
    """
    global _CODE_SALT
    if not _CODE_SALT:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        sources = sorted(root.rglob("*.py")) + sorted(root.rglob("*.c"))
        for path in sources:
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT
