"""Shared experiment infrastructure.

The :class:`ExperimentRunner` prepares workload setups (program, trace
windows, profile) and caches finished simulations.  Caching is keyed by a
*content fingerprint* of everything that determines an outcome — workload,
:class:`SystemConfig`, :class:`DlaConfig` and the trace window — never by
the display label a figure passes in:

* two different configurations accidentally passed under the same label can
  no longer alias to one result (the old label-keyed collision hazard);
* one configuration requested under different labels by different figures
  (``"bl"`` vs ``"bl-fb8"``) simulates exactly once.

Fingerprints also key an optional on-disk cache (``.repro_cache/``; see
:mod:`repro.experiments.cache`) so whole campaigns — the benchmark suite,
sweeps, ``REPRO_FULL_EVAL=1`` runs — reuse results across processes and
sessions.  Disk entries are salted with a digest of the simulator sources,
so stale results cannot survive a code change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compile import compiled_ticks_total
from repro.core.config import SystemConfig
from repro.core.system import SimulationOutcome, simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile, profile_workload
from repro.dla.system import DlaOutcome, DlaSystem
from repro.emulator.trace import DynamicInst
from repro.experiments.cache import ResultDiskCache, disk_cache_enabled, salted_key
from repro.experiments.fingerprint import fingerprint
from repro.isa.program import Program
from repro.workloads.suites import Workload, all_workloads, get_workload

#: Representative subset used by the default ("quick") experiment runs —
#: two to four workloads per suite, chosen to span the behaviour axes.
QUICK_WORKLOADS = [
    "mcf", "libquantum", "sjeng", "omnetpp",        # spec2k6
    "bfs", "sssp",                                   # crono
    "kmeans", "stringsearch",                        # starbench
    "cg", "mg",                                      # npb
]

#: Full mode caps recycle tuning at this many distinct loops per workload
#: (the heaviest by instruction coverage) — the segmented-cell analogue of
#: quick mode's workload sampling.  Quick mode tunes every loop.
FULL_MODE_SEARCH_UNITS = 6


@dataclass
class WorkloadSetup:
    """Prepared inputs for one workload: program, profile, trace windows."""

    workload: Workload
    program: Program
    warmup: List[DynamicInst]
    timed: List[DynamicInst]
    profile: ProgramProfile

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def suite(self) -> str:
        return self.workload.suite


@dataclass
class SegmentedOutcome:
    """Result of one segmented (skeleton-recycling) DLA simulation.

    Bundles the :class:`~repro.dla.system.DlaOutcome` with the recycle plan
    summary Fig. 15 needs, so one cached object serves both Fig. 13-b and
    Fig. 15 without re-planning.
    """

    outcome: DlaOutcome
    #: Skeleton version names, in :func:`build_skeleton_versions` order.
    version_names: Tuple[str, ...]
    #: Chosen version index per loop unit, in execution order.
    chosen_versions: Tuple[int, ...]
    #: Instruction-weighted distribution over version indices (sums to 1).
    version_distribution: Dict[int, float]

    @property
    def cycles(self) -> float:
        return self.outcome.cycles


@dataclass
class RunnerStats:
    """Bookkeeping for throughput reporting (``BENCH_sim_throughput.json``)."""

    #: Simulations actually executed (cache misses).
    simulations: int = 0
    #: Committed dynamic instructions across executed simulations (for DLA
    #: runs this counts both the main and the look-ahead thread).
    simulated_instructions: int = 0
    #: Wall-clock seconds spent inside executed simulations.
    simulation_seconds: float = 0.0
    #: Wall-clock seconds spent building setups (traces + profiles).
    setup_seconds: float = 0.0
    memory_hits: int = 0
    disk_hits: int = 0
    #: Simulated core cycles across executed simulations (all domains: for
    #: DLA runs the main and look-ahead cores both count).
    simulated_cycles: float = 0.0
    #: Memory-backend contention stall cycles (sum of every ``stall_cycles``
    #: leaf in the ``memsys`` telemetry) across executed simulations.
    contention_stall_cycles: float = 0.0
    #: Instructions retired through the compiled tick kernel during executed
    #: simulations (0 when ``REPRO_FAST_PIPELINE=0`` or no C compiler).
    compiled_ticks: int = 0

    @property
    def instructions_per_second(self) -> float:
        if self.simulation_seconds <= 0.0:
            return 0.0
        return self.simulated_instructions / self.simulation_seconds

    @property
    def contention_stall_share(self) -> float:
        """Fraction of simulated cycles spent in memory-contention stalls."""
        if self.simulated_cycles <= 0.0:
            return 0.0
        return self.contention_stall_cycles / self.simulated_cycles

    def as_dict(self) -> Dict[str, float]:
        return {
            "simulations": self.simulations,
            "simulated_instructions": self.simulated_instructions,
            "simulation_seconds": round(self.simulation_seconds, 3),
            "setup_seconds": round(self.setup_seconds, 3),
            "instructions_per_second": round(self.instructions_per_second, 1),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "simulated_cycles": round(self.simulated_cycles, 1),
            "contention_stall_cycles": round(self.contention_stall_cycles, 1),
            "contention_stall_share": round(self.contention_stall_share, 6),
            "compiled_ticks": self.compiled_ticks,
        }

    def merge(self, other: "RunnerStats") -> None:
        self.simulations += other.simulations
        self.simulated_instructions += other.simulated_instructions
        self.simulation_seconds += other.simulation_seconds
        self.setup_seconds += other.setup_seconds
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.simulated_cycles += other.simulated_cycles
        self.contention_stall_cycles += other.contention_stall_cycles
        self.compiled_ticks += other.compiled_ticks

    def since(self, snapshot: "RunnerStats") -> "RunnerStats":
        """The delta accumulated after ``snapshot`` was taken (via ``copy``)."""
        return RunnerStats(
            simulations=self.simulations - snapshot.simulations,
            simulated_instructions=(
                self.simulated_instructions - snapshot.simulated_instructions
            ),
            simulation_seconds=self.simulation_seconds - snapshot.simulation_seconds,
            setup_seconds=self.setup_seconds - snapshot.setup_seconds,
            memory_hits=self.memory_hits - snapshot.memory_hits,
            disk_hits=self.disk_hits - snapshot.disk_hits,
            simulated_cycles=self.simulated_cycles - snapshot.simulated_cycles,
            contention_stall_cycles=(
                self.contention_stall_cycles - snapshot.contention_stall_cycles
            ),
            compiled_ticks=self.compiled_ticks - snapshot.compiled_ticks,
        )

    def copy(self) -> "RunnerStats":
        return replace(self)


#: Process-wide memo of prepared workload setups, keyed by the content
#: fingerprint of (workload definition, window, system config).  Every
#: runner in a process materialising the same campaign cell shares one
#: :class:`WorkloadSetup` — and because the shared object keeps the *same*
#: ``timed``/``warmup`` list identities, the id-keyed warmed-memory and
#: decoded-trace memos hit across runners too.  Bounded FIFO.
_SETUP_CACHE: Dict[str, WorkloadSetup] = {}
_SETUP_CACHE_MAX = 64

_setup_cache_stats = {"builds": 0, "memory_hits": 0, "disk_hits": 0}


def setup_cache_stats() -> Dict[str, int]:
    """Build/hit counters of the process-wide workload-setup memo."""
    return dict(_setup_cache_stats)


def clear_setup_cache() -> None:
    """Drop every memoized setup (testing hook)."""
    _SETUP_CACHE.clear()
    for key in _setup_cache_stats:
        _setup_cache_stats[key] = 0


def _setup_cache_put(key: str, setup: WorkloadSetup) -> None:
    while len(_SETUP_CACHE) >= _SETUP_CACHE_MAX:
        del _SETUP_CACHE[next(iter(_SETUP_CACHE))]
    _SETUP_CACHE[key] = setup


def _stall_cycles_total(memsys) -> float:
    """Sum of every ``stall_cycles`` leaf in a ``memsys`` telemetry dict.

    Local (rather than importing :mod:`repro.experiments.memsys_sweep`)
    because that module imports this one.
    """
    if not memsys:
        return 0.0
    total = 0.0
    for key, value in memsys.items():
        if key == "stall_cycles":
            total += value
        elif isinstance(value, dict):
            total += _stall_cycles_total(value)
    return total


class ExperimentRunner:
    """Builds workload setups and caches expensive simulations.

    Parameters
    ----------
    quick:
        When True (default) only :data:`QUICK_WORKLOADS` are used with short
        windows, keeping the full benchmark suite runnable in minutes; when
        False every workload of every suite runs with longer windows.
    disk_cache:
        ``True``/``False`` force the on-disk result cache on or off; the
        default (``None``) enables it unless ``REPRO_DISK_CACHE=0``.
    """

    def __init__(self, quick: bool = True, workload_names: Optional[Sequence[str]] = None,
                 warmup_instructions: Optional[int] = None,
                 timed_instructions: Optional[int] = None,
                 system_config: Optional[SystemConfig] = None,
                 disk_cache: Optional[bool] = None) -> None:
        self.quick = quick
        if workload_names is None:
            workload_names = QUICK_WORKLOADS if quick else [w.name for w in all_workloads()]
        self.workload_names = list(workload_names)
        self.warmup_instructions = warmup_instructions or (8_000 if quick else 15_000)
        self.timed_instructions = timed_instructions or (8_000 if quick else 15_000)
        self.system_config = system_config or SystemConfig()
        self.stats = RunnerStats()
        if disk_cache is None:
            disk_cache = disk_cache_enabled()
        self.disk_cache: Optional[ResultDiskCache] = (
            ResultDiskCache() if disk_cache else None
        )
        self._setups: Dict[str, WorkloadSetup] = {}
        self._compiled_mark = 0
        self._baseline_cache: Dict[str, SimulationOutcome] = {}
        self._dla_cache: Dict[str, DlaOutcome] = {}
        self._segmented_cache: Dict[str, SegmentedOutcome] = {}
        self._aux_cache: Dict[str, SimulationOutcome] = {}
        #: Cosmetic label -> fingerprint key of the last request made under
        #: that label (debugging / reporting only; never used for lookup).
        self.label_keys: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    # Keys are computed from the Workload *definition* (name, params,
    # window) — not the prepared setup — so cache lookups never require
    # building traces or profiles.  Fingerprinting is cheap enough (a few
    # hundred calls per campaign) that no memoization is warranted; an
    # identity-keyed memo here once aliased two different configs whose
    # objects happened to reuse one id().
    def workload_key(self, workload: Workload,
                     kind: str,
                     config: Optional[SystemConfig] = None,
                     dla_config: Optional[DlaConfig] = None) -> str:
        """Content key of one simulation request for ``workload``."""
        parts = [
            kind,
            workload,
            (self.warmup_instructions, self.timed_instructions),
            fingerprint(config or self.system_config),
        ]
        if kind == "dla":
            # The training profile is built from the runner's base system
            # config, so that config is part of the key even when an
            # override is supplied.
            parts.append(fingerprint(self.system_config))
            parts.append(dla_config)
        return fingerprint(*parts)

    def baseline_key(self, setup: WorkloadSetup,
                     config: Optional[SystemConfig] = None) -> str:
        """Content key of one baseline simulation request."""
        return self.workload_key(setup.workload, "baseline", config)

    def dla_key(self, setup: WorkloadSetup, dla_config: DlaConfig,
                config: Optional[SystemConfig] = None) -> str:
        """Content key of one DLA co-simulation request."""
        return self.workload_key(setup.workload, "dla", config, dla_config)

    def segmented_key_for(self, workload: Workload, dla_config: DlaConfig,
                          dynamic: bool,
                          config: Optional[SystemConfig] = None) -> str:
        """Content key of one segmented (recycle) simulation request.

        The recycle plan is fully determined by the workload, the profile
        (built from the runner's base config), the DLA configuration, the
        trace window and the tuning mode — so those are the key.
        """
        parts = [
            "segmented",
            workload,
            (self.warmup_instructions, self.timed_instructions),
            fingerprint(config or self.system_config),
            fingerprint(self.system_config),   # training-profile source
            dla_config,
            bool(dynamic),
        ]
        limit = self._search_unit_limit()
        if limit is not None:
            # Quick mode (no sampling) keeps its historical key shape.
            parts.append(("search-units", limit))
        return fingerprint(*parts)

    def _search_unit_limit(self) -> Optional[int]:
        """Loop-tuning sample size for segmented runs (None = tune all)."""
        return None if self.quick else FULL_MODE_SEARCH_UNITS

    def segmented_key(self, setup: WorkloadSetup, dla_config: DlaConfig,
                      dynamic: bool,
                      config: Optional[SystemConfig] = None) -> str:
        return self.segmented_key_for(setup.workload, dla_config, dynamic, config)

    def _disk_key(self, key: str) -> str:
        return salted_key(key)

    # ------------------------------------------------------------------
    # setups
    # ------------------------------------------------------------------
    def setup_key(self, workload: Workload) -> str:
        """Content key of one prepared setup (workload, window, config)."""
        return fingerprint(
            "workload-setup",
            workload,
            (self.warmup_instructions, self.timed_instructions),
            fingerprint(self.system_config),
        )

    def setup(self, name: str) -> WorkloadSetup:
        """Prepare (and cache) one workload's program, trace and profile.

        Materialisation is O(1) after the first build of a cell: setups are
        memoized process-wide by content fingerprint (and spilled to the
        disk cache when one is enabled), so only the first runner to touch a
        (workload, window, config) cell pays for emulation and profiling.
        """
        if name in self._setups:
            return self._setups[name]
        started = time.perf_counter()
        workload = get_workload(name)
        key = self.setup_key(workload)
        setup = _SETUP_CACHE.get(key)
        if setup is None and self.disk_cache is not None:
            stored = self.disk_cache.get(self._disk_key(key))
            if stored is not None:
                program, warmup, timed, profile = stored
                setup = WorkloadSetup(
                    workload=workload, program=program,
                    warmup=warmup, timed=timed, profile=profile,
                )
                _setup_cache_stats["disk_hits"] += 1
                _setup_cache_put(key, setup)
        elif setup is not None:
            _setup_cache_stats["memory_hits"] += 1
        if setup is None:
            program = workload.build_program()
            total = self.warmup_instructions + self.timed_instructions
            trace = workload.trace(total + 1000)
            warmup = trace.entries[: self.warmup_instructions]
            timed = trace.entries[
                self.warmup_instructions: self.warmup_instructions + self.timed_instructions
            ]
            profile = profile_workload(
                program,
                trace.window(0, min(len(trace), self.warmup_instructions + 4000)),
                self.system_config,
                timing_window=min(6000, self.warmup_instructions),
            )
            setup = WorkloadSetup(
                workload=workload, program=program, warmup=warmup, timed=timed,
                profile=profile,
            )
            _setup_cache_stats["builds"] += 1
            _setup_cache_put(key, setup)
            if self.disk_cache is not None:
                # One pickle holds all four parts, so the object graph the
                # trace entries share with the program survives the round
                # trip intact.
                self.disk_cache.put(
                    self._disk_key(key),
                    (setup.program, setup.warmup, setup.timed, setup.profile),
                )
        self._setups[name] = setup
        self.stats.setup_seconds += time.perf_counter() - started
        return setup

    def setups(self) -> List[WorkloadSetup]:
        return [self.setup(name) for name in self.workload_names]

    # ------------------------------------------------------------------
    # cached simulation entry points
    # ------------------------------------------------------------------
    def baseline(self, setup: WorkloadSetup, label: str = "bl",
                 config: Optional[SystemConfig] = None) -> SimulationOutcome:
        """Baseline (single-core) simulation of the timed window, cached.

        ``label`` is purely cosmetic; results are cached by the content
        fingerprint of (workload, config, window).
        """
        key = self.baseline_key(setup, config)
        self.label_keys[label] = key
        cached = self._baseline_cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(self._disk_key(key))
            if stored is not None:
                self.stats.disk_hits += 1
                self._baseline_cache[key] = stored
                return stored
        started = self._begin_simulation()
        outcome = simulate_baseline(
            setup.timed,
            config or self.system_config,
            warmup_entries=setup.warmup,
        )
        self._record_simulation(
            started, outcome.core.committed,
            cycles=outcome.core.cycles,
            stall_cycles=_stall_cycles_total(outcome.memsys),
        )
        self._baseline_cache[key] = outcome
        if self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), strip_outcome(outcome))
        return outcome

    def dla(self, setup: WorkloadSetup, dla_config: DlaConfig, label: str,
            config: Optional[SystemConfig] = None) -> DlaOutcome:
        """DLA co-simulation of the timed window, cached by content key."""
        key = self.dla_key(setup, dla_config, config)
        self.label_keys[label] = key
        cached = self._dla_cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(self._disk_key(key))
            if stored is not None:
                self.stats.disk_hits += 1
                self._dla_cache[key] = stored
                return stored
        started = self._begin_simulation()
        system = DlaSystem(
            setup.program,
            config or self.system_config,
            dla_config,
            profile=setup.profile,
        )
        outcome = system.simulate(setup.timed, warmup_entries=setup.warmup)
        self._record_simulation(
            started, outcome.main.committed + outcome.lookahead.committed,
            cycles=outcome.main.cycles + outcome.lookahead.cycles,
            stall_cycles=_stall_cycles_total(outcome.memsys),
        )
        self._dla_cache[key] = outcome
        if self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), outcome)
        return outcome

    def dla_segmented(self, setup: WorkloadSetup, dla_config: DlaConfig,
                      dynamic: bool = False, label: str = "recycle",
                      config: Optional[SystemConfig] = None) -> SegmentedOutcome:
        """Segmented (skeleton-recycling) DLA simulation, cached by content key.

        Replaces the figures' direct ``DlaSystem.simulate_segmented`` calls:
        planning (including the controller's trial simulations) and the
        segmented run itself happen at most once per (workload, config,
        window, tuning mode) per cache lifetime.
        """
        key = self.segmented_key(setup, dla_config, dynamic, config)
        self.label_keys[label] = key
        cached = self._segmented_cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(self._disk_key(key))
            if stored is not None:
                self.stats.disk_hits += 1
                self._segmented_cache[key] = stored
                return stored
        from repro.dla.recycle import RecycleController, build_skeleton_versions

        started = self._begin_simulation()
        system = DlaSystem(
            setup.program,
            config or self.system_config,
            dla_config,
            profile=setup.profile,
        )
        versions = build_skeleton_versions(
            system.builder,
            enable_t1=dla_config.enable_t1,
            include_value_targets=dla_config.enable_value_reuse,
        )
        controller = RecycleController(versions, dla_config,
                                       setup.profile.loop_branch_pcs)
        plan = controller.plan(system, setup.timed, dynamic=dynamic,
                               search_unit_limit=self._search_unit_limit())
        outcome = system.simulate_segmented(plan.segments,
                                            warmup_entries=setup.warmup)
        result = SegmentedOutcome(
            outcome=outcome,
            version_names=tuple(s.options.name for s in versions),
            chosen_versions=tuple(plan.chosen_versions),
            version_distribution=dict(plan.version_distribution),
        )
        self._record_simulation(
            started, outcome.main.committed + outcome.lookahead.committed,
            cycles=outcome.main.cycles + outcome.lookahead.cycles,
            stall_cycles=_stall_cycles_total(outcome.memsys),
        )
        self._segmented_cache[key] = result
        if self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), result)
        return result

    def auxiliary(self, setup: WorkloadSetup, kind: str, simulate,
                  config: Optional[SystemConfig] = None):
        """Cache a non-standard simulation by content key.

        ``kind`` names the model (e.g. ``"bfetch"``, ``"slipstream"``); the
        key covers the workload, window and system config exactly like the
        baseline/DLA entry points, so related-approach comparisons resume
        from the disk cache instead of re-simulating on every campaign run.
        ``simulate`` is only called on a miss, must be deterministic, and
        may return a :class:`SimulationOutcome` or a
        :class:`~repro.dla.system.DlaOutcome`-shaped object.
        """
        key = self.workload_key(setup.workload, f"aux-{kind}", config)
        self.label_keys[kind] = key
        cached = self._aux_cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        if self.disk_cache is not None:
            stored = self.disk_cache.get(self._disk_key(key))
            if stored is not None:
                self.stats.disk_hits += 1
                self._aux_cache[key] = stored
                return stored
        started = self._begin_simulation()
        outcome = simulate()
        if isinstance(outcome, SimulationOutcome):
            committed = outcome.core.committed
            cycles = outcome.core.cycles
            payload = strip_outcome(outcome)
        else:
            # DlaOutcome-shaped (two-thread comparison models) or anything
            # exposing a ``committed`` total (e.g. the SMT pair outcome).
            committed = getattr(outcome, "committed", None)
            if committed is None:
                committed = outcome.main.committed + outcome.lookahead.committed
            main = getattr(outcome, "main", None)
            if main is not None:
                cycles = main.cycles + outcome.lookahead.cycles
            else:
                cycles = getattr(outcome, "cycles", 0.0)
            payload = outcome
        self._record_simulation(
            started, committed, cycles=cycles,
            stall_cycles=_stall_cycles_total(getattr(outcome, "memsys", None)),
        )
        self._aux_cache[key] = outcome
        if self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), payload)
        return outcome

    def _begin_simulation(self) -> float:
        """Mark the start of one executed simulation (wall clock + ticks)."""
        self._compiled_mark = compiled_ticks_total()
        return time.perf_counter()

    def _record_simulation(self, started: float, committed: int,
                           cycles: float = 0.0,
                           stall_cycles: float = 0.0) -> None:
        self.stats.simulations += 1
        self.stats.simulated_instructions += int(committed)
        self.stats.simulation_seconds += time.perf_counter() - started
        self.stats.simulated_cycles += float(cycles)
        self.stats.contention_stall_cycles += float(stall_cycles)
        self.stats.compiled_ticks += compiled_ticks_total() - self._compiled_mark

    # ------------------------------------------------------------------
    # cache injection (used by the parallel runner's deterministic merge)
    # ------------------------------------------------------------------
    def inject_baseline(self, key: str, outcome: SimulationOutcome,
                        persist: bool = True) -> None:
        """Install an externally-computed outcome into the caches.

        Pass ``persist=False`` when the outcome is already on disk (it was
        read from the disk cache, or a worker sharing the cache directory
        wrote it) to avoid re-pickling identical entries.
        """
        self._baseline_cache.setdefault(key, outcome)
        if persist and self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), strip_outcome(outcome))

    def inject_dla(self, key: str, outcome: DlaOutcome,
                   persist: bool = True) -> None:
        self._dla_cache.setdefault(key, outcome)
        if persist and self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), outcome)

    def inject_segmented(self, key: str, outcome: SegmentedOutcome,
                         persist: bool = True) -> None:
        self._segmented_cache.setdefault(key, outcome)
        if persist and self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(key), outcome)

    def has_baseline(self, key: str) -> bool:
        return key in self._baseline_cache

    def has_dla(self, key: str) -> bool:
        return key in self._dla_cache

    def has_segmented(self, key: str) -> bool:
        return key in self._segmented_cache

    def cached_outcome(self, key: str):
        """The in-memory cached outcome under ``key``, whatever its kind.

        Campaign telemetry uses this to attach per-cell measures
        (instructions, cycles, stall share) to ``cell.finished`` events
        right after a cell executes; returns ``None`` on a miss.
        """
        for cache in (self._baseline_cache, self._dla_cache,
                      self._segmented_cache, self._aux_cache):
            outcome = cache.get(key)
            if outcome is not None:
                return outcome
        return None

    # ------------------------------------------------------------------
    def no_prefetch_config(self) -> SystemConfig:
        """The configured system with every hardware prefetcher disabled."""
        return self.system_config.without_prefetchers()

    def with_l1_stride_config(self) -> SystemConfig:
        """The configured system with an added L1 stride prefetcher."""
        return self.system_config.with_l1_stride()


def strip_outcome(outcome: SimulationOutcome) -> SimulationOutcome:
    """A copy of ``outcome`` without live memory-system objects.

    The shared/private hierarchies hold the full cache state and are only
    interesting to interactive debugging; dropping them keeps disk-cache
    entries and inter-process payloads small.
    """
    return replace(outcome, shared=None, private=None)
