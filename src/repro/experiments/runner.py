"""Shared experiment infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.system import SimulationOutcome, simulate_baseline
from repro.dla.config import DlaConfig
from repro.dla.profiling import ProgramProfile, profile_workload
from repro.dla.system import DlaOutcome, DlaSystem
from repro.emulator.trace import DynamicInst
from repro.isa.program import Program
from repro.workloads.suites import Workload, all_workloads, get_workload

#: Representative subset used by the default ("quick") experiment runs —
#: two to four workloads per suite, chosen to span the behaviour axes.
QUICK_WORKLOADS = [
    "mcf", "libquantum", "sjeng", "omnetpp",        # spec2k6
    "bfs", "sssp",                                   # crono
    "kmeans", "stringsearch",                        # starbench
    "cg", "mg",                                      # npb
]


@dataclass
class WorkloadSetup:
    """Prepared inputs for one workload: program, profile, trace windows."""

    workload: Workload
    program: Program
    warmup: List[DynamicInst]
    timed: List[DynamicInst]
    profile: ProgramProfile

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def suite(self) -> str:
        return self.workload.suite


class ExperimentRunner:
    """Builds workload setups and caches expensive simulations.

    Parameters
    ----------
    quick:
        When True (default) only :data:`QUICK_WORKLOADS` are used with short
        windows, keeping the full benchmark suite runnable in minutes; when
        False every workload of every suite runs with longer windows.
    """

    def __init__(self, quick: bool = True, workload_names: Optional[Sequence[str]] = None,
                 warmup_instructions: Optional[int] = None,
                 timed_instructions: Optional[int] = None,
                 system_config: Optional[SystemConfig] = None) -> None:
        self.quick = quick
        if workload_names is None:
            workload_names = QUICK_WORKLOADS if quick else [w.name for w in all_workloads()]
        self.workload_names = list(workload_names)
        self.warmup_instructions = warmup_instructions or (8_000 if quick else 15_000)
        self.timed_instructions = timed_instructions or (8_000 if quick else 15_000)
        self.system_config = system_config or SystemConfig()
        self._setups: Dict[str, WorkloadSetup] = {}
        self._baseline_cache: Dict[Tuple[str, str], SimulationOutcome] = {}
        self._dla_cache: Dict[Tuple[str, str], DlaOutcome] = {}

    # ------------------------------------------------------------------
    def setup(self, name: str) -> WorkloadSetup:
        """Prepare (and cache) one workload's program, trace and profile."""
        if name in self._setups:
            return self._setups[name]
        workload = get_workload(name)
        program = workload.build_program()
        total = self.warmup_instructions + self.timed_instructions
        trace = workload.trace(total + 1000)
        warmup = trace.entries[: self.warmup_instructions]
        timed = trace.entries[
            self.warmup_instructions: self.warmup_instructions + self.timed_instructions
        ]
        profile = profile_workload(
            program,
            trace.window(0, min(len(trace), self.warmup_instructions + 4000)),
            self.system_config,
            timing_window=min(6000, self.warmup_instructions),
        )
        setup = WorkloadSetup(
            workload=workload, program=program, warmup=warmup, timed=timed, profile=profile
        )
        self._setups[name] = setup
        return setup

    def setups(self) -> List[WorkloadSetup]:
        return [self.setup(name) for name in self.workload_names]

    # ------------------------------------------------------------------
    def baseline(self, setup: WorkloadSetup, label: str = "bl",
                 config: Optional[SystemConfig] = None) -> SimulationOutcome:
        """Baseline (single-core) simulation of the timed window, cached."""
        key = (setup.name, label)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = simulate_baseline(
                setup.timed,
                config or self.system_config,
                warmup_entries=setup.warmup,
            )
        return self._baseline_cache[key]

    def dla(self, setup: WorkloadSetup, dla_config: DlaConfig, label: str,
            config: Optional[SystemConfig] = None) -> DlaOutcome:
        """DLA co-simulation of the timed window, cached by label."""
        key = (setup.name, label)
        if key not in self._dla_cache:
            system = DlaSystem(
                setup.program,
                config or self.system_config,
                dla_config,
                profile=setup.profile,
            )
            self._dla_cache[key] = system.simulate(
                setup.timed, warmup_entries=setup.warmup
            )
        return self._dla_cache[key]

    # ------------------------------------------------------------------
    def no_prefetch_config(self) -> SystemConfig:
        """The configured system with every hardware prefetcher disabled."""
        return SystemConfig(
            core=self.system_config.core,
            memory=self.system_config.memory,
            l2_prefetcher="none",
            l1_prefetcher="none",
        )

    def with_l1_stride_config(self) -> SystemConfig:
        """The configured system with an added L1 stride prefetcher."""
        return SystemConfig(
            core=self.system_config.core,
            memory=self.system_config.memory,
            l2_prefetcher=self.system_config.l2_prefetcher,
            l1_prefetcher="stride",
        )
