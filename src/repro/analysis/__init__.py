"""Analysis utilities: limit studies, metrics aggregation and text rendering."""

from repro.analysis.ilp import IlpResult, measure_implicit_parallelism
from repro.analysis.metrics import SpeedupTable, mpki, suite_summary
from repro.analysis.reporting import format_bar_chart, format_table

__all__ = [
    "IlpResult",
    "measure_implicit_parallelism",
    "SpeedupTable",
    "mpki",
    "suite_summary",
    "format_table",
    "format_bar_chart",
]
