"""Plain-text rendering of tables and bar charts.

Every experiment regenerates its table/figure as text so results can be
inspected in a terminal or CI log without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = [
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, separator] + body)


def format_markdown_table(rows: Sequence[Mapping[str, object]],
                          columns: Sequence[str] = None,
                          float_format: str = "{:.3f}") -> str:
    """Render dict rows as a GitHub-flavoured Markdown table.

    Uses the same float formatting as :func:`format_table` so a Markdown
    artifact shows exactly the numbers the plain-text rendering shows.
    """
    if not rows:
        return "*(empty table)*"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(str(col) for col in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(render(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines)


def format_bar_chart(values: Mapping[str, float], width: int = 40,
                     float_format: str = "{:.2f}") -> str:
    """Render a horizontal ASCII bar chart (one bar per key)."""
    if not values:
        return "(empty chart)"
    maximum = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = []
    for key, value in values.items():
        bar = "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""
        lines.append(
            f"{str(key).ljust(label_width)} | {bar} {float_format.format(value)}"
        )
    return "\n".join(lines)
